//! `trace` — the span-level energy flamegraph artefact.
//!
//! Runs AutoGluon, FLAML, and TabPFN (plus a CAML(tuned) run whose
//! development stage is actually paid for) with tracing on, and renders
//! where the Joules go: a per-stage development / execution / inference
//! attribution table, a per-span-kind flamegraph table, and the raw trace
//! in two sink formats — JSONL (one span per line) and Chrome
//! `trace_event` JSON (load `trace.chrome.json` in `chrome://tracing` or
//! Perfetto to see the flamegraph).
//!
//! Determinism is **asserted**, not claimed: the serialized trace must be
//! byte-identical on the serial and parallel grid schedules, and every
//! execution root span must reconcile bitwise with the run-level
//! [`Measurement`](green_automl_energy::Measurement) the tables are
//! built from.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::benchmark::{run_grid, run_once, BenchmarkOptions, BenchmarkPoint};
use green_automl_core::devtune::{DevTuneOptions, DevTuner};
use green_automl_dataset::dev_binary_pool;
use green_automl_energy::{MetricsRegistry, Trace};
use green_automl_systems::{AutoGluon, AutoMlSystem, Caml, Flaml, SystemId, TabPfn};
use std::collections::BTreeMap;

/// The systems traced by this artefact (all budget-feasible at 10 s).
const TARGETS: [SystemId; 3] = [SystemId::AutoGluon, SystemId::Flaml, SystemId::TabPfn];

/// One traced run per target system, in [`TARGETS`] order.
fn pick(points: &[BenchmarkPoint]) -> Vec<(SystemId, Trace)> {
    TARGETS
        .iter()
        .filter_map(|&id| {
            points
                .iter()
                .find(|p| p.system == id)
                .and_then(|p| p.trace.clone().map(|t| (id, t)))
        })
        .collect()
}

/// Merge per-system traces into one, two tracks per system (execution on
/// the even track, inference on the odd one) so the Chrome view shows
/// every system side by side.
fn merge_tracks<'a>(traces: impl IntoIterator<Item = &'a (SystemId, Trace)>) -> Trace {
    Trace::merge(traces.into_iter().enumerate().map(|(i, (_, t))| {
        let mut t = t.clone();
        for s in &mut t.spans {
            s.track += (i as u32) * 2;
        }
        t
    }))
}

/// Run the trace artefact.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let budget = cfg.budgets[0];
    let spec = cfg.base_spec().with_trace();
    let opts = cfg.bench_options();
    let meta = cfg.datasets()[0];

    let systems: Vec<Box<dyn AutoMlSystem>> = vec![
        Box::new(AutoGluon::default()),
        Box::new(Flaml::default()),
        Box::new(TabPfn::default()),
    ];

    // The grid on the configured schedule, and again on the reference
    // serial one — the serialized traces must match byte for byte.
    let points = run_grid(&systems, &[meta], &[budget], &spec, &opts);
    let serial = run_grid(
        &systems,
        &[meta],
        &[budget],
        &spec,
        &BenchmarkOptions {
            parallelism: 1,
            ..opts
        },
    );
    let picked = pick(&points);
    assert_eq!(
        merge_tracks(&picked).to_jsonl(),
        merge_tracks(&pick(&serial)).to_jsonl(),
        "trace must be byte-identical at every --jobs setting"
    );

    // Every execution root span carries exactly the energy the run-level
    // measurement reports — bitwise, not approximately.
    for (id, t) in &picked {
        let p = points
            .iter()
            .find(|p| p.system == *id)
            .expect("picked from points");
        let root = t
            .roots()
            .find(|r| r.track == 0)
            .expect("execution trace has a root span");
        let e = &p.execution.energy;
        assert!(
            root.energy.package_j.to_bits() == e.package_j.to_bits()
                && root.energy.dram_j.to_bits() == e.dram_j.to_bits()
                && root.energy.gpu_j.to_bits() == e.gpu_j.to_bits(),
            "{id}: execution root span must reconcile bitwise with the Measurement"
        );
    }

    // CAML(tuned): the one deployment whose development stage costs real
    // energy — the off-the-shelf systems ship with development = 0 by the
    // paper's accounting (§3.7).
    let tune_opts = DevTuneOptions {
        budget_s: budget,
        top_k: cfg.devtune_top_k,
        bo_iters: cfg.devtune_iters,
        runs_per_eval: 2,
        materialize: cfg.materialize,
        seed: cfg.seed,
    };
    let outcome = DevTuner::tune(&dev_binary_pool(), &tune_opts);
    let dev_kwh = outcome.development.kwh();
    let tuned = run_once(&Caml::tuned(outcome.params.clone()), &meta, &spec, &opts);
    let tuned_trace = tuned.trace.clone().expect("traced spec yields a trace");

    // Per-stage attribution: development / execution / inference.
    let mut stage_rows = Vec::new();
    for &id in &TARGETS {
        let pts: Vec<&BenchmarkPoint> = points.iter().filter(|p| p.system == id).collect();
        let n = pts.len().max(1) as f64;
        stage_rows.push(vec![
            id.to_string(),
            fmt(0.0),
            fmt(pts.iter().map(|p| p.execution.kwh()).sum::<f64>() / n),
            fmt(pts.iter().map(|p| p.inference_kwh_per_row).sum::<f64>() / n),
        ]);
    }
    stage_rows.push(vec![
        "CAML(tuned)".to_string(),
        fmt(dev_kwh),
        fmt(tuned.execution.kwh()),
        fmt(tuned.inference_kwh_per_row),
    ]);
    let stages = Table::new(
        format!(
            "trace: per-stage energy attribution on {} at {budget:.0}s",
            meta.name
        ),
        vec![
            "system",
            "development_kwh",
            "execution_kwh",
            "inference_kwh_per_prediction",
        ],
        stage_rows,
    );

    // Span flamegraph, folded by kind. Spans nest (System > Stage >
    // Dataset > Trial > Fold), so each kind row is that level's inclusive
    // energy; the share is against the run's root total.
    let mut flame_rows = Vec::new();
    let mut all = picked.clone();
    all.push((SystemId::Custom("CAML(tuned)"), tuned_trace));
    for (id, t) in &all {
        let total = t.root_energy().total_joules().max(1e-30);
        let mut by_kind: BTreeMap<&'static str, (usize, f64)> = BTreeMap::new();
        for s in &t.spans {
            let e = by_kind.entry(s.kind.as_str()).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s.energy.total_joules();
        }
        for (kind, (count, joules)) in by_kind {
            flame_rows.push(vec![
                id.to_string(),
                kind.to_string(),
                count.to_string(),
                fmt(joules),
                fmt(joules / total * 100.0),
            ]);
        }
    }
    let flame = Table::new(
        "trace: span energy by kind (inclusive — spans nest)",
        vec!["system", "kind", "spans", "energy_j", "share_pct"],
        flame_rows,
    );

    // Sinks: one merged trace across all four runs, plus the folded
    // metrics view.
    let merged = merge_tracks(&all);
    let mut registry = MetricsRegistry::new();
    registry.record_trace(&merged);
    let files = vec![
        ("trace.jsonl".to_string(), merged.to_jsonl()),
        ("trace.chrome.json".to_string(), merged.to_chrome_trace()),
        ("trace.metrics.txt".to_string(), registry.render_text()),
    ];

    let notes = vec![
        format!(
            "determinism asserted: the serialized trace is byte-identical on the serial \
             and parallel grid schedules, and all {} execution root spans reconcile \
             bitwise with their run-level Measurement",
            picked.len()
        ),
        format!(
            "{} spans across {} runs ({:.3} J total); load trace.chrome.json in \
             chrome://tracing or Perfetto for the flamegraph",
            registry.counter("spans_total"),
            all.len(),
            merged.root_energy().total_joules()
        ),
        format!(
            "development stage: CAML(tuned) paid {dev_kwh:.3e} kWh of tuning energy; \
             off-the-shelf systems carry development = 0 by the paper's accounting"
        ),
    ];

    ExperimentOutput {
        id: "trace",
        files,
        tables: vec![stages, flame],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_artefact_emits_sinks_and_attribution() {
        let out = run(&ExpConfig::smoke());
        assert_eq!(out.id, "trace");
        assert_eq!(out.tables.len(), 2);
        // Three off-the-shelf systems plus CAML(tuned).
        assert_eq!(out.tables[0].rows.len(), 4);
        // Only CAML(tuned) pays a development cost.
        assert_eq!(out.tables[0].rows[0][1], "0");
        assert!(out.tables[0].rows[3][1].parse::<f64>().unwrap() > 0.0);
        let names: Vec<&str> = out.files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["trace.jsonl", "trace.chrome.json", "trace.metrics.txt"]
        );
        let jsonl = &out.files[0].1;
        assert!(jsonl.lines().count() > 8, "merged trace has spans");
        assert!(out.notes.iter().any(|n| n.contains("byte-identical")));
    }
}
