//! `fleet` — many models, many tenants, simulated grid regions.
//!
//! Three systems train on the serving dataset and deploy as fleet
//! *tenants* (FLAML and CAML as light single-model deployments, AutoGluon
//! as the heavy ensemble). A shaped multi-tenant traffic mix — a diurnal
//! cycle, a sustained burst, and a flash crowd — is replayed against three
//! simulated grid regions (Germany, Poland, Sweden) whose carbon intensity
//! follows seeded diurnal curves compressed so one full "day" fits the
//! trace. The same trace runs under carbon-blind and carbon-aware routing
//! and the report compares kg CO₂ at equal SLO compliance; a third,
//! chaos-faulted carbon-aware run shows that injected replica crashes
//! change energy but not predictions. Determinism is asserted at runtime:
//! the carbon-aware [`FleetReport`] must serialise byte-identically at
//! `host_parallelism` 1 and the configured worker count.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::serving::serving_dataset;
use crate::suite::ExpConfig;
use green_automl_energy::{CarbonProfile, FaultPlan, GridIntensity};
use green_automl_serve::{
    run_fleet, AutoscalePolicy, FleetConfig, FleetReport, FleetTrafficConfig, RegionSpec,
    RouterPolicy, ScaleReason, Shape, TenantSpec, TenantTraffic,
};
use green_automl_systems::{AutoGluon, AutoMlSystem, Caml, Flaml, RunSpec};

/// A seeded diurnal carbon curve with its day compressed to `day_s`, so
/// the trace actually sweeps the whole cycle instead of sampling one
/// quasi-constant instant of an 86 400 s day.
fn compressed_day(grid: GridIntensity, seed: u64, day_s: f64) -> CarbonProfile {
    let mut c = CarbonProfile::seeded(grid, seed);
    c.peak_s *= day_s / CarbonProfile::DAY_S;
    c.period_s = day_s;
    c
}

/// Run the fleet comparison.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let (train, test) = serving_dataset(cfg);
    let spec = RunSpec::single_core(60.0, cfg.seed);
    let systems: Vec<Box<dyn AutoMlSystem>> = vec![
        Box::new(Flaml::default()),
        Box::new(Caml::default()),
        Box::new(AutoGluon::default()),
    ];
    let slo_s = cfg.slo_ms / 1e3;
    let tenants: Vec<TenantSpec> = systems
        .iter()
        .map(|s| TenantSpec::new(s.id().as_str(), s.fit(&train, &spec).predictor, slo_s))
        .collect();

    // Nominal trace length — the compressed "day" every carbon curve and
    // traffic shape is scaled to.
    let day_s = cfg.fleet_requests as f64 / cfg.fleet_rps;
    let shapes_for = |tenant: usize| -> Vec<Shape> {
        match tenant {
            0 => vec![Shape::Diurnal {
                period_s: day_s,
                amplitude: 0.4,
                peak_s: 0.25 * day_s,
            }],
            1 => vec![Shape::Burst {
                start_s: 0.45 * day_s,
                duration_s: 0.1 * day_s,
                factor: 3.0,
            }],
            _ => vec![Shape::FlashCrowd {
                at_s: 0.7 * day_s,
                ramp_s: 0.05 * day_s,
                peak_factor: 6.0,
                decay_s: 0.08 * day_s,
            }],
        }
    };
    let trace = FleetTrafficConfig {
        tenants: (0..tenants.len())
            .map(|t| TenantTraffic {
                tenant: t as u32,
                rps: cfg.fleet_rps,
                shapes: shapes_for(t),
                n_requests: cfg.fleet_requests,
                seed: cfg.seed ^ 0xf1ee7 ^ (t as u64) << 32,
            })
            .collect(),
    }
    .generate(test.n_rows());

    // Region 0 is the paper's home grid, so the carbon-blind router's
    // index tie-break lands there; the carbon-aware router has to
    // *discover* the Swedish grid on its own.
    let grids = [
        ("germany", GridIntensity::GERMANY),
        ("poland", GridIntensity::POLAND),
        ("sweden", GridIntensity::SWEDEN),
    ];
    let regions: Vec<RegionSpec> = grids
        .iter()
        .enumerate()
        .map(|(i, (name, grid))| {
            RegionSpec::new(name, compressed_day(*grid, cfg.seed ^ i as u64, day_s), 1)
        })
        .collect();
    let base = FleetConfig {
        autoscale: AutoscalePolicy::elastic(1, cfg.serve_replicas.max(2)),
        host_parallelism: cfg.parallelism,
        ..FleetConfig::cpu_testbed(regions)
    };
    // Half the SLO as routing slack: the aware router may never trade more
    // latency than the latency objective has room for.
    let aware_policy = RouterPolicy::CarbonAware {
        latency_slack_s: 0.5 * slo_s,
    };

    let blind = run_fleet(
        &tenants,
        &test,
        &trace,
        &base.clone().with_router(RouterPolicy::CarbonBlind),
    );
    let aware_cfg = base.clone().with_router(aware_policy);
    let aware = run_fleet(&tenants, &test, &trace, &aware_cfg);
    let chaos = run_fleet(
        &tenants,
        &test,
        &trace,
        &aware_cfg
            .clone()
            .with_fault(FaultPlan::chaos(cfg.seed ^ 0xc4)),
    );

    // Runtime determinism gate: the ISSUE-level guarantee, not just a test
    // — the committed artefact is byte-independent of the worker count.
    let serial = run_fleet(
        &tenants,
        &test,
        &trace,
        &FleetConfig {
            host_parallelism: 1,
            ..aware_cfg.clone()
        },
    );
    assert_eq!(
        serial.to_text(),
        aware.to_text(),
        "FleetReport must be byte-identical at every host_parallelism"
    );

    let runs: Vec<(&str, &FleetReport)> = vec![
        ("carbon-blind", &blind),
        ("carbon-aware", &aware),
        ("carbon-aware+chaos", &chaos),
    ];

    let comparison = Table::new(
        "fleet: carbon-blind vs carbon-aware routing, same trace",
        vec![
            "policy",
            "batches",
            "kwh",
            "kg_co2",
            "co2_saved_pct",
            "eur",
            "slo_tenants",
            "worst_p99_ms",
            "mean_queue",
            "makespan_s",
        ],
        runs.iter()
            .map(|(name, r)| {
                let saved = if r.kg_co2() < blind.kg_co2() {
                    100.0 * (1.0 - r.kg_co2() / blind.kg_co2())
                } else {
                    0.0
                };
                let worst_p99 = r
                    .tenants
                    .iter()
                    .map(|t| t.latency.p99_s)
                    .fold(0.0, f64::max);
                vec![
                    name.to_string(),
                    r.n_batches.to_string(),
                    fmt(r.kwh()),
                    fmt(r.kg_co2()),
                    fmt(saved),
                    fmt(r.cost_eur()),
                    format!("{}/{}", r.slo_compliant_tenants(), r.tenants.len()),
                    fmt(worst_p99 * 1e3),
                    fmt(r.mean_queue_depth),
                    fmt(r.makespan_s),
                ]
            })
            .collect(),
    );

    let region_rows = runs
        .iter()
        .flat_map(|(name, r)| {
            r.regions.iter().map(move |reg| {
                vec![
                    name.to_string(),
                    reg.name.clone(),
                    reg.batches.to_string(),
                    fmt(reg.busy_j),
                    fmt(reg.idle_j),
                    fmt(reg.wasted_j),
                    fmt(reg.cold_load_j),
                    fmt(reg.kg_co2 * 1e3),
                    reg.peak_replicas.to_string(),
                    reg.final_replicas.to_string(),
                    reg.cold_loads.to_string(),
                    reg.evictions.to_string(),
                ]
            })
        })
        .collect();
    let per_region = Table::new(
        "fleet: per-region energy and carbon",
        vec![
            "policy",
            "region",
            "batches",
            "busy_j",
            "idle_j",
            "wasted_j",
            "cold_load_j",
            "g_co2",
            "peak_replicas",
            "final_replicas",
            "cold_loads",
            "evictions",
        ],
        region_rows,
    );

    let tenant_rows = runs
        .iter()
        .flat_map(|(name, r)| {
            let tenants = &tenants;
            r.tenants.iter().map(move |t| {
                vec![
                    name.to_string(),
                    t.name.clone(),
                    tenants[t.tenant as usize].predictor.n_models().to_string(),
                    t.n_requests.to_string(),
                    fmt(t.latency.p50_s * 1e3),
                    fmt(t.latency.p99_s * 1e3),
                    if t.slo_ok { "pass" } else { "FAIL" }.to_string(),
                    fmt(t.attributed_j),
                    t.retried_requests.to_string(),
                    t.failed_requests.to_string(),
                    t.budget_denials.to_string(),
                ]
            })
        })
        .collect();
    let per_tenant = Table::new(
        "fleet: per-tenant latency, SLO, attributed energy",
        vec![
            "policy",
            "tenant",
            "n_models",
            "requests",
            "p50_ms",
            "p99_ms",
            "slo",
            "attributed_j",
            "retried",
            "failed",
            "budget_denials",
        ],
        tenant_rows,
    );

    let count = |r: &FleetReport, reason: ScaleReason| {
        r.events.iter().filter(|e| e.reason == reason).count()
    };
    let events = Table::new(
        "fleet: autoscale events",
        vec!["policy", "queue_depth_up", "idle_down", "budget_denied"],
        runs.iter()
            .map(|(name, r)| {
                vec![
                    name.to_string(),
                    count(r, ScaleReason::QueueDepthUp).to_string(),
                    count(r, ScaleReason::IdleDown).to_string(),
                    count(r, ScaleReason::BudgetDenied).to_string(),
                ]
            })
            .collect(),
    );

    let mut notes = Vec::new();
    notes.push(format!(
        "carbon-aware routing emits {} kg CO2 vs {} kg carbon-blind on the same trace \
         — {:.1}% saved at equal SLO compliance ({}/{} tenants vs {}/{})",
        fmt(aware.kg_co2()),
        fmt(blind.kg_co2()),
        100.0 * (1.0 - aware.kg_co2() / blind.kg_co2()),
        aware.slo_compliant_tenants(),
        aware.tenants.len(),
        blind.slo_compliant_tenants(),
        blind.tenants.len(),
    ));
    notes.push(format!(
        "total energy stays within routing noise: {} kWh blind vs {} kWh aware \
         (regions share one device, so moving a batch moves its CO2, not its Joules)",
        fmt(blind.kwh()),
        fmt(aware.kwh())
    ));
    notes.push(format!(
        "chaos faults degrade gracefully: predictions {} the clean run's, \
         energy {} J vs {} J clean",
        if chaos.predictions == aware.predictions {
            "identical to"
        } else {
            "DIFFER from"
        },
        fmt(chaos.total_joules()),
        fmt(aware.total_joules())
    ));
    notes.push(
        "determinism asserted at runtime: the carbon-aware FleetReport serialises \
         byte-identically at host_parallelism 1 and the configured worker count"
            .to_string(),
    );
    notes.push(format!(
        "trace: {} tenants x {} requests at {:.0} rps base (seed {}); shapes: diurnal \
         (FLAML), 3x burst (CAML), 6x flash crowd (AutoGluon); regions germany/poland/sweden \
         with seeded diurnal carbon curves compressed to the {:.1} s trace; elastic 1-{} \
         replicas per region; routing slack {:.0} ms; SLO p99 <= {:.0} ms",
        tenants.len(),
        cfg.fleet_requests,
        cfg.fleet_rps,
        cfg.seed,
        day_s,
        cfg.serve_replicas.max(2),
        0.5 * cfg.slo_ms,
        cfg.slo_ms
    ));

    ExperimentOutput {
        id: "fleet",
        tables: vec![comparison, per_region, per_tenant, events],
        notes,
        files: vec![
            ("fleet.blind.txt".to_string(), blind.to_text()),
            ("fleet.aware.txt".to_string(), aware.to_text()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(out: &ExperimentOutput, table: usize, row: usize, col: usize) -> f64 {
        out.tables[table].rows[row][col]
            .replace('e', "E")
            .parse()
            .expect("numeric cell")
    }

    #[test]
    fn fleet_carbon_aware_beats_blind_at_smoke_scale() {
        let out = run(&ExpConfig::smoke());
        assert_eq!(out.tables.len(), 4);
        // Three policies in the comparison, 3 regions x 3 policies, 3
        // tenants x 3 policies.
        assert_eq!(out.tables[0].rows.len(), 3);
        assert_eq!(out.tables[1].rows.len(), 9);
        assert_eq!(out.tables[2].rows.len(), 9);
        // The headline: aware emits less CO2 than blind at equal SLO
        // compliance.
        let blind_kg = cell(&out, 0, 0, 3);
        let aware_kg = cell(&out, 0, 1, 3);
        assert!(
            aware_kg < blind_kg,
            "carbon-aware ({aware_kg} kg) must beat carbon-blind ({blind_kg} kg)"
        );
        assert_eq!(
            out.tables[0].rows[0][6], out.tables[0].rows[1][6],
            "SLO compliance must match across policies"
        );
        // Chaos adds energy but not wrong answers.
        let chaos_note = out
            .notes
            .iter()
            .find(|n| n.contains("chaos"))
            .expect("chaos note");
        assert!(chaos_note.contains("identical to"), "{chaos_note}");
        // Canonical per-policy reports ride along as artefact files.
        assert_eq!(out.files.len(), 2);
        assert!(out.files[0].1.starts_with("fleet-report v1"));
    }
}
