//! # green-automl-experiments
//!
//! The reproduction harness: one runner per table and figure of
//! *"How Green is AutoML for Tabular Data?"* (EDBT 2025).
//!
//! | Runner | Paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — AutoML strategy design matrix |
//! | [`table2`] | Table 2 — the 39 AMLB datasets |
//! | [`fig3`] | Fig. 3 — execution/inference energy vs balanced accuracy (+ §3.2.1 dataset-level analysis) |
//! | [`fig4`] | Fig. 4 — total energy vs number of predictions (TabPFN crossover) |
//! | [`fig5`] | Fig. 5 — parallelism: accuracy & energy across 1/2/4/8 cores |
//! | [`fig6`] | Fig. 6 — inference-time constraints (CAML) and refit (AutoGluon) |
//! | [`fig7`] | Fig. 7 — development + execution + inference incl. CAML(tuned) |
//! | [`fig8`] | Fig. 8 — the guideline flowchart |
//! | [`table3`] | Table 3 — GPU vs CPU ratios |
//! | [`table4`] | Table 4 — trillion-prediction cost |
//! | [`table5`] | Table 5 — tuned AutoML parameters per budget |
//! | [`table6`] | Table 6 — 5 min worse than 1 min (overfitting counts) |
//! | [`table7`] | Table 7 — actual vs specified execution time |
//! | [`table8`] | Table 8 — top-k representative datasets sweep |
//! | [`table9`] | Table 9 — BO-iteration sweep |
//! | [`serving`] | `serve` — one traffic trace replayed against every system's deployment (O1 / Fig. 4 under load) |
//! | [`chaos`] | `chaos` — energy under injected faults (crash/timeout/OOM trials, replica crashes), with determinism asserted |
//! | [`cluster`] | `cluster` — the multi-host executor under host-level chaos (crash/straggler/partition): grid bytes asserted identical at every (hosts × jobs) shape, kill/resume per shard, per-host energy accounting |
//! | [`fleet`] | `fleet` — multi-tenant multi-region serving: carbon-blind vs carbon-aware routing, elastic replica pools, seeded diurnal grid curves |
//! | [`trace`] | `trace` — span-level energy flamegraph (per-stage attribution + JSONL / Chrome `trace_event` sinks), byte-identical at every `--jobs` |
//!
//! All runners consume an [`ExpConfig`] controlling scale (the paper's full
//! protocol — 39 datasets × 10 runs × 28 compute-days — is reproduced in
//! *shape* at reduced repetition counts; see EXPERIMENTS.md) and return
//! [`report::ExperimentOutput`]s that render to text and CSV.

pub mod chaos;
pub mod cli;
pub mod cluster;
pub mod figs;
pub mod fleet;
pub mod report;
pub mod serving;
pub mod suite;
pub mod tables;
pub mod trace;

pub use cli::{CliArgs, CliError};
pub use figs::{fig3, fig4, fig5, fig6, fig7, fig8};
pub use green_automl_core::executor::resolve_parallelism;
pub use report::{ExperimentOutput, Table};
pub use suite::{ExpConfig, SharedPoints};
pub use tables::{table1, table2, table3, table4, table5, table6, table7, table8, table9};

/// Every experiment id, in the paper's order of appearance.
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "table1", "table2", "fig3", "fig4", "fig5", "fig6", "table3", "table4", "fig7", "table5",
        "table6", "fig8", "table7", "table8", "table9", "serve", "fleet", "chaos", "cluster",
        "trace",
    ]
}

/// Run one experiment by id (reusing `shared` grid points where possible).
pub fn run_experiment(
    id: &str,
    cfg: &ExpConfig,
    shared: &mut SharedPoints,
) -> Option<ExperimentOutput> {
    match id {
        "table1" => Some(table1::run()),
        "table2" => Some(table2::run(cfg)),
        "fig3" => Some(fig3::run(cfg, shared)),
        "fig4" => Some(fig4::run(cfg, shared)),
        "fig5" => Some(fig5::run(cfg)),
        "fig6" => Some(fig6::run(cfg)),
        "fig7" => Some(fig7::run(cfg, shared)),
        "fig8" => Some(fig8::run()),
        "table3" => Some(table3::run(cfg)),
        "table4" => Some(table4::run(cfg, shared)),
        "table5" => Some(table5::run(cfg)),
        "table6" => Some(table6::run(cfg, shared)),
        "table7" => Some(table7::run(cfg, shared)),
        "table8" => Some(table8::run(cfg)),
        "table9" => Some(table9::run(cfg)),
        "serve" => Some(serving::run(cfg)),
        "fleet" => Some(fleet::run(cfg)),
        "chaos" => Some(chaos::run(cfg)),
        "cluster" => Some(cluster::run(cfg)),
        "trace" => Some(trace::run(cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        for id in ["table1", "fig8"] {
            assert!(run_experiment(id, &cfg, &mut shared).is_some(), "{id}");
        }
        assert!(run_experiment("nope", &cfg, &mut shared).is_none());
        assert_eq!(all_experiment_ids().len(), 20);
    }
}
