//! Fig. 7 — the holistic three-stage picture (§3.7): development-stage
//! tuning of CAML's AutoML parameters per search budget, the resulting
//! CAML(tuned) execution/inference profile against every other system, and
//! the amortisation point of the development energy.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::{ExpConfig, SharedPoints};
use green_automl_core::amortize::runs_to_amortize;
use green_automl_core::benchmark::{average_points, run_grid};
use green_automl_core::devtune::{DevTuneOptions, DevTuner};
use green_automl_dataset::dev_binary_pool;
use green_automl_systems::{AutoMlSystem, Caml, SystemId};

/// Run the development-stage experiment.
pub fn run(cfg: &ExpConfig, shared: &mut SharedPoints) -> ExperimentOutput {
    let pool = dev_binary_pool();
    let datasets = cfg.datasets();
    let opts = cfg.bench_options();

    let mut tuned_rows = Vec::new();
    let mut notes = Vec::new();

    // Baseline grid (all systems) from the shared Fig.-3 points.
    let base_avg = average_points(shared.grid(cfg), cfg.bootstrap, cfg.seed);

    for &budget in &cfg.budgets {
        // 1. Tune CAML's AutoML parameters for this budget on the top-k
        //    representative binary datasets (the development stage).
        let tune_opts = DevTuneOptions {
            budget_s: budget,
            top_k: cfg.devtune_top_k,
            bo_iters: cfg.devtune_iters,
            runs_per_eval: 2,
            materialize: cfg.materialize,
            seed: cfg.seed,
        };
        let outcome = DevTuner::tune(&pool, &tune_opts);
        let dev_kwh = outcome.development.kwh();

        // 2. Execute CAML(tuned) on the benchmark datasets at this budget.
        let tuned: Vec<Box<dyn AutoMlSystem>> = vec![Box::new(Caml::tuned(outcome.params.clone()))];
        let points = run_grid(&tuned, &datasets, &[budget], &cfg.base_spec(), &opts);
        let avg = average_points(&points, cfg.bootstrap, cfg.seed);
        let Some(t) = avg.first() else { continue };

        tuned_rows.push(vec![
            fmt(budget),
            fmt(t.balanced_accuracy),
            fmt(t.execution_kwh),
            fmt(t.inference_kwh_per_row),
            fmt(dev_kwh),
            outcome.n_pruned.to_string(),
            outcome
                .params
                .families
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join("+"),
        ]);

        // 3. Amortisation: runs of tuned CAML needed to repay the tuning
        //    energy, given the per-run saving vs default CAML.
        if let Some(d) = base_avg
            .iter()
            .find(|a| a.system == SystemId::Caml && a.budget_s == budget)
        {
            if let Some(runs) = runs_to_amortize(dev_kwh, d.execution_kwh, t.execution_kwh) {
                notes.push(format!(
                    "budget {budget:.0}s: development cost {dev_kwh:.3} kWh amortises after {runs:.0} tuned runs (paper: 885 runs at 5min)"
                ));
            } else {
                notes.push(format!(
                    "budget {budget:.0}s: tuned CAML did not save execution energy vs default in this sample"
                ));
            }
            if t.balanced_accuracy > d.balanced_accuracy {
                notes.push(format!(
                    "budget {budget:.0}s: CAML(tuned) beats default CAML by {:.1}% balanced accuracy",
                    (t.balanced_accuracy - d.balanced_accuracy) * 100.0
                ));
            }
        }
    }

    let tuned_table = Table::new(
        "Fig 7: CAML(tuned) per budget — accuracy, execution/inference energy, development cost",
        vec![
            "budget_s",
            "balanced_accuracy",
            "execution_kwh",
            "inference_kwh_per_prediction",
            "development_kwh",
            "pruned_trials",
            "tuned_families",
        ],
        tuned_rows,
    );

    // Context: the other systems at the same budgets (from the shared grid).
    let context_rows = base_avg
        .iter()
        .map(|a| {
            vec![
                a.system.to_string(),
                fmt(a.budget_s),
                fmt(a.balanced_accuracy),
                fmt(a.execution_kwh),
                fmt(a.inference_kwh_per_row),
            ]
        })
        .collect();
    let context = Table::new(
        "Fig 7: baseline systems (development cost = 0 by the paper's accounting)",
        vec![
            "system",
            "budget_s",
            "balanced_accuracy",
            "execution_kwh",
            "inference_kwh_per_prediction",
        ],
        context_rows,
    );

    ExperimentOutput {
        id: "fig7",
        files: Vec::new(),
        tables: vec![tuned_table, context],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_produces_rows_and_development_energy() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        let out = run(&cfg, &mut shared);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows.len(), cfg.budgets.len());
        // Development energy column must be positive.
        let dev: f64 = out.tables[0].rows[0][4].parse().unwrap();
        assert!(dev > 0.0);
    }
}
