//! Figure reproductions (Fig. 3 – Fig. 8).

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
