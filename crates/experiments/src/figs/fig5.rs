//! Fig. 5 — impact of parallelism: balanced accuracy and execution energy
//! of CAML and AutoGluon across 1 / 2 / 4 / 8 cores (§3.3 / Observation
//! O4: one core is Pareto-optimal for sequential BO, multiple cores for
//! embarrassingly parallel bagging).

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::benchmark::run_grid;
use green_automl_systems::{AutoGluon, AutoMlSystem, Caml, RunSpec, SystemId};

/// Core counts swept (each physical CPU of the testbed has two cores).
pub const CORE_GRID: [usize; 4] = [1, 2, 4, 8];

/// Run the parallelism sweep.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let datasets = cfg.datasets();
    // A subset keeps the sweep affordable; shapes are per-system anyway.
    let datasets = &datasets[..datasets.len().min(8)];
    let opts = cfg.bench_options();

    let mut rows = Vec::new();
    let mut per_sys_core: Vec<(String, usize, f64, f64, f64)> = Vec::new();
    for cores in CORE_GRID {
        let spec = RunSpec {
            cores,
            ..cfg.base_spec()
        };
        let systems: Vec<Box<dyn AutoMlSystem>> =
            vec![Box::new(Caml::default()), Box::new(AutoGluon::default())];
        let points = run_grid(&systems, datasets, &cfg.budgets, &spec, &opts);
        for sys in [SystemId::Caml, SystemId::AutoGluon] {
            for &b in &cfg.budgets {
                let cell: Vec<_> = points
                    .iter()
                    .filter(|p| p.system == sys && p.budget_s == b)
                    .collect();
                if cell.is_empty() {
                    continue;
                }
                let n = cell.len() as f64;
                let acc = cell.iter().map(|p| p.balanced_accuracy).sum::<f64>() / n;
                let kwh = cell.iter().map(|p| p.execution.kwh()).sum::<f64>() / n;
                let secs = cell.iter().map(|p| p.execution.duration_s).sum::<f64>() / n;
                rows.push(vec![
                    sys.to_string(),
                    cores.to_string(),
                    fmt(b),
                    fmt(acc),
                    fmt(kwh),
                    fmt(secs),
                ]);
                per_sys_core.push((sys.to_string(), cores, b, acc, kwh));
            }
        }
    }
    let table = Table::new(
        "Fig 5: accuracy and execution energy across CPU cores",
        vec![
            "system",
            "cores",
            "budget_s",
            "balanced_accuracy",
            "execution_kwh",
            "execution_s",
        ],
        rows,
    );

    // Findings at the largest budget.
    let bmax = cfg.budgets.last().copied().unwrap_or(0.0);
    let kwh_of = |sys: &str, cores: usize| {
        per_sys_core
            .iter()
            .find(|(s, c, b, _, _)| s == sys && *c == cores && *b == bmax)
            .map(|(_, _, _, _, k)| *k)
    };
    let mut notes = Vec::new();
    if let (Some(c1), Some(c8)) = (kwh_of("CAML", 1), kwh_of("CAML", 8)) {
        notes.push(format!(
            "CAML on 8 cores uses {:.2}x the energy of 1 core (paper: up to 2.7x) — 1 core is Pareto-optimal",
            c8 / c1.max(1e-30)
        ));
    }
    if let (Some(a1), Some(a8)) = (kwh_of("AutoGluon", 1), kwh_of("AutoGluon", 8)) {
        notes.push(format!(
            "AutoGluon on 8 cores uses {:.2}x the energy of 1 core — parallel bagging makes more cores {} energy-efficient",
            a8 / a1.max(1e-30),
            if a8 < a1 { "MORE" } else { "not" }
        ));
    }
    ExperimentOutput {
        id: "fig5",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caml_wastes_energy_on_extra_cores_autogluon_does_not() {
        let cfg = ExpConfig::smoke();
        let out = run(&cfg);
        // Extract per-system 1-core vs 8-core energies from the table.
        let kwh = |sys: &str, cores: &str| -> f64 {
            out.tables[0]
                .rows
                .iter()
                .filter(|r| r[0] == sys && r[1] == cores)
                .map(|r| r[4].parse::<f64>().unwrap())
                .sum()
        };
        let caml_ratio = kwh("CAML", "8") / kwh("CAML", "1");
        // Tiny smoke datasets are partially work-bound, which compresses
        // the ratio below the paper's budget-bound 2.7x; the full profile
        // reproduces the larger gap.
        assert!(
            caml_ratio > 1.15,
            "CAML 8-core/1-core energy ratio {caml_ratio:.2} should exceed 1.15"
        );
        let ag_ratio = kwh("AutoGluon", "8") / kwh("AutoGluon", "1");
        assert!(
            ag_ratio < caml_ratio,
            "AutoGluon should benefit more from cores than CAML ({ag_ratio:.2} vs {caml_ratio:.2})"
        );
    }

    use green_automl_core::benchmark::run_once;

    #[test]
    fn run_once_is_exercised_for_doc_parity() {
        // Keep the imported helper honest (used by other figures too).
        let cfg = ExpConfig::smoke();
        let meta = cfg.datasets()[0];
        let p = run_once(
            &Caml::default(),
            &meta,
            &cfg.base_spec(),
            &cfg.bench_options(),
        );
        assert_eq!(p.system, SystemId::Caml);
    }
}
