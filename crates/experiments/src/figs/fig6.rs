//! Fig. 6 — configuring AutoML systems for inference (§3.4 / Observation
//! O3): CAML with inference-time constraints of 0.001–0.003 s/instance,
//! and AutoGluon's `good_quality_faster_inference_only_refit` preset.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::benchmark::run_once_on;
use green_automl_core::executor::{resolve_parallelism, run_indexed, DatasetCache};
use green_automl_dataset::MaterializeOptions;
use green_automl_systems::{AutoGluon, AutoGluonQuality, AutoMlSystem, Caml, Constraints, RunSpec};

/// The constraint sweep, seconds per instance. The paper used 1–3 ms on
/// its Python testbed; our simulated pipelines predict in the 10–300 µs
/// range, so the grid is scaled to the same *relative* position within the
/// achievable latency band (the shape — tighter limit, less energy, less
/// accuracy — is what reproduces).
pub const CONSTRAINTS: [f64; 3] = [2.0e-5, 4.0e-5, 8.0e-5];

/// Run the inference-configuration sweep.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let datasets = cfg.datasets();
    let datasets = &datasets[..datasets.len().min(8)];
    let opts = cfg.bench_options();

    let mut rows = Vec::new();
    let mut summaries: Vec<(String, f64, f64)> = Vec::new(); // (variant, acc, inf kwh)

    let cache = DatasetCache::new();
    let mut sweep = |label: String, system: &dyn AutoMlSystem, constraints: Constraints| {
        let spec = RunSpec {
            constraints,
            ..cfg.base_spec()
        };
        // Cells in the reference (dataset, budget, run) order; the fan-out
        // preserves that order, so the serial folds below are bit-stable.
        let mut cells = Vec::new();
        for meta in datasets {
            for &b in &cfg.budgets {
                for r in 0..opts.runs {
                    let s = RunSpec {
                        budget_s: b,
                        seed: cfg.seed ^ (r as u64 * 0x9e37) ^ meta.openml_id as u64,
                        ..spec
                    };
                    cells.push((meta, s));
                }
            }
        }
        let points = run_indexed(cells.len(), resolve_parallelism(opts.parallelism), |i| {
            let (meta, s) = &cells[i];
            let m_opts = MaterializeOptions {
                seed: s.seed,
                ..opts.materialize
            };
            let ds = cache.materialize(meta, &m_opts);
            run_once_on(system, meta, &ds, s, &opts)
        });
        let n = points.len() as f64;
        let acc = points.iter().map(|p| p.balanced_accuracy).sum::<f64>() / n;
        let inf = points.iter().map(|p| p.inference_kwh_per_row).sum::<f64>() / n;
        let inf_s = points.iter().map(|p| p.inference_s_per_row).sum::<f64>() / n;
        rows.push(vec![label.clone(), fmt(acc), fmt(inf), fmt(inf_s)]);
        summaries.push((label, acc, inf));
    };

    sweep(
        "CAML (unconstrained)".into(),
        &Caml::default(),
        Constraints::default(),
    );
    for limit in CONSTRAINTS {
        sweep(
            format!("CAML (<= {limit}s/inst)"),
            &Caml::default(),
            Constraints {
                max_inference_s_per_row: Some(limit),
            },
        );
    }
    sweep(
        "AutoGluon (best quality)".into(),
        &AutoGluon::default(),
        Constraints::default(),
    );
    sweep(
        "AutoGluon (faster inference, refit)".into(),
        &AutoGluon {
            quality: AutoGluonQuality::FasterInferenceRefit,
        },
        Constraints::default(),
    );

    let table = Table::new(
        "Fig 6: inference-optimised configurations",
        vec![
            "variant",
            "balanced_accuracy",
            "inference_kwh_per_prediction",
            "inference_s_per_prediction",
        ],
        rows,
    );

    let mut notes = Vec::new();
    let get = |label: &str| summaries.iter().find(|(l, _, _)| l.starts_with(label));
    if let (Some((_, acc_f, inf_f)), Some((_, acc_c, inf_c))) =
        (get("CAML (unconstrained)"), get("CAML (<= 0.00002"))
    {
        notes.push(format!(
            "tightest CAML constraint saves {:.0}% inference energy at {:.1}% accuracy cost (paper: up to 69% / 6%)",
            (1.0 - inf_c / inf_f.max(1e-30)) * 100.0,
            (acc_f - acc_c) * 100.0
        ));
    }
    if let (Some((_, acc_b, inf_b)), Some((_, acc_r, inf_r))) =
        (get("AutoGluon (best"), get("AutoGluon (faster"))
    {
        notes.push(format!(
            "AutoGluon refit saves {:.0}% inference energy at {:.1}% accuracy cost (paper: up to 79% / 5%)",
            (1.0 - inf_r / inf_b.max(1e-30)) * 100.0,
            (acc_b - acc_r) * 100.0
        ));
    }

    ExperimentOutput {
        id: "fig6",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_reduce_inference_energy() {
        let cfg = ExpConfig::smoke();
        let out = run(&cfg);
        let inf = |label: &str| -> f64 {
            out.tables[0]
                .rows
                .iter()
                .find(|r| r[0].starts_with(label))
                .map(|r| r[2].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(
            inf("CAML (<= 0.00002") <= inf("CAML (unconstrained)") * 1.001,
            "constraint must not raise inference energy"
        );
        assert!(
            inf("AutoGluon (faster") < inf("AutoGluon (best"),
            "refit must cut inference energy"
        );
        assert_eq!(out.tables[0].rows.len(), 6);
    }
}
