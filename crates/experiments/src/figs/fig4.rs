//! Fig. 4 — total (execution + inference) energy against the number of
//! predictions, and the TabPFN crossover point (§3.2.2 / Observation O2:
//! "for fewer than 26k predictions, TabPFN is the most energy efficient").

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::{ExpConfig, SharedPoints};
use green_automl_core::amortize::{crossover_predictions, total_kwh};
use green_automl_core::benchmark::average_points;
use green_automl_systems::SystemId;
use std::collections::BTreeMap;

/// Run the Fig. 4 analysis from the shared grid.
pub fn run(cfg: &ExpConfig, shared: &mut SharedPoints) -> ExperimentOutput {
    let points = shared.grid(cfg).to_vec();
    let avg = average_points(&points, cfg.bootstrap, cfg.seed);

    // Per system: the budget cell with the highest accuracy (the paper uses
    // each system's best-performing configuration).
    let mut best: BTreeMap<SystemId, (f64, f64, f64)> = BTreeMap::new(); // sys -> (acc, exec, inf)
    for a in &avg {
        let e = best
            .entry(a.system)
            .or_insert((f64::NEG_INFINITY, 0.0, 0.0));
        if a.balanced_accuracy > e.0 {
            *e = (
                a.balanced_accuracy,
                a.execution_kwh,
                a.inference_kwh_per_row,
            );
        }
    }

    let grid: Vec<f64> = (0..9).map(|i| 10f64.powi(i)).collect();
    let mut rows = Vec::new();
    for (sys, (_, exec, inf)) in &best {
        for &n in &grid {
            rows.push(vec![
                sys.to_string(),
                fmt(n),
                fmt(total_kwh(*exec, *inf, n)),
            ]);
        }
    }
    let curve = Table::new(
        "Fig 4: total energy (kWh) vs number of predictions",
        vec!["system", "n_predictions", "total_kwh"],
        rows,
    );

    // Crossover of TabPFN against the cheapest-inference searchers.
    let mut notes = Vec::new();
    let mut cross_rows = Vec::new();
    if let Some((_, pfn_exec, pfn_inf)) = best.get(&SystemId::TabPfn) {
        for other in [SystemId::Flaml, SystemId::Caml, SystemId::Tpot] {
            if let Some((_, o_exec, o_inf)) = best.get(&other) {
                if let Some(n) = crossover_predictions(*pfn_exec, *pfn_inf, *o_exec, *o_inf) {
                    cross_rows.push(vec!["TabPFN".to_string(), other.to_string(), fmt(n)]);
                    notes.push(format!(
                        "TabPFN stays cheapest up to ~{n:.0} predictions vs {other} (paper: ~26k)"
                    ));
                }
            }
        }
    }
    let cross = Table::new(
        "Fig 4: crossover points",
        vec![
            "cheap_execution_system",
            "cheap_inference_system",
            "crossover_predictions",
        ],
        cross_rows,
    );

    ExperimentOutput {
        id: "fig4",
        files: Vec::new(),
        tables: vec![curve, cross],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_exists_against_a_searcher() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        let out = run(&cfg, &mut shared);
        assert_eq!(out.tables.len(), 2);
        assert!(
            !out.tables[1].rows.is_empty(),
            "TabPFN must cross over at least one searcher"
        );
        // The curve covers 10^0..10^8 for each system.
        assert_eq!(out.tables[0].rows.len() % 9, 0);
    }
}
