//! Fig. 8 — the guideline flowchart, exercised over a grid of task
//! profiles so the decision table is visible in the output.

use crate::report::{ExperimentOutput, Table};
use green_automl_core::guideline::{recommend, Priority, TaskProfile};

/// Enumerate the flowchart over a representative profile grid.
pub fn run() -> ExperimentOutput {
    let mut rows = Vec::new();
    for (dev, many) in [(true, true), (true, false), (false, false)] {
        for budget in [5.0, 60.0] {
            for classes in [2usize, 50] {
                for gpu in [true, false] {
                    for prio in [
                        Priority::FastInference,
                        Priority::Accuracy,
                        Priority::ParetoEnergyAccuracy,
                    ] {
                        let t = TaskProfile {
                            has_dev_compute: dev,
                            many_executions: many,
                            budget_s: budget,
                            n_classes: classes,
                            gpu_available: gpu,
                            priority: prio,
                            serving: None,
                        };
                        rows.push(vec![
                            dev.to_string(),
                            many.to_string(),
                            format!("{budget:.0}"),
                            classes.to_string(),
                            gpu.to_string(),
                            format!("{prio:?}"),
                            format!("{:?}", recommend(&t)),
                        ]);
                    }
                }
            }
        }
    }
    let table = Table::new(
        "Fig 8: guideline decisions over task profiles",
        vec![
            "dev_compute",
            "many_executions",
            "budget_s",
            "classes",
            "gpu",
            "priority",
            "recommendation",
        ],
        rows,
    );
    ExperimentOutput {
        id: "fig8",
        files: Vec::new(),
        tables: vec![table],
        notes: vec![
            "dev compute + thousands of runs => tune the AutoML parameters".into(),
            "budget < 10s => TabPFN (<= 10 classes, GPU) else CAML".into(),
            "else: fast inference => FLAML; accuracy => AutoGluon; Pareto => CAML".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_core::guideline::Recommendation;

    #[test]
    fn decision_table_covers_all_outcomes() {
        let out = run();
        let outcomes: std::collections::BTreeSet<&str> =
            out.tables[0].rows.iter().map(|r| r[6].as_str()).collect();
        for want in [
            format!("{:?}", Recommendation::TuneAutoMlParameters),
            format!("{:?}", Recommendation::TabPfn),
            format!("{:?}", Recommendation::Caml),
            format!("{:?}", Recommendation::Flaml),
            format!("{:?}", Recommendation::AutoGluon),
        ] {
            assert!(outcomes.contains(want.as_str()), "missing {want}");
        }
    }
}
