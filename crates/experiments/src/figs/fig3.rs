//! Fig. 3 — search time, average balanced accuracy, and energy consumption
//! during execution and inference for each AutoML system, plus the
//! dataset-level analysis of §3.2.1.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::{ExpConfig, SharedPoints};
use green_automl_core::benchmark::average_points;
use green_automl_systems::SystemId;
use std::collections::BTreeMap;

/// Run the Fig. 3 protocol.
pub fn run(cfg: &ExpConfig, shared: &mut SharedPoints) -> ExperimentOutput {
    let points = shared.grid(cfg).to_vec();
    let avg = average_points(&points, cfg.bootstrap, cfg.seed);

    // Chart series: per (system, budget) — the two Fig. 3 panels.
    let mut rows = Vec::new();
    for a in &avg {
        rows.push(vec![
            a.system.to_string(),
            fmt(a.budget_s),
            fmt(a.balanced_accuracy),
            fmt(a.accuracy_std),
            fmt(a.execution_kwh),
            fmt(a.inference_kwh_per_row),
            a.n_points.to_string(),
        ]);
    }
    let main = Table::new(
        "Fig 3: balanced accuracy vs energy (execution & inference) per system and budget",
        vec![
            "system",
            "budget_s",
            "balanced_accuracy",
            "acc_std",
            "execution_kwh",
            "inference_kwh_per_prediction",
            "n",
        ],
        rows,
    );

    // §3.2.1 dataset-level winners per budget.
    let mut budgets: Vec<f64> = points.iter().map(|p| p.budget_s).collect();
    budgets.sort_by(|a, b| a.partial_cmp(b).expect("budgets are finite"));
    budgets.dedup();
    let mut winner_rows = Vec::new();
    let mut winner_notes: Vec<String> = Vec::new();
    for &b in &budgets {
        // Mean accuracy per (dataset, system) at this budget.
        let mut per: BTreeMap<(String, SystemId), (f64, usize)> = BTreeMap::new();
        for p in points.iter().filter(|p| p.budget_s == b) {
            let e = per.entry((p.dataset.clone(), p.system)).or_insert((0.0, 0));
            e.0 += p.balanced_accuracy;
            e.1 += 1;
        }
        let mut wins: BTreeMap<SystemId, usize> = BTreeMap::new();
        let mut datasets: Vec<String> = per.keys().map(|(d, _)| d.clone()).collect();
        datasets.dedup();
        let n_datasets = datasets.len();
        for d in datasets {
            let best = per
                .iter()
                .filter(|((dd, _), _)| dd == &d)
                .max_by(|a, b| {
                    let ma = a.1 .0 / a.1 .1 as f64;
                    let mb = b.1 .0 / b.1 .1 as f64;
                    ma.partial_cmp(&mb).expect("accuracies are finite")
                })
                .map(|((_, s), _)| *s);
            if let Some(s) = best {
                *wins.entry(s).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(SystemId, usize)> = wins.into_iter().collect();
        ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        for (system, w) in &ranked {
            winner_rows.push(vec![
                fmt(b),
                system.to_string(),
                w.to_string(),
                n_datasets.to_string(),
            ]);
        }
        if let Some((top, w)) = ranked.first() {
            winner_notes.push(format!(
                "budget {b:.0}s: {top} wins most datasets ({w}/{n_datasets})"
            ));
        }
    }
    let winners = Table::new(
        "Fig 3 / sec 3.2.1: dataset-level winners per budget",
        vec!["budget_s", "system", "datasets_won", "datasets_total"],
        winner_rows,
    );

    // §3.2.1 execution-energy std-dev across datasets at the largest budget.
    let bmax = budgets.last().copied().unwrap_or(0.0);
    let mut sys_energy: BTreeMap<SystemId, Vec<f64>> = BTreeMap::new();
    for p in points.iter().filter(|p| p.budget_s == bmax) {
        sys_energy
            .entry(p.system)
            .or_default()
            .push(p.execution.kwh());
    }
    let mut std_rows = Vec::new();
    for (system, es) in &sys_energy {
        let mean = es.iter().sum::<f64>() / es.len() as f64;
        let var = es.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / es.len() as f64;
        std_rows.push(vec![system.to_string(), fmt(mean), fmt(var.sqrt())]);
    }
    let stds = Table::new(
        format!("Fig 3 / sec 3.2.1: execution-energy spread across datasets at {bmax:.0}s"),
        vec!["system", "mean_kwh", "std_kwh"],
        std_rows,
    );

    // Headline findings (the paper's qualitative claims).
    let mut notes = winner_notes;
    let find =
        |sys: SystemId, budget: f64| avg.iter().find(|a| a.system == sys && a.budget_s == budget);
    if let (Some(pfn), Some(flaml)) = (find(SystemId::TabPfn, bmax), find(SystemId::Flaml, bmax)) {
        notes.push(format!(
            "TabPFN inference energy is {:.0}x FLAML's; its execution energy is {:.4}x FLAML's",
            pfn.inference_kwh_per_row / flaml.inference_kwh_per_row.max(1e-30),
            pfn.execution_kwh / flaml.execution_kwh.max(1e-30),
        ));
    }
    if let (Some(ag), Some(caml)) = (find(SystemId::AutoGluon, bmax), find(SystemId::Caml, bmax)) {
        notes.push(format!(
            "AutoGluon (ensembling) inference energy is {:.1}x CAML's (single model) — Observation O1",
            ag.inference_kwh_per_row / caml.inference_kwh_per_row.max(1e-30),
        ));
    }

    ExperimentOutput {
        id: "fig3",
        files: Vec::new(),
        tables: vec![main, winners, stds],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_sections() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        let out = run(&cfg, &mut shared);
        assert_eq!(out.id, "fig3");
        assert_eq!(out.tables.len(), 3);
        // 4 systems survive a 10s-only smoke budget (ASKL/TPOT floors).
        assert!(out.tables[0].rows.len() >= 4);
        assert!(!out.notes.is_empty());
    }
}
