//! `cluster` — the multi-host executor artefact, with its invariants
//! **asserted at runtime**, not just claimed.
//!
//! Runs a reduced benchmark grid on simulated clusters at three
//! (hosts × jobs) shapes — `1×1`, `2×4`, `4×2` — twice: clean, and under
//! the seeded [`FaultPlan::cluster_chaos`] profile (host crashes,
//! stragglers, partitions on top of trial faults). The artefact asserts:
//!
//! 1. the grid's scientific output (points + failures, every float
//!    compared by bits) is identical at every shape, clean and faulted;
//! 2. the cluster report is jobs-invariant (same topology, different
//!    `--jobs` → byte-identical report and trace);
//! 3. a chaos run killed mid-grid — its per-host shard checkpoints
//!    truncated to a prefix — resumes per shard to the same grid bits
//!    and reconstructs byte-identical shard journals.
//!
//! The per-host table shows where the Joules went on the headline
//! `--hosts` topology: busy/transfer/wasted/overhead/idle energy, bytes
//! shipped, and the crash/retry/speculation counters the scheduler's
//! robustness machinery produced.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::benchmark::GridRun;
use green_automl_core::checkpoint::shard_path;
use green_automl_core::cluster::{run_grid_cluster, ClusterGridRun, ClusterOptions};
use green_automl_core::fault::FaultPlan;
use green_automl_dataset::DatasetMeta;
use green_automl_energy::{MetricsRegistry, StableHasher};
use green_automl_systems::{all_systems, RunSpec};
use std::path::Path;

/// The (hosts, jobs) shapes exercised by the runtime equivalence check
/// (the full {1,2,4}² product lives in `tests/cluster_equivalence.rs`).
const SHAPES: [(usize, usize); 3] = [(1, 1), (2, 4), (4, 2)];

/// The cluster grid is deliberately small: every cell is recomputed at
/// each shape (plus the kill/resume pair), so the point is scheduler
/// behaviour, not Fig.-3 coverage.
fn cluster_scope(cfg: &ExpConfig) -> (Vec<DatasetMeta>, Vec<f64>) {
    let datasets: Vec<DatasetMeta> = cfg.datasets().into_iter().take(3).collect();
    let budgets: Vec<f64> = cfg.budgets.iter().copied().take(2).collect();
    (datasets, budgets)
}

/// Bitwise fingerprint of a grid's scientific output: every float enters
/// by its bit pattern, so two equal fingerprints mean the artefacts are
/// byte-identical, not merely approximately equal. The scheduler
/// telemetry counters (`retried_cells` & co.) are deliberately excluded:
/// they describe the topology, not the science.
fn grid_bits(grid: &GridRun) -> u64 {
    let mut h = StableHasher::new(0xc1a5_b175);
    h.write_usize(grid.points.len());
    for p in &grid.points {
        h.write_str(&p.system.to_string());
        h.write_str(&p.dataset);
        h.write_f64(p.budget_s);
        h.write_u64(p.seed);
        h.write_f64(p.balanced_accuracy);
        h.write_f64(p.execution.energy.package_j);
        h.write_f64(p.execution.energy.dram_j);
        h.write_f64(p.execution.energy.gpu_j);
        h.write_f64(p.execution.duration_s);
        h.write_f64(p.inference_kwh_per_row);
        h.write_f64(p.inference_s_per_row);
        h.write_usize(p.n_models);
        h.write_usize(p.n_evaluations);
        h.write_usize(p.n_trial_faults);
        h.write_f64(p.wasted_j);
    }
    h.write_usize(grid.failures.len());
    for f in &grid.failures {
        h.write_usize(f.cell);
        h.write_str(&f.message);
    }
    h.finish()
}

/// The per-host shard journals of a checkpointed cluster run, as sorted
/// line sets (append order differs between a straight run and a resumed
/// one; the sealed records must not).
fn shard_lines(path: &Path, n_hosts: usize) -> Vec<Vec<String>> {
    (0..n_hosts)
        .map(|h| {
            let mut lines: Vec<String> = std::fs::read_to_string(shard_path(path, h, n_hosts))
                .unwrap_or_default()
                .lines()
                .map(str::to_string)
                .collect();
            lines.sort();
            lines
        })
        .collect()
}

/// Truncate each shard journal to the on-disk state of a run killed
/// mid-grid: the header plus the sealed records of roughly the first
/// half of its lines (cut at a `done` boundary, the way a kill between
/// flushes would leave it).
fn kill_shards(path: &Path, n_hosts: usize) {
    for h in 0..n_hosts {
        let shard = shard_path(path, h, n_hosts);
        let Ok(contents) = std::fs::read_to_string(&shard) else {
            continue;
        };
        let lines: Vec<&str> = contents.lines().collect();
        let half = 1 + lines.len().saturating_sub(1) / 2;
        let keep = lines[..half.min(lines.len())]
            .iter()
            .rposition(|l| l.starts_with("done\t"))
            .map_or(1, |i| i + 1);
        let mut kept = lines[..keep].join("\n");
        kept.push('\n');
        std::fs::write(&shard, kept).expect("rewrite truncated shard");
    }
}

/// Run the cluster artefact.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let (datasets, budgets) = cluster_scope(cfg);
    let systems = all_systems();
    let opts = cfg.bench_options();
    let clean_spec = cfg.base_spec();
    let mut chaos_plan = FaultPlan::cluster_chaos(cfg.seed ^ 0xc1a5);
    if let Some(p) = cfg.host_crash_p {
        chaos_plan.host_crash_p = p;
    }
    let chaos_spec = clean_spec.with_fault(chaos_plan);

    let run_shape = |spec: &RunSpec, hosts: usize, jobs: usize| -> ClusterGridRun {
        run_grid_cluster(
            &systems,
            &datasets,
            &budgets,
            spec,
            &green_automl_core::benchmark::BenchmarkOptions {
                parallelism: jobs,
                ..opts
            },
            &ClusterOptions::uniform(hosts),
            None,
        )
        .expect("cluster spec is valid")
    };

    // Invariant 1: the grid's scientific output is byte-identical at
    // every (hosts × jobs) shape, clean and chaos-faulted.
    let mut shape_rows = Vec::new();
    let mut chaos_runs = Vec::new();
    for (label, spec) in [("clean", &clean_spec), ("chaos", &chaos_spec)] {
        let mut reference: Option<u64> = None;
        for (hosts, jobs) in SHAPES {
            let run = run_shape(spec, hosts, jobs);
            let bits = grid_bits(&run.grid);
            match reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    bits, r,
                    "{label} grid must be byte-identical at {hosts} hosts x {jobs} jobs"
                ),
            }
            let r = &run.report;
            shape_rows.push(vec![
                label.to_string(),
                hosts.to_string(),
                jobs.to_string(),
                format!("{bits:016x}"),
                fmt(r.makespan_s),
                fmt(r.transfer_j),
                fmt(r.wasted_j),
                r.host_crashes.to_string(),
                r.stragglers.to_string(),
                r.partitions.to_string(),
                run.grid.retried_cells.to_string(),
                run.grid.requeued_cells.to_string(),
                run.grid.speculated_cells.to_string(),
            ]);
            if label == "chaos" {
                chaos_runs.push((hosts, jobs, run));
            }
        }
    }

    // Invariant 2: the cluster report (per-host accounting + trace) is a
    // pure function of the topology — rerunning a chaos shape with a
    // different jobs count must reproduce it byte for byte.
    let (hosts2, _, ref two_host) = chaos_runs[0 /* (2, 4) */];
    let rerun = run_shape(&chaos_spec, hosts2, 1);
    assert_eq!(
        rerun.report, two_host.report,
        "cluster report must be jobs-invariant"
    );
    assert_eq!(rerun.report.fingerprint(), two_host.report.fingerprint());

    // Invariant 3: a chaos run killed mid-grid resumes per shard to the
    // same bytes. Run checkpointed, truncate every shard journal to a
    // prefix, resume, and compare grid bits and sealed shard records.
    let kill_hosts = 4;
    let dir = std::env::temp_dir().join(format!(
        "green-automl-cluster-{}-{}",
        cfg.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let ckpt = dir.join("cluster.ckpt");
    let full = run_grid_cluster(
        &systems,
        &datasets,
        &budgets,
        &chaos_spec,
        &opts,
        &ClusterOptions::uniform(kill_hosts),
        Some(&ckpt),
    )
    .expect("cluster spec is valid");
    let full_shards = shard_lines(&ckpt, kill_hosts);
    kill_shards(&ckpt, kill_hosts);
    let resumed = run_grid_cluster(
        &systems,
        &datasets,
        &budgets,
        &chaos_spec,
        &opts,
        &ClusterOptions::uniform(kill_hosts),
        Some(&ckpt),
    )
    .expect("cluster spec is valid");
    assert!(
        resumed.grid.resumed_cells > 0,
        "the truncated journals must still replay some cells"
    );
    assert_eq!(
        grid_bits(&resumed.grid),
        grid_bits(&full.grid),
        "a killed chaos run must resume to the same grid bytes"
    );
    assert_eq!(
        shard_lines(&ckpt, kill_hosts),
        full_shards,
        "resumed shard journals must seal the same records"
    );
    let resumed_cells = resumed.grid.resumed_cells;
    let _ = std::fs::remove_dir_all(&dir);

    let shapes_table = Table::new(
        "cluster: the same grid at every (hosts x jobs) shape, clean and chaos",
        vec![
            "plan",
            "hosts",
            "jobs",
            "grid_bits",
            "makespan_s",
            "transfer_j",
            "wasted_j",
            "crashes",
            "stragglers",
            "partitions",
            "retried",
            "requeued",
            "speculated",
        ],
        shape_rows,
    );

    // The headline topology for the per-host breakdown.
    let headline = chaos_runs
        .iter()
        .find(|(h, _, _)| *h == cfg.hosts)
        .map(|(_, _, r)| r.clone())
        .unwrap_or_else(|| run_shape(&chaos_spec, cfg.hosts, cfg.parallelism));
    let report = &headline.report;
    let host_rows = report
        .hosts
        .iter()
        .map(|h| {
            vec![
                h.host.to_string(),
                h.device.clone(),
                if h.crashed { "yes" } else { "no" }.to_string(),
                h.cells_run.to_string(),
                fmt(h.busy_s),
                fmt(h.busy_j),
                fmt(h.transfer_j),
                fmt(h.wasted_j),
                fmt(h.overhead_j),
                fmt(h.idle_j),
                fmt(h.bytes_in),
                fmt(h.bytes_out),
                h.retried.to_string(),
                h.speculated.to_string(),
                h.requeued.to_string(),
            ]
        })
        .collect();
    let hosts_table = Table::new(
        format!(
            "cluster: per-host accounting under chaos ({} hosts, {} cells)",
            report.n_hosts, report.scheduled_cells
        ),
        vec![
            "host",
            "device",
            "crashed",
            "cells",
            "busy_s",
            "busy_j",
            "transfer_j",
            "wasted_j",
            "overhead_j",
            "idle_j",
            "bytes_in",
            "bytes_out",
            "retried",
            "speculated",
            "requeued",
        ],
        host_rows,
    );

    let mut registry = MetricsRegistry::new();
    report.export_metrics(&mut registry);
    let files = vec![
        ("cluster.report.txt".to_string(), report.to_text()),
        ("cluster.trace.jsonl".to_string(), report.trace.to_jsonl()),
        ("cluster.metrics.txt".to_string(), registry.render_text()),
    ];

    let notes = vec![
        format!(
            "determinism asserted: grid bits identical at {} shapes (clean and chaos), \
             cluster report byte-identical across jobs counts, and a mid-grid kill \
             resumed {resumed_cells} cell(s) from truncated shard journals to the same bytes",
            SHAPES.len()
        ),
        format!(
            "chaos plan: host crash {:.0}% / straggler {:.0}% (x{:.0} slowdown) / \
             partition {:.0}% ({:.1}s) on top of the trial-fault chaos profile",
            chaos_plan.host_crash_p * 100.0,
            chaos_plan.host_straggler_p * 100.0,
            chaos_plan.host_straggler_slowdown,
            chaos_plan.host_partition_p * 100.0,
            chaos_plan.host_partition_s
        ),
        format!(
            "headline topology ({} hosts): {} crashes, {} stragglers, {} partitions -> \
             {} retried / {} requeued / {} speculated cell(s), {} J shipped over the wire, \
             {} J wasted; every one of the {} scheduled cells still completed",
            report.n_hosts,
            report.host_crashes,
            report.stragglers,
            report.partitions,
            report.retried_cells,
            report.requeued_cells,
            report.speculated_cells,
            fmt(report.transfer_j),
            fmt(report.wasted_j),
            report.scheduled_cells
        ),
    ];

    ExperimentOutput {
        id: "cluster",
        files,
        tables: vec![shapes_table, hosts_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_artefact_asserts_equivalence_and_reports_hosts() {
        let out = run(&ExpConfig::smoke());
        assert_eq!(out.id, "cluster");
        assert_eq!(out.tables.len(), 2);
        // 2 plans x 3 shapes.
        assert_eq!(out.tables[0].rows.len(), 6);
        // Grid bits agree within each plan (the run() asserts already
        // enforce this — spot-check the rendered rows too).
        let bits = |row: &Vec<String>| row[3].clone();
        assert_eq!(bits(&out.tables[0].rows[0]), bits(&out.tables[0].rows[2]));
        assert_eq!(bits(&out.tables[0].rows[3]), bits(&out.tables[0].rows[5]));
        // Per-host table covers the default 4-host headline topology.
        assert_eq!(out.tables[1].rows.len(), 4);
        let names: Vec<&str> = out.files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "cluster.report.txt",
                "cluster.trace.jsonl",
                "cluster.metrics.txt"
            ]
        );
        assert!(out.files[1].1.lines().count() >= 4, "trace has host spans");
        assert!(out.notes.iter().any(|n| n.contains("determinism asserted")));
    }
}
