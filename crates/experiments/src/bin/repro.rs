//! The reproduction CLI.
//!
//! ```text
//! repro [IDS...] [--fast] [--runs N] [--datasets N] [--devtune-iters N]
//!       [--out DIR] [--seed N] [--jobs N] [--rps N] [--serve-workers N]
//!       [--slo-ms N] [--fleet-rps N] [--fleet-requests N]
//!       [--hosts N] [--host-crash-p P]
//!       [--checkpoint FILE] [--no-eval-cache] [--list]
//! ```
//!
//! With no ids (or `all`) every experiment runs in the paper's order and
//! writes `<id>.txt` / `<id>.<n>.csv` under the output directory
//! (default `results/`). Exits 2 on a malformed command line (with the
//! offending flag or id named — see [`green_automl_experiments::CliError`])
//! and 1 if any result fails to write.

use green_automl_experiments::{all_experiment_ids, run_experiment, CliArgs, SharedPoints};
use std::time::Instant;

fn usage() {
    eprintln!(
        "usage: repro [IDS...] [--fast|--full] [--runs N] [--datasets N] \
         [--devtune-iters N] [--out DIR] [--seed N] [--jobs N] \
         [--rps N] [--serve-workers N] [--slo-ms N] \
         [--fleet-rps N] [--fleet-requests N] [--hosts N] [--host-crash-p P] \
         [--checkpoint FILE] [--no-eval-cache] [--list]\n\
         --jobs N: benchmark worker threads (0 = all cores, 1 = serial; \
         results are identical at every setting)\n\
         --no-eval-cache: disable grid-wide evaluation memoisation \
         (slower; results are identical either way)\n\
         --rps N / --serve-workers N / --slo-ms N: serving-trace arrival \
         rate, replica count, and p99 latency SLO for the `serve` experiment\n\
         --fleet-rps N / --fleet-requests N: per-tenant base arrival rate \
         and request count for the `fleet` experiment\n\
         --hosts N / --host-crash-p P: headline cluster topology and \
         host-crash probability for the `cluster` experiment (grid \
         results are identical at every host count)\n\
         --checkpoint FILE: flush each finished grid cell to FILE and \
         resume a killed run from its completed cells\n\
         --list: print every experiment id and exit\n\
         ids: {} | all",
        all_experiment_ids().join(" | ")
    );
}

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("repro: {e}");
            usage();
            std::process::exit(2);
        }
    };
    if args.help {
        usage();
        return;
    }
    if args.list {
        for id in all_experiment_ids() {
            println!("{id}");
        }
        return;
    }
    let cfg = args.cfg;

    println!(
        "green-automl repro: {} experiment(s), {} datasets x {} runs, budgets {:?}, \
         {} worker(s), out {}",
        args.ids.len(),
        cfg.n_datasets,
        cfg.runs,
        cfg.budgets,
        green_automl_experiments::resolve_parallelism(cfg.parallelism),
        args.out_dir.display()
    );

    let mut shared = SharedPoints::default();
    let t_all = Instant::now();
    let mut failures = 0usize;
    for id in &args.ids {
        let t0 = Instant::now();
        match run_experiment(id, &cfg, &mut shared) {
            Some(output) => {
                if let Err(e) = output.write_to(&args.out_dir) {
                    eprintln!("{id}: failed to write results: {e}");
                    failures += 1;
                }
                println!("{}", output.render_text());
                println!("[{id} finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    println!(
        "all done in {:.1}s; results under {}",
        t_all.elapsed().as_secs_f64(),
        args.out_dir.display()
    );
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
