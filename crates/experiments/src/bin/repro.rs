//! The reproduction CLI.
//!
//! ```text
//! repro [IDS...] [--fast] [--runs N] [--datasets N] [--devtune-iters N]
//!       [--out DIR] [--seed N] [--jobs N] [--rps N] [--serve-workers N]
//!       [--slo-ms N] [--checkpoint FILE] [--list]
//! ```
//!
//! With no ids (or `all`) every experiment runs in the paper's order and
//! writes `<id>.txt` / `<id>.<n>.csv` under the output directory
//! (default `results/`). Exits non-zero if any id is unknown or any
//! result fails to write.

use green_automl_experiments::{all_experiment_ids, run_experiment, ExpConfig, SharedPoints};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: repro [IDS...] [--fast|--full] [--runs N] [--datasets N] \
         [--devtune-iters N] [--out DIR] [--seed N] [--jobs N] \
         [--rps N] [--serve-workers N] [--slo-ms N] [--checkpoint FILE] [--list]\n\
         --jobs N: benchmark worker threads (0 = all cores, 1 = serial; \
         results are identical at every setting)\n\
         --rps N / --serve-workers N / --slo-ms N: serving-trace arrival \
         rate, replica count, and p99 latency SLO for the `serve` experiment\n\
         --checkpoint FILE: flush each finished grid cell to FILE and \
         resume a killed run from its completed cells\n\
         --list: print every experiment id and exit\n\
         ids: {} | all",
        all_experiment_ids().join(" | ")
    );
    std::process::exit(2)
}

fn main() {
    let mut cfg = ExpConfig::standard();
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("results");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--fast" => {
                let keep_seed = cfg.seed;
                cfg = ExpConfig::fast();
                cfg.seed = keep_seed;
            }
            "--full" => {
                let keep_seed = cfg.seed;
                cfg = ExpConfig::default();
                cfg.runs = 10; // the paper's repetition count
                cfg.seed = keep_seed;
            }
            "--runs" => cfg.runs = num(&mut args).max(1),
            "--datasets" => cfg.n_datasets = num(&mut args).clamp(1, 39),
            "--devtune-iters" => cfg.devtune_iters = num(&mut args).max(1),
            "--seed" => cfg.seed = num(&mut args) as u64,
            "--jobs" => cfg.parallelism = num(&mut args),
            "--rps" => cfg.serve_rps = num(&mut args).max(1) as f64,
            "--serve-workers" => cfg.serve_replicas = num(&mut args).max(1),
            "--slo-ms" => cfg.slo_ms = num(&mut args).max(1) as f64,
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--checkpoint" => {
                cfg.checkpoint = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())))
            }
            "--list" => {
                for id in all_experiment_ids() {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = all_experiment_ids().iter().map(|s| s.to_string()).collect();
    }
    // Reject unknown ids up front rather than failing mid-run.
    let unknown: Vec<&String> = ids
        .iter()
        .filter(|id| !all_experiment_ids().contains(&id.as_str()))
        .collect();
    if !unknown.is_empty() {
        for id in unknown {
            eprintln!("unknown experiment id: {id}");
        }
        usage();
    }

    println!(
        "green-automl repro: {} experiment(s), {} datasets x {} runs, budgets {:?}, \
         {} worker(s), out {}",
        ids.len(),
        cfg.n_datasets,
        cfg.runs,
        cfg.budgets,
        green_automl_experiments::resolve_parallelism(cfg.parallelism),
        out_dir.display()
    );

    let mut shared = SharedPoints::default();
    let t_all = Instant::now();
    let mut failures = 0usize;
    for id in &ids {
        let t0 = Instant::now();
        match run_experiment(id, &cfg, &mut shared) {
            Some(output) => {
                if let Err(e) = output.write_to(&out_dir) {
                    eprintln!("{id}: failed to write results: {e}");
                    failures += 1;
                }
                println!("{}", output.render_text());
                println!("[{id} finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    println!(
        "all done in {:.1}s; results under {}",
        t_all.elapsed().as_secs_f64(),
        out_dir.display()
    );
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
