//! Shared experiment configuration and the cached Fig.-3 benchmark grid,
//! which several tables (4, 6, 7) are derived from.

use green_automl_core::benchmark::{
    run_grid_checked, BenchmarkOptions, BenchmarkPoint, BudgetGrid,
};
use green_automl_dataset::{amlb39, DatasetMeta, MaterializeOptions};
use green_automl_systems::{all_systems, RunSpec};
use std::path::PathBuf;

/// Scale knobs of the reproduction.
///
/// The paper's full protocol (39 datasets × 10 runs × 7 systems × 4 budgets
/// took 28 compute-days on a 28-core machine). This reproduction runs the
/// same grid on a simulated testbed; `runs`, `n_datasets`, and
/// `devtune_iters` trade fidelity against wall-clock (documented in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpConfig {
    /// Repetitions per cell (paper: 10).
    pub runs: usize,
    /// Number of AMLB datasets used, in Table 2 order (paper: 39).
    pub n_datasets: usize,
    /// Search-budget grid, seconds (paper: 10/30/60/300).
    pub budgets: Vec<f64>,
    /// Bootstrap resamples for aggregate uncertainty.
    pub bootstrap: usize,
    /// Base seed.
    pub seed: u64,
    /// Dataset materialisation profile.
    pub materialize: MaterializeOptions,
    /// Meta-BO iterations for the development-stage tuner (paper: 300;
    /// our default scales 1/10 — the sweep in table9 keeps the paper's
    /// ratios).
    pub devtune_iters: usize,
    /// Representative-dataset count for the tuner (paper: 20).
    pub devtune_top_k: usize,
    /// Worker threads for the benchmark grid: `0` = one per available
    /// core, `1` = serial. Grid results are byte-identical at every
    /// setting (see `green_automl_core::executor`).
    pub parallelism: usize,
    /// Grid-wide evaluation memoisation (`--no-eval-cache` disables it).
    /// Purely a wall-clock optimisation: results are byte-identical either
    /// way (see `green_automl_core::evalcache`).
    pub eval_cache: bool,
    /// Open-loop arrival rate for the `serve` experiment, requests per
    /// virtual second.
    pub serve_rps: f64,
    /// Requests in the replayed `serve` trace.
    pub serve_requests: usize,
    /// Simulated serving replicas for the `serve` experiment.
    pub serve_replicas: usize,
    /// p99 latency SLO the serving report is checked against, milliseconds.
    pub slo_ms: f64,
    /// Base arrival rate *per tenant* for the `fleet` experiment, requests
    /// per virtual second (shapes modulate around it).
    pub fleet_rps: f64,
    /// Requests each tenant sends in the `fleet` experiment.
    pub fleet_requests: usize,
    /// Checkpoint file for the shared benchmark grid: finished cells are
    /// flushed here as they complete, and a rerun of the same
    /// configuration resumes from them instead of recomputing (`None` =
    /// no checkpointing). See `green_automl_core::checkpoint`.
    pub checkpoint: Option<PathBuf>,
    /// Hosts in the simulated cluster of the `cluster` experiment
    /// (`--hosts`). The grid artefact is byte-identical at every host
    /// count; only the cluster report changes.
    pub hosts: usize,
    /// Override for the cluster chaos profile's host-crash probability
    /// (`--host-crash-p`; `None` keeps `FaultPlan::cluster_chaos`'s 4%).
    pub host_crash_p: Option<f64>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            runs: 3,
            n_datasets: 39,
            budgets: BudgetGrid::paper().to_vec(),
            bootstrap: 200,
            seed: 0,
            materialize: MaterializeOptions::benchmark(),
            devtune_iters: 30,
            devtune_top_k: 20,
            parallelism: 0,
            eval_cache: true,
            serve_rps: 500.0,
            serve_requests: 5_000,
            serve_replicas: 4,
            slo_ms: 50.0,
            fleet_rps: 500.0,
            fleet_requests: 2_000,
            checkpoint: None,
            hosts: 4,
            host_crash_p: None,
        }
    }
}

impl ExpConfig {
    /// The `repro` binary's default: the full budget grid on a 16-dataset
    /// spread with 2 runs per cell and 1/12-scaled tuner iterations —
    /// reproduces every shape in roughly half an hour of serial wall clock
    /// (`parallelism: 1`); with the default auto parallelism, grid-bound
    /// experiments scale with cores instead.
    /// (`ExpConfig::default()` is the full 39-dataset grid.)
    pub fn standard() -> Self {
        ExpConfig {
            runs: 2,
            n_datasets: 16,
            devtune_iters: 24,
            devtune_top_k: 12,
            ..Default::default()
        }
    }

    /// A fast profile: fewer datasets/runs, two budgets.
    pub fn fast() -> Self {
        ExpConfig {
            runs: 2,
            n_datasets: 10,
            budgets: vec![10.0, 60.0],
            bootstrap: 100,
            devtune_iters: 8,
            devtune_top_k: 6,
            ..Default::default()
        }
    }

    /// A smoke-test profile for unit tests.
    pub fn smoke() -> Self {
        ExpConfig {
            runs: 1,
            n_datasets: 2,
            budgets: vec![10.0],
            bootstrap: 20,
            materialize: MaterializeOptions::tiny(),
            devtune_iters: 2,
            devtune_top_k: 2,
            serve_requests: 400,
            fleet_requests: 250,
            ..Default::default()
        }
    }

    /// The datasets in play: exactly `min(n_datasets, 39)` rows, in
    /// Table 2 order.
    ///
    /// When truncating, spread the picks evenly over the table so both
    /// wide (early rows) and narrow (late rows) datasets stay represented.
    /// Evenly-spaced *indices* — `⌊i · (len−1) / (n−1)⌋` — always
    /// yield `n` distinct rows; the previous `step_by(ceil(len/n))`
    /// overshot for most `n` (e.g. `n = 16` stepped by 3 and returned only
    /// 13 of 39 rows).
    pub fn datasets(&self) -> Vec<DatasetMeta> {
        let all = amlb39();
        let n = self.n_datasets.min(all.len());
        if n == all.len() {
            return all;
        }
        if n <= 1 {
            return all.into_iter().take(n).collect();
        }
        (0..n)
            .map(|i| all[(i * (all.len() - 1)) / (n - 1)])
            .collect()
    }

    /// Benchmark options derived from this config.
    pub fn bench_options(&self) -> BenchmarkOptions {
        BenchmarkOptions {
            materialize: self.materialize,
            runs: self.runs,
            test_frac: 0.34,
            parallelism: self.parallelism,
            eval_cache: self.eval_cache,
        }
    }

    /// The base run specification (single core on the CPU testbed).
    pub fn base_spec(&self) -> RunSpec {
        RunSpec::single_core(self.budgets[0], self.seed)
    }
}

/// Lazily computed, shared Fig.-3 grid points.
#[derive(Debug, Default)]
pub struct SharedPoints {
    points: Option<Vec<BenchmarkPoint>>,
}

impl SharedPoints {
    /// The full system × dataset × budget × run grid, computed once.
    ///
    /// Runs fault-tolerantly: a panicking cell is reported to stderr and
    /// dropped rather than aborting every other cell, and when
    /// `cfg.checkpoint` is set a killed run resumes from its completed
    /// cells.
    pub fn grid(&mut self, cfg: &ExpConfig) -> &[BenchmarkPoint] {
        if self.points.is_none() {
            let systems = all_systems();
            let datasets = cfg.datasets();
            let grid = run_grid_checked(
                &systems,
                &datasets,
                &cfg.budgets,
                &cfg.base_spec(),
                &cfg.bench_options(),
                cfg.checkpoint.as_deref(),
            )
            .expect("ExpConfig produces a valid RunSpec");
            if grid.resumed_cells > 0 {
                eprintln!(
                    "grid: resumed {} completed cell(s) from {}",
                    grid.resumed_cells,
                    cfg.checkpoint
                        .as_deref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_default()
                );
            }
            for failure in &grid.failures {
                eprintln!(
                    "grid: cell {} ({} on {}) failed: {}",
                    failure.cell, failure.system, failure.dataset, failure.message
                );
            }
            if grid.eval_cache_hits + grid.eval_cache_misses > 0 {
                eprintln!(
                    "grid: eval cache {} hit(s) / {} miss(es)",
                    grid.eval_cache_hits, grid.eval_cache_misses
                );
            }
            if grid.retried_cells + grid.speculated_cells + grid.requeued_cells > 0 {
                eprintln!(
                    "grid: cluster recovery {} retried / {} speculated / {} requeued cell(s)",
                    grid.retried_cells, grid.speculated_cells, grid.requeued_cells
                );
            }
            self.points = Some(grid.points);
        }
        self.points.as_deref().expect("just computed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_truncation_spreads_over_the_table() {
        let cfg = ExpConfig {
            n_datasets: 5,
            ..Default::default()
        };
        let ds = cfg.datasets();
        assert_eq!(ds.len(), 5);
        // Spread: both wide (early rows) and narrow (late rows) present.
        assert!(ds[0].features > 1000);
        assert!(ds.last().unwrap().features < 100);
    }

    #[test]
    fn full_config_keeps_all_39() {
        assert_eq!(ExpConfig::default().datasets().len(), 39);
    }

    #[test]
    fn every_requested_count_is_honoured_exactly() {
        // Regression: step_by(ceil(39/n)) used to overshoot — n = 16
        // returned only 13 datasets, so ExpConfig::standard() silently
        // benchmarked fewer datasets than advertised.
        for n in 1..=39usize {
            let cfg = ExpConfig {
                n_datasets: n,
                ..Default::default()
            };
            let ds = cfg.datasets();
            assert_eq!(ds.len(), n, "n_datasets: {n}");
            // All distinct, in Table 2 order.
            let ids: Vec<u32> = ds.iter().map(|m| m.openml_id).collect();
            let mut dedup = ids.clone();
            dedup.dedup();
            assert_eq!(ids, dedup, "duplicate rows for n = {n}");
        }
        // Counts beyond the table clamp to the full 39.
        let cfg = ExpConfig {
            n_datasets: 64,
            ..Default::default()
        };
        assert_eq!(cfg.datasets().len(), 39);
    }

    #[test]
    fn standard_profile_benchmarks_its_advertised_16() {
        assert_eq!(ExpConfig::standard().datasets().len(), 16);
    }

    #[test]
    fn shared_grid_is_cached() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        let n1 = shared.grid(&cfg).len();
        let n2 = shared.grid(&cfg).len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
        // 7 systems on 2 datasets at one 10s budget: ASKL 1 & 2 and TPOT
        // are excluded by their budget floors => 4 systems x 2 datasets.
        assert_eq!(n1, 8);
    }
}
