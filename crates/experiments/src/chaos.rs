//! `chaos` — energy under failure, and proof the failures are replayable.
//!
//! The paper's protocol assumes every AutoML run completes; real AMLB
//! campaigns lose trials to crashes, timeouts, and OOM kills. This
//! artefact reruns a reduced benchmark grid and a serving trace under the
//! seeded [`FaultPlan::chaos`] profile and reports, per system, how much
//! energy the injected failures waste on top of the productive spend —
//! then **asserts** (not just claims) that the faulted results are
//! byte-identical between the serial and parallel schedules, so a chaos
//! run is as reproducible as a clean one.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::benchmark::{run_grid_checked, BenchmarkOptions, GridRun};
use green_automl_core::fault::FaultPlan;
use green_automl_dataset::split::train_test_split;
use green_automl_dataset::DatasetMeta;
use green_automl_serve::{serve, ServeConfig, ServingReport, TrafficConfig};
use green_automl_systems::{all_systems, AutoMlSystem, Flaml};

/// Joules per kilowatt-hour.
const J_PER_KWH: f64 = 3.6e6;

/// The chaos grid is deliberately small — the point is failure behaviour,
/// not Fig.-3 coverage, and every cell is run twice (serial + parallel)
/// for the determinism assertion.
fn chaos_scope(cfg: &ExpConfig) -> (Vec<DatasetMeta>, Vec<f64>) {
    let datasets: Vec<DatasetMeta> = cfg.datasets().into_iter().take(4).collect();
    let budgets: Vec<f64> = cfg.budgets.iter().copied().take(2).collect();
    (datasets, budgets)
}

/// Run the chaos artefact.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let plan = FaultPlan::chaos(cfg.seed ^ 0xc4a05);
    let (datasets, budgets) = chaos_scope(cfg);
    let systems = all_systems();
    let spec = cfg.base_spec().with_fault(plan);
    let opts = cfg.bench_options();

    // The faulted grid, on the configured schedule…
    let grid: GridRun = run_grid_checked(&systems, &datasets, &budgets, &spec, &opts, None)
        .expect("chaos spec is valid");
    // …and again on the reference serial schedule. Fault decisions are
    // pure functions of (seed, site), so the two must agree bitwise.
    let serial_opts = BenchmarkOptions {
        parallelism: 1,
        ..opts
    };
    let serial = run_grid_checked(&systems, &datasets, &budgets, &spec, &serial_opts, None)
        .expect("chaos spec is valid");
    assert!(
        grid.points == serial.points && grid.failures == serial.failures,
        "fault injection must be schedule-invariant (serial vs parallel grids differ)"
    );

    let mut rows = Vec::new();
    let mut total_faults = 0usize;
    for system in &systems {
        let id = system.id();
        let pts: Vec<_> = grid.points.iter().filter(|p| p.system == id).collect();
        let failed = grid.failures.iter().filter(|f| f.system == id).count();
        let n = pts.len();
        let faults: usize = pts.iter().map(|p| p.n_trial_faults).sum();
        total_faults += faults;
        let wasted_j: f64 = pts.iter().map(|p| p.wasted_j).sum();
        let exec_kwh: f64 = pts.iter().map(|p| p.execution.kwh()).sum();
        let mean_acc: f64 = pts.iter().map(|p| p.balanced_accuracy).sum::<f64>() / n.max(1) as f64;
        rows.push(vec![
            id.to_string(),
            n.to_string(),
            failed.to_string(),
            faults.to_string(),
            fmt(wasted_j),
            fmt(wasted_j / J_PER_KWH / exec_kwh.max(1e-30) * 100.0),
            fmt(exec_kwh),
            fmt(mean_acc),
        ]);
    }
    let grid_table = Table::new(
        "chaos: search energy under injected trial faults",
        vec![
            "system",
            "points",
            "failed_cells",
            "trial_faults",
            "wasted_j",
            "wasted_pct",
            "exec_kwh",
            "mean_bal_acc",
        ],
        rows,
    );

    // Serving under replica crashes: one deployment, the same trace, clean
    // vs chaos — with the same schedule-invariance assertion.
    let ds = datasets[0].materialize(&cfg.materialize);
    let (train, test) = train_test_split(&ds, 0.34, cfg.seed ^ 0x66_34);
    let fit = Flaml::default().fit(&train, &spec);
    let trace = TrafficConfig {
        rps: cfg.serve_rps,
        n_requests: cfg.serve_requests.min(1_000),
        seed: cfg.seed ^ 0xc4a06,
    }
    .generate(test.n_rows());
    let clean_cfg = ServeConfig::cpu_testbed(cfg.serve_replicas);
    let chaos_cfg = clean_cfg.with_fault(plan);
    let clean = serve(&fit.predictor, &test, &trace, &clean_cfg);
    let chaos = serve(&fit.predictor, &test, &trace, &chaos_cfg);
    let chaos_serial = serve(
        &fit.predictor,
        &test,
        &trace,
        &ServeConfig {
            host_parallelism: 1,
            ..chaos_cfg
        },
    );
    assert_eq!(
        chaos, chaos_serial,
        "faulted serving must be byte-identical at every host parallelism"
    );

    let serve_row = |label: &str, r: &ServingReport| {
        vec![
            label.to_string(),
            r.n_requests.to_string(),
            r.retried_requests.to_string(),
            r.shed_requests.to_string(),
            r.failed_requests.to_string(),
            fmt(r.busy_j),
            fmt(r.wasted_j),
            fmt(r.kwh()),
            fmt(r.latency.p99_s * 1e3),
        ]
    };
    let serve_table = Table::new(
        "chaos: the same trace served clean vs under replica crashes",
        vec![
            "deployment",
            "requests",
            "retried",
            "shed",
            "failed",
            "busy_j",
            "wasted_j",
            "kwh",
            "p99_ms",
        ],
        vec![
            serve_row("FLAML (clean)", &clean),
            serve_row("FLAML (chaos)", &chaos),
        ],
    );

    let mut notes = vec![
        format!(
            "fault plan: seed {}, trial crash/timeout/oom {:.0}%/{:.0}%/{:.0}%, \
             replica crash {:.0}% with {:.2}s restart",
            plan.seed,
            plan.trial_crash_p * 100.0,
            plan.trial_timeout_p * 100.0,
            plan.trial_oom_p * 100.0,
            plan.replica_crash_p * 100.0,
            plan.replica_restart_s
        ),
        format!(
            "determinism asserted: {} grid points and {} cell failures identical on serial \
             and parallel schedules; faulted serving report identical at every host parallelism",
            grid.points.len(),
            grid.failures.len()
        ),
        format!(
            "search: {total_faults} injected trial faults; every system still deployed a \
             predictor (constant-class fallback covers total loss)"
        ),
    ];
    if chaos.failed_requests == 0 {
        notes.push(format!(
            "serving: all {} requests answered despite {} retried; crashes added {} J wasted \
             on top of the clean run's busy energy (bitwise unchanged: {})",
            chaos.n_requests,
            chaos.retried_requests,
            fmt(chaos.wasted_j),
            chaos.busy_j.to_bits() == clean.busy_j.to_bits()
        ));
    } else {
        notes.push(format!(
            "serving: {} of {} requests failed after exhausting retries",
            chaos.failed_requests, chaos.n_requests
        ));
    }

    ExperimentOutput {
        id: "chaos",
        files: Vec::new(),
        tables: vec![grid_table, serve_table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_reports_faults_and_survives_at_smoke_scale() {
        let out = run(&ExpConfig::smoke());
        assert_eq!(out.tables.len(), 2);
        // One row per system; at least one system saw an injected fault.
        assert_eq!(out.tables[0].rows.len(), 7);
        let faults: usize = out.tables[0]
            .rows
            .iter()
            .map(|r| r[3].parse::<usize>().unwrap())
            .sum();
        assert!(faults > 0, "chaos plan must kill some trials");
        // The determinism note is only pushed after the asserts held.
        assert!(out.notes.iter().any(|n| n.contains("determinism asserted")));
        // Serving rows: clean run wastes nothing, chaos run reports faults.
        let clean = &out.tables[1].rows[0];
        let chaos = &out.tables[1].rows[1];
        assert_eq!(clean[2], "0", "clean run must not retry");
        assert_eq!(clean[6].parse::<f64>().unwrap(), 0.0);
        assert!(chaos[6].parse::<f64>().unwrap() >= 0.0);
    }
}
