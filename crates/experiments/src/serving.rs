//! `serve` — the paper's inference-stage findings *under load*.
//!
//! Every system trains on the same registry dataset at the 1-minute budget
//! (the largest floor across systems), deploys its best model into a
//! [`ModelRegistry`], and then the **same** seeded open-loop traffic trace
//! is replayed against each deployment through the micro-batching
//! scheduler. The resulting table shows Observation O1 — ensembles pay an
//! order of magnitude more energy per request than single-model
//! deployments — and re-derives the Fig. 4 TabPFN crossover from *served*
//! (batched, queued) energies instead of the per-row constant.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::amortize::crossover_predictions;
use green_automl_core::executor::{resolve_parallelism, run_indexed};
use green_automl_dataset::split::train_test_split;
use green_automl_dataset::{amlb39, Dataset};
use green_automl_energy::{CostTracker, Device, GridIntensity};
use green_automl_serve::{
    serve, ModelRegistry, ServeConfig, ServingReport, SloPolicy, TrafficConfig,
};
use green_automl_systems::{
    all_systems, AutoGluon, AutoGluonQuality, AutoMlRun, AutoMlSystem, RunSpec, SystemId,
};

/// Joules per kilowatt-hour.
const J_PER_KWH: f64 = 3.6e6;

/// The registry dataset every deployment trains on (shared with the
/// `fleet` experiment, so both serve the same held-out pool).
pub(crate) fn serving_dataset(cfg: &ExpConfig) -> (Dataset, Dataset) {
    let meta = amlb39()
        .into_iter()
        .find(|m| m.name == "blood-transfusion-service-center")
        .expect("registry contains the serving dataset");
    let ds = meta.materialize(&cfg.materialize);
    train_test_split(&ds, 0.34, cfg.seed ^ 0x66_34)
}

/// Run the serving comparison.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let (train, test) = serving_dataset(cfg);

    // The seven systems plus AutoGluon's faster-inference refit preset —
    // the paper's Fig. 6 deployment fix — all at the 1-minute budget (the
    // smallest point every budget floor admits).
    let mut systems: Vec<Box<dyn AutoMlSystem>> = all_systems();
    systems.push(Box::new(AutoGluon {
        quality: AutoGluonQuality::FasterInferenceRefit,
    }));
    // TabPFN runs on the GPU node — the paper's recommended setting
    // (Table 3); everything else deploys on the CPU testbed.
    let device_for = |id: SystemId| {
        if id == SystemId::TabPfn {
            Device::gpu_node()
        } else {
            Device::xeon_gold_6132()
        }
    };
    let fitted: Vec<(SystemId, AutoMlRun)> =
        run_indexed(systems.len(), resolve_parallelism(cfg.parallelism), |i| {
            let id = systems[i].id();
            let spec = RunSpec {
                device: device_for(id),
                ..RunSpec::single_core(60.0, cfg.seed)
            };
            (id, systems[i].fit(&train, &spec))
        });

    // One registry hosts every deployment; each fetch below is a cold load
    // charged to that deployment's account.
    let mut registry = ModelRegistry::unbounded();
    for (id, run) in &fitted {
        registry.register(id.as_str(), run.predictor.clone());
    }

    let trace = TrafficConfig {
        rps: cfg.serve_rps,
        n_requests: cfg.serve_requests,
        seed: cfg.seed ^ 0x5e47e,
    }
    .generate(test.n_rows());
    let slo = SloPolicy::latency_only(cfg.slo_ms / 1e3);

    let mut rows = Vec::new();
    let mut served: Vec<(SystemId, &AutoMlRun, ServingReport)> = Vec::new();
    for (id, run) in &fitted {
        let serve_cfg = ServeConfig {
            host_parallelism: cfg.parallelism,
            device: device_for(*id),
            ..ServeConfig::cpu_testbed(cfg.serve_replicas)
        };
        let mut load_tracker = CostTracker::new(serve_cfg.device, serve_cfg.cores_per_replica);
        let predictor = registry
            .fetch(id.as_str(), &mut load_tracker)
            .expect("just registered");
        let report = serve(&predictor, &test, &trace, &serve_cfg);
        let verdict = report.check(&slo);
        rows.push(vec![
            id.to_string(),
            predictor.n_models().to_string(),
            fmt(predictor.memory_bytes() / 1e6),
            fmt(load_tracker.measurement().energy.total_joules()),
            fmt(run.execution.kwh()),
            fmt(report.busy_joules_per_request()),
            fmt(report.joules_per_request()),
            fmt(report.latency.p50_s * 1e3),
            fmt(report.latency.p99_s * 1e3),
            fmt(report.mean_batch_rows()),
            fmt(report.throughput_rps()),
            fmt(report.kwh()),
            fmt(report.emissions(GridIntensity::GERMANY).kg_co2 * 1e3),
            if verdict.passed() { "yes" } else { "no" }.to_string(),
        ]);
        served.push((*id, run, report));
    }
    let main = Table::new(
        "serve: one traffic trace against every deployment",
        vec![
            "system",
            "n_models",
            "mem_mb",
            "cold_load_j",
            "exec_kwh",
            "busy_j_per_req",
            "total_j_per_req",
            "p50_ms",
            "p99_ms",
            "mean_batch",
            "throughput_rps",
            "kwh",
            "g_co2",
            "slo_pass",
        ],
        rows,
    );

    let mut notes = Vec::new();

    // O1 under load: marginal (busy) Joules per request, best single-model
    // deployment vs best ensemble deployment.
    let best_by = |pred: &dyn Fn(usize) -> bool| {
        served
            .iter()
            .filter(|(_, run, _)| pred(run.predictor.n_models()))
            .map(|(id, _, rep)| (*id, rep.busy_joules_per_request()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energies"))
    };
    let single = best_by(&|n| n <= 1);
    let ensemble = best_by(&|n| n > 1);
    if let (Some((s_name, s_j)), Some((e_name, e_j))) = (single, ensemble) {
        notes.push(format!(
            "cheapest ensemble ({e_name}) pays {:.1}x the energy per request of the \
             cheapest single-model deployment ({s_name}) (paper O1: >= 10x)",
            e_j / s_j
        ));
    }

    // Fig. 4 under load: cumulative energy = execution + n_requests x
    // served-energy/request; where does TabPFN stop being cheapest?
    let mut cross_rows = Vec::new();
    if let Some((_, pfn_run, pfn_rep)) = served.iter().find(|(n, _, _)| *n == SystemId::TabPfn) {
        let pfn_exec = pfn_run.execution.kwh();
        let pfn_req = pfn_rep.busy_joules_per_request() / J_PER_KWH;
        for other in [SystemId::Flaml, SystemId::Caml, SystemId::AutoGluonRefit] {
            if let Some((_, o_run, o_rep)) = served.iter().find(|(n, _, _)| *n == other) {
                let o_req = o_rep.busy_joules_per_request() / J_PER_KWH;
                match crossover_predictions(pfn_exec, pfn_req, o_run.execution.kwh(), o_req) {
                    Some(n) if n > 0.0 => {
                        cross_rows.push(vec!["TabPFN".to_string(), other.to_string(), fmt(n)]);
                        notes.push(format!(
                            "under load, TabPFN stays cheapest up to ~{n:.0} requests vs {other} \
                             (paper Fig. 4: ~26k)"
                        ));
                    }
                    Some(_) => notes.push(format!(
                        "{other} dominates TabPFN under load (cheaper execution and per-request)"
                    )),
                    None => {}
                }
            }
        }
    }
    let cross = Table::new(
        "serve: cumulative-energy crossovers under load",
        vec![
            "cheap_execution_system",
            "cheap_inference_system",
            "crossover_requests",
        ],
        cross_rows,
    );

    notes.push(format!(
        "trace: {} requests at {:.0} rps (seed {}), {} replica(s), batch <= {} or {:.0} ms, \
         SLO p99 <= {:.0} ms",
        cfg.serve_requests,
        cfg.serve_rps,
        cfg.seed,
        cfg.serve_replicas,
        ServeConfig::cpu_testbed(cfg.serve_replicas).max_batch,
        ServeConfig::cpu_testbed(cfg.serve_replicas).max_delay_s * 1e3,
        cfg.slo_ms
    ));

    ExperimentOutput {
        id: "serve",
        files: Vec::new(),
        tables: vec![main, cross],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_reproduces_the_papers_shape_at_smoke_scale() {
        let out = run(&ExpConfig::smoke());
        assert_eq!(out.tables.len(), 2);
        // Seven systems + the refit preset.
        assert_eq!(out.tables[0].rows.len(), 8);
        // TabPFN crosses over at least one searcher under load.
        assert!(
            !out.tables[1].rows.is_empty(),
            "no crossover found: {:?}",
            out.notes
        );
        for row in &out.tables[1].rows {
            let n: f64 = row[2].parse().unwrap_or_else(|_| {
                row[2]
                    .replace("e", "E")
                    .parse::<f64>()
                    .expect("numeric crossover")
            });
            // Acceptance band: the served crossover lands where the paper's
            // per-row constant puts it — 10^4..10^5 requests.
            assert!(
                (1e4..=1e5).contains(&n),
                "crossover {n} outside the 1e4..1e5 band"
            );
        }
        // The O1 gap note exists and reports a >= 10x ratio.
        let gap = out
            .notes
            .iter()
            .find(|n| n.contains("cheapest ensemble"))
            .expect("O1 note");
        let ratio: f64 = gap
            .split("pays ")
            .nth(1)
            .and_then(|s| s.split('x').next())
            .and_then(|s| s.parse().ok())
            .expect("ratio in note");
        assert!(ratio >= 10.0, "ensemble gap only {ratio:.1}x: {gap}");
    }
}
