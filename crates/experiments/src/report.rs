//! Plain-text / CSV rendering of experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build a table, validating row widths.
    ///
    /// # Panics
    /// Panics if a row's width differs from the header's.
    pub fn new(title: impl Into<String>, headers: Vec<&str>, rows: Vec<Vec<String>>) -> Table {
        let headers: Vec<String> = headers.into_iter().map(str::to_string).collect();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                headers.len(),
                "row {i} has {} cells, expected {}",
                r.len(),
                headers.len()
            );
        }
        Table {
            title: title.into(),
            headers,
            rows,
        }
    }

    /// Monospace rendering with aligned columns.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut parts = Vec::with_capacity(cells.len());
            for (c, w) in cells.iter().zip(widths) {
                parts.push(format!("{c:<w$}", w = w));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// CSV rendering (RFC-4180-style quoting for commas/quotes).
    pub fn render_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A complete experiment result: tables plus free-form findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentOutput {
    /// Experiment id ("fig3", "table7", …).
    pub id: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Headline findings, one per line.
    pub notes: Vec<String>,
    /// Extra artefact files as `(filename, contents)` — e.g. the trace
    /// sinks (`trace.jsonl`, `trace.chrome.json`). Written verbatim next
    /// to the tables by [`ExperimentOutput::write_to`].
    pub files: Vec<(String, String)>,
}

impl ExperimentOutput {
    /// Render everything as text.
    pub fn render_text(&self) -> String {
        let mut out = format!("### Experiment {} ###\n\n", self.id);
        for t in &self.tables {
            out.push_str(&t.render_text());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Findings:\n");
            for n in &self.notes {
                let _ = writeln!(out, "  - {n}");
            }
        }
        out
    }

    /// Write `<id>.txt` and `<id>.<table-index>.csv` under `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.txt", self.id)), self.render_text())?;
        for (i, t) in self.tables.iter().enumerate() {
            std::fs::write(dir.join(format!("{}.{}.csv", self.id, i)), t.render_csv())?;
        }
        for (name, contents) in &self.files {
            std::fs::write(dir.join(name), contents)?;
        }
        Ok(())
    }
}

/// Format a float in engineering-friendly short form.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "demo",
            vec!["a", "b"],
            vec![
                vec!["1".into(), "x,y".into()],
                vec!["22".into(), "z\"q".into()],
            ],
        )
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().render_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("| 1  |"));
        assert!(text.contains("| 22 |"));
    }

    #[test]
    fn csv_quotes_specials() {
        let csv = sample().render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"z\"\"q\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn ragged_rows_panic() {
        let _ = Table::new("bad", vec!["a", "b"], vec![vec!["1".into()]]);
    }

    #[test]
    fn output_writes_files() {
        let dir = std::env::temp_dir().join("green-automl-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = ExperimentOutput {
            id: "table1",
            files: Vec::new(),
            tables: vec![sample()],
            notes: vec!["note".into()],
        };
        out.write_to(&dir).unwrap();
        assert!(dir.join("table1.txt").exists());
        assert!(dir.join("table1.0.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.12345), "0.123");
        assert_eq!(fmt(123.4), "123.4");
        assert!(fmt(1.5e-7).contains('e'));
        assert!(fmt(2.0e6).contains('e'));
    }
}
