//! Table 6 — overfitting & early stopping (§3.8): for how many datasets a
//! system's 5-minute run scores *worse* balanced accuracy than its 1-minute
//! run.

use crate::report::{ExperimentOutput, Table};
use crate::suite::{ExpConfig, SharedPoints};
use green_automl_systems::SystemId;
use std::collections::BTreeMap;

/// Count 5min-worse-than-1min datasets per system from the shared grid.
pub fn run(cfg: &ExpConfig, shared: &mut SharedPoints) -> ExperimentOutput {
    let points = shared.grid(cfg).to_vec();
    // The comparison needs both budgets; fall back to the two largest
    // budgets in the grid if the paper's pair is absent.
    let mut budgets: Vec<f64> = points.iter().map(|p| p.budget_s).collect();
    budgets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    budgets.dedup();
    let (b_lo, b_hi) = if budgets.contains(&60.0) && budgets.contains(&300.0) {
        (60.0, 300.0)
    } else if budgets.len() >= 2 {
        (budgets[budgets.len() - 2], budgets[budgets.len() - 1])
    } else {
        (budgets[0], budgets[0])
    };

    // Mean accuracy per (system, dataset, budget).
    let mut acc: BTreeMap<(SystemId, String, u64), (f64, usize)> = BTreeMap::new();
    for p in &points {
        let e = acc
            .entry((p.system, p.dataset.clone(), p.budget_s.to_bits()))
            .or_insert((0.0, 0));
        e.0 += p.balanced_accuracy;
        e.1 += 1;
    }
    let mean = |sys: SystemId, ds: &str, b: f64| -> Option<f64> {
        acc.get(&(sys, ds.to_string(), b.to_bits()))
            .map(|(s, n)| s / *n as f64)
    };

    let systems: BTreeMap<SystemId, ()> = points.iter().map(|p| (p.system, ())).collect();
    let datasets: BTreeMap<String, ()> = points.iter().map(|p| (p.dataset.clone(), ())).collect();

    let mut rows = Vec::new();
    let mut worst_datasets: BTreeMap<String, usize> = BTreeMap::new();
    for sys in systems.keys() {
        let mut overfit = 0usize;
        let mut total = 0usize;
        for ds in datasets.keys() {
            if let (Some(lo), Some(hi)) = (mean(*sys, ds, b_lo), mean(*sys, ds, b_hi)) {
                total += 1;
                if hi < lo - 1e-9 {
                    overfit += 1;
                    *worst_datasets.entry(ds.clone()).or_insert(0) += 1;
                }
            }
        }
        if total > 0 {
            rows.push(vec![
                sys.to_string(),
                overfit.to_string(),
                total.to_string(),
            ]);
        }
    }
    let table = Table::new(
        format!("Table 6: datasets where {b_hi:.0}s scored worse than {b_lo:.0}s"),
        vec!["System", "overfit_datasets", "total_datasets"],
        rows,
    );

    let mut ranked: Vec<(String, usize)> = worst_datasets.into_iter().collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let notes = ranked
        .into_iter()
        .take(3)
        .map(|(ds, c)| format!("most-overfit dataset: {ds} ({c} systems) — small datasets overfit most (paper: kc1, cnae-9, blood-transfusion)"))
        .collect();

    ExperimentOutput {
        id: "table6",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_counts_for_every_system_with_both_budgets() {
        let mut cfg = ExpConfig::smoke();
        cfg.budgets = vec![10.0, 30.0];
        let mut shared = SharedPoints::default();
        let out = run(&cfg, &mut shared);
        assert!(!out.tables[0].rows.is_empty());
        for r in &out.tables[0].rows {
            let overfit: usize = r[1].parse().unwrap();
            let total: usize = r[2].parse().unwrap();
            assert!(overfit <= total);
        }
    }
}
