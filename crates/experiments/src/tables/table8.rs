//! Table 8 — development-stage tuning with different numbers of top-k
//! representative datasets (§3.11): accuracy vs tuning cost.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::devtune::{DevTuneOptions, DevTuner};
use green_automl_dataset::dev_binary_pool;

/// The paper's sweep of representative-dataset counts.
pub const TOP_K: [usize; 3] = [10, 20, 40];

/// Sweep top-k (scaled down proportionally under small configs).
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let pool = dev_binary_pool();
    // Respect smoke/fast configs: scale the sweep around devtune_top_k.
    let ks: Vec<usize> = if cfg.devtune_top_k >= 20 {
        TOP_K.to_vec()
    } else {
        vec![
            (cfg.devtune_top_k / 2).max(1),
            cfg.devtune_top_k,
            (cfg.devtune_top_k * 2).min(pool.len()),
        ]
    };

    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for &k in &ks {
        let out = DevTuner::tune(
            &pool,
            &DevTuneOptions {
                budget_s: 10.0, // the paper sweeps at the 10s budget
                top_k: k,
                bo_iters: cfg.devtune_iters,
                runs_per_eval: 2,
                materialize: cfg.materialize,
                seed: cfg.seed,
            },
        );
        rows.push(vec![
            k.to_string(),
            fmt(out.best_accuracy * 100.0),
            fmt(out.development.kwh()),
            fmt(out.development.duration_s / 3600.0),
        ]);
        outcomes.push((k, out));
    }
    let table = Table::new(
        "Table 8: tuning with top-k representative datasets (10s budget)",
        vec![
            "top-k Datasets",
            "Balanced Accuracy (%)",
            "Energy (kWh)",
            "Time (h)",
        ],
        rows,
    );

    let mut notes = Vec::new();
    if let (Some((k0, first)), Some((k2, last))) = (outcomes.first(), outcomes.last()) {
        notes.push(format!(
            "tuning energy grows {:.1}x from k={k0} to k={k2} (paper: 0.43 -> 4.88 kWh, ~11x)",
            last.development.kwh() / first.development.kwh().max(1e-30)
        ));
    }
    ExperimentOutput {
        id: "table8",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_datasets_cost_more_energy() {
        let out = run(&ExpConfig::smoke());
        let rows = &out.tables[0].rows;
        assert_eq!(rows.len(), 3);
        let kwh: Vec<f64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(kwh[2] > kwh[0], "k sweep energies {kwh:?}");
    }
}
