//! Table 3 — GPU vs CPU (§3.5): AutoGluon and TabPFN on the T4 node, each
//! metric reported as the ratio `GPU result / CPU-only result`.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::benchmark::run_once_on;
use green_automl_core::executor::{resolve_parallelism, run_indexed, DatasetCache};
use green_automl_dataset::MaterializeOptions;
use green_automl_energy::Device;
use green_automl_systems::{AutoGluon, AutoMlSystem, RunSpec, TabPfn};

/// Run both systems on both device variants and report the ratios.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let datasets = cfg.datasets();
    // TabPFN needs <= 10 classes; keep it honest by filtering.
    let datasets: Vec<_> = datasets
        .into_iter()
        .filter(|m| m.classes <= 10)
        .take(8)
        .collect();
    let budget = 300.0; // the paper compares at the 5-minute budget
    let opts = cfg.bench_options();

    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let systems: Vec<Box<dyn AutoMlSystem>> =
        vec![Box::new(AutoGluon::default()), Box::new(TabPfn::default())];
    let cache = DatasetCache::new();
    for system in &systems {
        // Enumerate (dataset, run, device) cells in the reference order,
        // fan them out, then fold serially so sums are bit-stable at any
        // parallelism.
        let mut cells = Vec::new();
        for meta in &datasets {
            for r in 0..opts.runs {
                for (di, device) in [Device::gpu_node(), Device::gpu_node_cpu_only()]
                    .into_iter()
                    .enumerate()
                {
                    let spec = RunSpec {
                        budget_s: budget,
                        cores: device.cpu.cores,
                        device,
                        seed: cfg.seed ^ (r as u64) ^ meta.openml_id as u64,
                        constraints: Default::default(),
                        fault: Default::default(),
                        trace: false,
                    };
                    cells.push((meta, spec, di));
                }
            }
        }
        let points = run_indexed(cells.len(), resolve_parallelism(opts.parallelism), |i| {
            let (meta, spec, di) = &cells[i];
            let m_opts = MaterializeOptions {
                seed: spec.seed,
                ..opts.materialize
            };
            let ds = cache.materialize(meta, &m_opts);
            (run_once_on(system.as_ref(), meta, &ds, spec, &opts), *di)
        });
        let mut agg = [[0.0f64; 2]; 4]; // [exec kwh, exec s, inf kwh, inf s] x [gpu, cpu]
        for (p, di) in &points {
            agg[0][*di] += p.execution.kwh();
            agg[1][*di] += p.execution.duration_s;
            agg[2][*di] += p.inference_kwh_per_row;
            agg[3][*di] += p.inference_s_per_row;
        }
        let ratio = |i: usize| agg[i][0] / agg[i][1].max(1e-30);
        rows.push(vec![
            system.name().to_string(),
            fmt(ratio(0)),
            fmt(ratio(1)),
            fmt(ratio(2)),
            fmt(ratio(3)),
        ]);
        notes.push(format!(
            "{}: GPU/CPU inference energy ratio {:.2} (paper: {})",
            system.name(),
            ratio(2),
            if system.name() == "TabPFN" {
                "0.13"
            } else {
                "2.39"
            }
        ));
    }

    let table = Table::new(
        "Table 3: GPU/CPU-only ratios at the 5-minute budget",
        vec![
            "System",
            "Execution Energy (GPU/CPU)",
            "Execution Time (GPU/CPU)",
            "Inference Energy (GPU/CPU)",
            "Inference Time (GPU/CPU)",
        ],
        rows,
    );
    ExperimentOutput {
        id: "table3",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_helps_tabpfn_inference_and_hurts_autogluon_energy() {
        let out = run(&ExpConfig::smoke());
        let get = |sys: &str, col: usize| -> f64 {
            out.tables[0]
                .rows
                .iter()
                .find(|r| r[0] == sys)
                .map(|r| r[col].parse().unwrap())
                .unwrap()
        };
        // TabPFN: transformer inference offloads => big energy/time wins.
        assert!(
            get("TabPFN", 3) < 0.8,
            "TabPFN GPU inference energy ratio should be < 0.8"
        );
        assert!(
            get("TabPFN", 4) < 0.5,
            "TabPFN GPU inference time ratio should be < 0.5"
        );
        // AutoGluon: tree models cannot use the GPU, which idles => worse
        // energy on both stages.
        assert!(
            get("AutoGluon", 1) > 1.0,
            "AutoGluon GPU execution energy should cost more"
        );
        assert!(
            get("AutoGluon", 3) > 1.0,
            "AutoGluon GPU inference energy should cost more"
        );
    }
}
