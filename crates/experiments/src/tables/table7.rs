//! Table 7 — actual execution time for specified search times (§3.10):
//! which systems respect their budgets and which overshoot, and by how
//! much.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::{ExpConfig, SharedPoints};
use green_automl_systems::SystemId;
use std::collections::BTreeMap;

/// Aggregate actual durations per (system, budget) from the shared grid.
pub fn run(cfg: &ExpConfig, shared: &mut SharedPoints) -> ExperimentOutput {
    let points = shared.grid(cfg).to_vec();
    let mut cells: BTreeMap<(SystemId, u64), Vec<f64>> = BTreeMap::new();
    for p in &points {
        cells
            .entry((p.system, p.budget_s.to_bits()))
            .or_default()
            .push(p.execution.duration_s);
    }

    let mut budgets: Vec<f64> = points.iter().map(|p| p.budget_s).collect();
    budgets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    budgets.dedup();

    let systems: Vec<SystemId> = {
        let mut s: Vec<SystemId> = points.iter().map(|p| p.system).collect();
        s.sort();
        s.dedup();
        s
    };

    // Order rows by mean actual time at the largest budget (the paper sorts
    // from most punctual to least).
    let mut ordered: Vec<(f64, SystemId)> = systems
        .iter()
        .map(|&sys| {
            let last = budgets.last().expect("at least one budget");
            let mean = cells
                .get(&(sys, last.to_bits()))
                .map(|v| v.iter().sum::<f64>() / v.len() as f64)
                .unwrap_or(f64::INFINITY);
            (mean, sys)
        })
        .collect();
    ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    let mut headers = vec!["AutoML".to_string()];
    headers.extend(budgets.iter().map(|b| format!("{b:.0}s (actual mean±std)")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut notes = Vec::new();
    for &(_, sys) in &ordered {
        let mut row = vec![sys.to_string()];
        for b in &budgets {
            match cells.get(&(sys, b.to_bits())) {
                Some(v) => {
                    let mean = v.iter().sum::<f64>() / v.len() as f64;
                    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
                    row.push(format!("{} ± {}", fmt(mean), fmt(var.sqrt())));
                }
                None => row.push("-".to_string()),
            }
        }
        rows.push(row);
    }
    // Punctuality notes mirroring the paper's discussion.
    for sys in [SystemId::Caml, SystemId::AutoSklearn1, SystemId::TabPfn] {
        if let Some(b) = budgets.last() {
            if let Some(v) = cells.get(&(sys, b.to_bits())) {
                let mean = v.iter().sum::<f64>() / v.len() as f64;
                notes.push(format!(
                    "{sys}: mean actual {mean:.1}s for a {b:.0}s budget ({:.2}x)",
                    mean / b
                ));
            }
        }
    }

    let table = Table::new(
        "Table 7: actual execution time for specified search times",
        headers_ref,
        rows,
    );
    ExperimentOutput {
        id: "table7",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabpfn_is_fastest_and_rows_cover_systems() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        let out = run(&cfg, &mut shared);
        let rows = &out.tables[0].rows;
        assert!(rows.len() >= 4);
        // TabPFN ignores budgets: it must be the most punctual row.
        assert_eq!(rows[0][0], "TabPFN");
    }
}
