//! Table 9 — development-stage tuning with different Bayesian-optimisation
//! iteration counts (§3.11): more iterations cost more energy and
//! eventually overfit the representative datasets.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::devtune::{DevTuneOptions, DevTuner};
use green_automl_dataset::dev_binary_pool;

/// Sweep BO iterations around the configured default with the paper's
/// ratios (75 : 150 : 300 : 600 = 1/4 : 1/2 : 1 : 2 of the default 300).
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let pool = dev_binary_pool();
    let base = cfg.devtune_iters.max(4);
    let iters = [base / 4, base / 2, base, base * 2];

    let mut rows = Vec::new();
    let mut kwh_series = Vec::new();
    for &n in &iters {
        let out = DevTuner::tune(
            &pool,
            &DevTuneOptions {
                budget_s: 10.0,
                top_k: cfg.devtune_top_k,
                bo_iters: n.max(1),
                runs_per_eval: 2,
                materialize: cfg.materialize,
                seed: cfg.seed,
            },
        );
        rows.push(vec![
            n.max(1).to_string(),
            fmt(out.best_accuracy * 100.0),
            fmt(out.development.kwh()),
            fmt(out.development.duration_s / 3600.0),
        ]);
        kwh_series.push(out.development.kwh());
    }
    let table = Table::new(
        format!(
            "Table 9: tuning with different BO iteration counts (10s budget; paper uses 75/150/300/600, ours scale 1:{})",
            (300 / base.max(1)).max(1)
        ),
        vec!["BO iterations", "Balanced Accuracy (%)", "Energy (kWh)", "Time (h)"],
        rows,
    );
    let notes = vec![format!(
        "tuning energy grows {:.1}x from the smallest to the largest iteration count (paper: 0.74 -> 3.46 kWh, ~4.7x)",
        kwh_series.last().unwrap_or(&0.0) / kwh_series.first().unwrap_or(&1.0).max(1e-30)
    )];
    ExperimentOutput {
        id: "table9",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_grows_with_iterations() {
        let out = run(&ExpConfig::smoke());
        let rows = &out.tables[0].rows;
        assert_eq!(rows.len(), 4);
        let kwh: Vec<f64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            kwh.last().unwrap() > kwh.first().unwrap(),
            "iteration sweep energies {kwh:?}"
        );
    }
}
