//! Table 1 — "the search space of each AutoML system and the applied
//! strategy in each execution stage", generated from the systems' own
//! design cards so code and paper stay in sync.

use crate::report::{ExperimentOutput, Table};
use green_automl_systems::all_systems;

/// Dump every system's design card.
pub fn run() -> ExperimentOutput {
    let rows = all_systems()
        .iter()
        .map(|s| {
            let d = s.design();
            vec![
                d.system.to_string(),
                d.search_space.to_string(),
                d.search_init.to_string(),
                d.search.to_string(),
                d.ensembling.to_string(),
            ]
        })
        .collect();
    let table = Table::new(
        "Table 1: AutoML strategy design matrix",
        vec![
            "System",
            "Search Space",
            "Search Init.",
            "Search",
            "Ensembling",
        ],
        rows,
    );
    ExperimentOutput {
        id: "table1",
        files: Vec::new(),
        tables: vec![table],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_papers_matrix() {
        let out = run();
        let rows = &out.tables[0].rows;
        assert_eq!(rows.len(), 7);
        let find = |sys: &str| rows.iter().find(|r| r[0] == sys).unwrap();
        // Spot-check against the paper's Table 1.
        assert_eq!(find("AutoSklearn1")[1], "data/feature p. & models");
        assert_eq!(find("AutoSklearn1")[4], "Caruana");
        assert_eq!(find("AutoGluon")[4], "Caruana & bagging & stacking");
        assert_eq!(find("CAML")[3], "BO & successive halving");
        assert_eq!(find("TabPFN")[1], "-");
        assert_eq!(find("FLAML")[2], "low complexity models");
        assert_eq!(find("TPOT")[3], "genetic programming");
    }
}
