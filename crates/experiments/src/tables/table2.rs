//! Table 2 — the 39 OpenML AMLB test datasets, with a verification pass
//! over the synthetic materialisations (class coverage, charging factors).

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_dataset::amlb39;

/// Dump the registry and verify materialisations.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let mut rows = Vec::new();
    for meta in amlb39() {
        let ds = meta.materialize(&cfg.materialize);
        rows.push(vec![
            meta.name.to_string(),
            meta.openml_id.to_string(),
            meta.instances.to_string(),
            meta.features.to_string(),
            meta.classes.to_string(),
            ds.n_rows().to_string(),
            ds.n_features().to_string(),
            fmt(ds.scale()),
        ]);
    }
    let table = Table::new(
        "Table 2: AMLB test datasets (nominal vs materialised)",
        vec![
            "Name",
            "DatasetID",
            "#instances",
            "#features",
            "#classes",
            "rows_materialised",
            "features_materialised",
            "charge_scale",
        ],
        rows,
    );
    ExperimentOutput {
        id: "table2",
        files: Vec::new(),
        tables: vec![table],
        notes: vec![format!(
            "all 39 datasets materialise with full class coverage under the {:?} profile",
            cfg.materialize
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dump_has_39_rows_with_positive_scales() {
        let out = run(&ExpConfig::smoke());
        let rows = &out.tables[0].rows;
        assert_eq!(rows.len(), 39);
        for r in rows {
            let scale: f64 = r[7].parse().unwrap();
            assert!(scale >= 1.0, "{}: scale {scale}", r[0]);
        }
        // Nominal metadata matches the paper for a spot row.
        let covertype = rows.iter().find(|r| r[0] == "covertype").unwrap();
        assert_eq!(covertype[2], "581012");
    }
}
