//! Table 4 — cost of one trillion predictions per system (§3.6), computed
//! from each system's best-accuracy deployment in the shared grid.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::{ExpConfig, SharedPoints};
use green_automl_core::benchmark::average_points;
use green_automl_core::trillion::trillion_prediction_cost;
use green_automl_systems::SystemId;
use std::collections::BTreeMap;

/// Compute the trillion-prediction bill.
pub fn run(cfg: &ExpConfig, shared: &mut SharedPoints) -> ExperimentOutput {
    let avg = average_points(shared.grid(cfg), cfg.bootstrap, cfg.seed);
    // Best-accuracy cell per system (the paper: "the model with the highest
    // predictive performance reported in Figure 3").
    let mut best: BTreeMap<SystemId, (f64, f64)> = BTreeMap::new();
    for a in &avg {
        let e = best.entry(a.system).or_insert((f64::NEG_INFINITY, 0.0));
        if a.balanced_accuracy > e.0 {
            *e = (a.balanced_accuracy, a.inference_kwh_per_row);
        }
    }
    let mut costs: Vec<_> = best
        .iter()
        .map(|(sys, (_, inf))| trillion_prediction_cost(sys.as_str(), *inf))
        .collect();
    costs.sort_by(|a, b| b.kwh.partial_cmp(&a.kwh).expect("finite"));

    let rows = costs
        .iter()
        .map(|c| vec![c.system.clone(), fmt(c.kwh), fmt(c.kg_co2), fmt(c.cost_eur)])
        .collect();
    let table = Table::new(
        "Table 4: cost of 1 trillion predictions",
        vec!["AutoML", "Energy (kWh)", "CO2 (kg)", "Cost (EUR)"],
        rows,
    );

    let mut notes = Vec::new();
    if let (Some(first), Some(last)) = (costs.first(), costs.last()) {
        notes.push(format!(
            "most expensive: {} ({:.0} kWh); cheapest: {} ({:.0} kWh) — {:.0}x spread (paper: TabPFN 404,649 vs FLAML 762, ~531x)",
            first.system, first.kwh, last.system, last.kwh,
            first.kwh / last.kwh.max(1e-30)
        ));
    }
    ExperimentOutput {
        id: "table4",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tabpfn_tops_the_bill_and_single_model_systems_bottom_it() {
        let cfg = ExpConfig::smoke();
        let mut shared = SharedPoints::default();
        let out = run(&cfg, &mut shared);
        let rows = &out.tables[0].rows;
        assert_eq!(rows[0][0], "TabPFN", "TabPFN should be the most expensive");
        let kwh = |sys: &str| -> f64 {
            rows.iter().find(|r| r[0] == sys).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(kwh("TabPFN") > kwh("FLAML") * 20.0);
        assert!(kwh("AutoGluon") > kwh("FLAML") * 3.0);
    }
}
