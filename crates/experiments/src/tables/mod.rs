//! Table reproductions (Table 1 – Table 9; Tables 1 and 2 are the paper's
//! descriptive tables, 3–9 its measured ones).

pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;
