//! Table 5 — the tuned AutoML-system parameters per search budget (§3.7):
//! the pruned hyperparameter search space and the six system-parameter
//! settings the development-stage tuner chose.

use crate::report::{fmt, ExperimentOutput, Table};
use crate::suite::ExpConfig;
use green_automl_core::devtune::{DevTuneOptions, DevTuner};
use green_automl_dataset::dev_binary_pool;

/// The budgets the paper prints tuned parameters for.
pub const BUDGETS: [f64; 3] = [30.0, 60.0, 300.0];

/// Tune per budget and dump the chosen parameters.
pub fn run(cfg: &ExpConfig) -> ExperimentOutput {
    let pool = dev_binary_pool();
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let budgets: Vec<f64> = BUDGETS
        .iter()
        .copied()
        .filter(|b| cfg.budgets.contains(b))
        .collect();
    let budgets = if budgets.is_empty() {
        cfg.budgets.clone()
    } else {
        budgets
    };

    let mut family_counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for &budget in &budgets {
        let outcome = DevTuner::tune(
            &pool,
            &DevTuneOptions {
                budget_s: budget,
                top_k: cfg.devtune_top_k,
                bo_iters: cfg.devtune_iters,
                runs_per_eval: 2,
                materialize: cfg.materialize,
                seed: cfg.seed,
            },
        );
        let p = &outcome.params;
        for f in &p.families {
            *family_counts.entry(f.name()).or_insert(0) += 1;
        }
        rows.push(vec![
            fmt(budget),
            p.families
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>()
                .join("+"),
            format!(
                "depth<={} trees<={} rounds<={} epochs<={}",
                p.bounds.depth.1, p.bounds.n_trees.1, p.bounds.gb_rounds.1, p.bounds.epochs.1
            ),
            fmt(p.holdout_frac),
            fmt(p.eval_fraction),
            fmt(p.sampling_frac),
            p.refit.to_string(),
            p.resample_validation.to_string(),
            p.incremental_training.to_string(),
        ]);
    }
    // Families chosen for multiple budgets (the paper's blue highlighting).
    let recurrent: Vec<String> = family_counts
        .iter()
        .filter(|&(_, c)| *c >= 2)
        .map(|(f, c)| format!("{f} (chosen {c}x)"))
        .collect();
    if !recurrent.is_empty() {
        notes.push(format!(
            "recurrently chosen families: {}",
            recurrent.join(", ")
        ));
    }

    let table = Table::new(
        "Table 5: tuned CAML AutoML-system parameters per search budget",
        vec![
            "budget_s",
            "families",
            "hyperparameter space",
            "holdout_frac",
            "eval_fraction",
            "sampling_frac",
            "refit",
            "resample_validation",
            "incremental_training",
        ],
        rows,
    );
    ExperimentOutput {
        id: "table5",
        files: Vec::new(),
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumps_one_row_per_budget_with_system_params() {
        let cfg = ExpConfig::smoke();
        let out = run(&cfg);
        assert_eq!(out.tables[0].rows.len(), cfg.budgets.len());
        let row = &out.tables[0].rows[0];
        assert!(!row[1].is_empty(), "families column populated");
        assert!(row[6] == "true" || row[6] == "false");
    }
}
