//! Typed command-line parsing for the `repro` binary.
//!
//! [`CliArgs::parse`] turns an argument list into a validated
//! configuration or a named [`CliError`] — the binary no longer has a
//! hand-rolled flag loop that silently swallows malformed values (the old
//! `num()` helper turned `--jobs abc` into a bare usage dump with no hint
//! of which flag was wrong).

use crate::all_experiment_ids;
use crate::suite::ExpConfig;
use green_automl_core::fault::{FaultPlan, FaultPlanError};
use std::path::PathBuf;
use std::str::FromStr;

/// A parse failure, naming exactly what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag that `repro` does not define.
    UnknownFlag(String),
    /// A flag that takes a value appeared last on the command line.
    MissingValue(&'static str),
    /// A flag's value failed to parse as a number.
    BadNumber {
        /// The flag whose value was malformed.
        flag: &'static str,
        /// The offending value, verbatim.
        value: String,
    },
    /// A positional argument that is not a known experiment id.
    UnknownExperiment(String),
    /// A fault-plan knob failed [`FaultPlan::validate`] — the typed
    /// [`FaultPlanError`] names the offending field.
    InvalidFaultPlan(FaultPlanError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            CliError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            CliError::BadNumber { flag, value } => {
                write!(f, "{flag} expects a number, got {value:?}")
            }
            CliError::UnknownExperiment(id) => write!(
                f,
                "unknown experiment id: {id} (ids: {} | all)",
                all_experiment_ids().join(" | ")
            ),
            CliError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The parsed command line of the `repro` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// Scale knobs after every flag is applied.
    pub cfg: ExpConfig,
    /// Experiment ids to run, already validated and expanded (`all` or an
    /// empty list becomes every id in the paper's order).
    pub ids: Vec<String>,
    /// Output directory for `<id>.txt` / `<id>.<n>.csv` artefacts.
    pub out_dir: PathBuf,
    /// `--list`: print every experiment id and exit.
    pub list: bool,
    /// `--help` / `-h`: print usage and exit.
    pub help: bool,
}

/// Pull the next argument as the value of `flag` and parse it.
fn num<T: FromStr>(
    flag: &'static str,
    args: &mut impl Iterator<Item = String>,
) -> Result<T, CliError> {
    let value = args.next().ok_or(CliError::MissingValue(flag))?;
    value
        .parse()
        .map_err(|_| CliError::BadNumber { flag, value })
}

impl CliArgs {
    /// Parse an argument list (without the program name).
    ///
    /// Flags may appear in any order and are applied left to right, so
    /// `--fast --runs 5` overrides the fast profile's repetition count
    /// while `--runs 5 --fast` does not — same as the old loop.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliArgs, CliError> {
        let mut cfg = ExpConfig::standard();
        let mut ids: Vec<String> = Vec::new();
        let mut out_dir = PathBuf::from("results");
        let mut list = false;
        let mut help = false;

        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" => {
                    let keep_seed = cfg.seed;
                    cfg = ExpConfig::fast();
                    cfg.seed = keep_seed;
                }
                "--full" => {
                    let keep_seed = cfg.seed;
                    cfg = ExpConfig::default();
                    cfg.runs = 10; // the paper's repetition count
                    cfg.seed = keep_seed;
                }
                "--runs" => cfg.runs = num::<usize>("--runs", &mut args)?.max(1),
                "--datasets" => {
                    cfg.n_datasets = num::<usize>("--datasets", &mut args)?.clamp(1, 39)
                }
                "--devtune-iters" => {
                    cfg.devtune_iters = num::<usize>("--devtune-iters", &mut args)?.max(1)
                }
                "--seed" => cfg.seed = num::<u64>("--seed", &mut args)?,
                "--jobs" => cfg.parallelism = num::<usize>("--jobs", &mut args)?,
                "--rps" => cfg.serve_rps = num::<usize>("--rps", &mut args)?.max(1) as f64,
                "--serve-workers" => {
                    cfg.serve_replicas = num::<usize>("--serve-workers", &mut args)?.max(1)
                }
                "--slo-ms" => cfg.slo_ms = num::<usize>("--slo-ms", &mut args)?.max(1) as f64,
                "--fleet-rps" => {
                    cfg.fleet_rps = num::<usize>("--fleet-rps", &mut args)?.max(1) as f64
                }
                "--fleet-requests" => {
                    cfg.fleet_requests = num::<usize>("--fleet-requests", &mut args)?.max(1)
                }
                "--out" => {
                    out_dir = PathBuf::from(args.next().ok_or(CliError::MissingValue("--out"))?)
                }
                "--checkpoint" => {
                    cfg.checkpoint = Some(PathBuf::from(
                        args.next().ok_or(CliError::MissingValue("--checkpoint"))?,
                    ))
                }
                "--hosts" => cfg.hosts = num::<usize>("--hosts", &mut args)?.max(1),
                "--host-crash-p" => {
                    let p = num::<f64>("--host-crash-p", &mut args)?;
                    FaultPlan {
                        host_crash_p: p,
                        ..FaultPlan::default()
                    }
                    .validate()
                    .map_err(CliError::InvalidFaultPlan)?;
                    cfg.host_crash_p = Some(p);
                }
                "--no-eval-cache" => cfg.eval_cache = false,
                "--list" => list = true,
                "--help" | "-h" => help = true,
                other if other.starts_with('-') => {
                    return Err(CliError::UnknownFlag(other.to_string()))
                }
                other => ids.push(other.to_string()),
            }
        }

        if !list && !help {
            // Reject unknown ids up front rather than failing mid-run.
            if let Some(bad) = ids
                .iter()
                .find(|id| *id != "all" && !all_experiment_ids().contains(&id.as_str()))
            {
                return Err(CliError::UnknownExperiment(bad.clone()));
            }
            if ids.is_empty() || ids.iter().any(|i| i == "all") {
                ids = all_experiment_ids().iter().map(|s| s.to_string()).collect();
            }
        }

        Ok(CliArgs {
            cfg,
            ids,
            out_dir,
            list,
            help,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_expand_to_every_experiment() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.cfg, ExpConfig::standard());
        assert_eq!(a.ids.len(), all_experiment_ids().len());
        assert_eq!(a.out_dir, PathBuf::from("results"));
        assert!(!a.list && !a.help);
    }

    #[test]
    fn flags_apply_left_to_right() {
        let a = parse(&[
            "--fast", "--runs", "5", "--seed", "7", "--jobs", "3", "fig3", "serve",
        ])
        .unwrap();
        assert_eq!(a.cfg.runs, 5);
        assert_eq!(a.cfg.seed, 7);
        assert_eq!(a.cfg.parallelism, 3);
        assert_eq!(a.cfg.budgets, ExpConfig::fast().budgets);
        assert_eq!(a.ids, vec!["fig3", "serve"]);
    }

    #[test]
    fn no_eval_cache_flag_disables_memoisation() {
        assert!(parse(&[]).unwrap().cfg.eval_cache);
        assert!(!parse(&["--no-eval-cache"]).unwrap().cfg.eval_cache);
    }

    #[test]
    fn unknown_flag_is_named() {
        assert_eq!(
            parse(&["--bogus"]),
            Err(CliError::UnknownFlag("--bogus".into()))
        );
    }

    #[test]
    fn missing_value_names_the_flag() {
        assert_eq!(parse(&["--runs"]), Err(CliError::MissingValue("--runs")));
        assert_eq!(parse(&["--out"]), Err(CliError::MissingValue("--out")));
    }

    #[test]
    fn malformed_number_is_rejected_not_swallowed() {
        // The old hand-rolled loop dumped bare usage here with no hint of
        // which flag was malformed.
        assert_eq!(
            parse(&["--jobs", "abc"]),
            Err(CliError::BadNumber {
                flag: "--jobs",
                value: "abc".into()
            })
        );
        assert_eq!(
            parse(&["--seed", "-1"]),
            Err(CliError::BadNumber {
                flag: "--seed",
                value: "-1".into()
            })
        );
    }

    #[test]
    fn unknown_experiment_id_is_rejected() {
        assert_eq!(
            parse(&["fig99"]),
            Err(CliError::UnknownExperiment("fig99".into()))
        );
        // …but not when only listing/printing help.
        assert!(parse(&["--list", "fig99"]).unwrap().list);
    }

    #[test]
    fn cluster_knobs_parse_and_validate() {
        let a = parse(&["--hosts", "0", "--host-crash-p", "0.25", "cluster"]).unwrap();
        assert_eq!(a.cfg.hosts, 1, "--hosts clamps to at least one host");
        assert_eq!(a.cfg.host_crash_p, Some(0.25));
        assert_eq!(a.ids, vec!["cluster"]);
        // An out-of-range probability is rejected with the typed
        // FaultPlanError naming the field, not silently clamped.
        assert_eq!(
            parse(&["--host-crash-p", "1.5"]),
            Err(CliError::InvalidFaultPlan(FaultPlanError::NonProbability(
                "host_crash_p"
            )))
        );
        let msg = parse(&["--host-crash-p", "1.5"]).unwrap_err().to_string();
        assert!(
            msg.contains("host_crash_p"),
            "error must name the field: {msg}"
        );
    }

    #[test]
    fn fleet_knobs_parse_and_clamp() {
        let a = parse(&["--fleet-rps", "800", "--fleet-requests", "0", "fleet"]).unwrap();
        assert_eq!(a.cfg.fleet_rps, 800.0);
        assert_eq!(a.cfg.fleet_requests, 1);
        assert_eq!(a.ids, vec!["fleet"]);
    }

    #[test]
    fn all_expands_and_clamps_hold() {
        let a = parse(&["all", "--datasets", "99", "--rps", "0"]).unwrap();
        assert_eq!(a.ids.len(), all_experiment_ids().len());
        assert_eq!(a.cfg.n_datasets, 39);
        assert_eq!(a.cfg.serve_rps, 1.0);
    }

    #[test]
    fn errors_render_with_context() {
        let e = CliError::BadNumber {
            flag: "--jobs",
            value: "abc".into(),
        };
        assert_eq!(e.to_string(), "--jobs expects a number, got \"abc\"");
        assert!(CliError::UnknownExperiment("x".into())
            .to_string()
            .contains("fig3"));
    }
}
