//! The headline guarantee of the parallel benchmark grid: at any
//! `parallelism` setting, `run_grid` returns the **same points, in the same
//! order, bit-for-bit** — every cell owns its trackers and derives its PRNG
//! streams from the cell seed alone, so the schedule cannot leak into the
//! results.

use green_automl_core::benchmark::{run_grid, BenchmarkPoint};
use green_automl_experiments::ExpConfig;
use green_automl_systems::all_systems;

fn grid_at(parallelism: usize) -> Vec<BenchmarkPoint> {
    let cfg = ExpConfig::smoke();
    let mut opts = cfg.bench_options();
    opts.parallelism = parallelism;
    run_grid(
        &all_systems(),
        &cfg.datasets(),
        &cfg.budgets,
        &cfg.base_spec(),
        &opts,
    )
}

/// Compare every field bit-exactly (floats via `to_bits`, so `-0.0` vs
/// `0.0` or NaN payloads would also be caught).
fn assert_points_identical(serial: &[BenchmarkPoint], parallel: &[BenchmarkPoint]) {
    assert_eq!(serial.len(), parallel.len(), "point counts differ");
    for (i, (s, p)) in serial.iter().zip(parallel).enumerate() {
        let ctx = format!("point {i} ({} on {})", s.system, s.dataset);
        assert_eq!(s.system, p.system, "{ctx}: system");
        assert_eq!(s.dataset, p.dataset, "{ctx}: dataset");
        assert_eq!(s.seed, p.seed, "{ctx}: seed");
        let bits = [
            ("budget_s", s.budget_s, p.budget_s),
            (
                "balanced_accuracy",
                s.balanced_accuracy,
                p.balanced_accuracy,
            ),
            (
                "execution.duration_s",
                s.execution.duration_s,
                p.execution.duration_s,
            ),
            (
                "execution.package_j",
                s.execution.energy.package_j,
                p.execution.energy.package_j,
            ),
            (
                "execution.dram_j",
                s.execution.energy.dram_j,
                p.execution.energy.dram_j,
            ),
            (
                "execution.gpu_j",
                s.execution.energy.gpu_j,
                p.execution.energy.gpu_j,
            ),
            (
                "execution.scalar_flops",
                s.execution.ops.scalar_flops,
                p.execution.ops.scalar_flops,
            ),
            (
                "execution.matmul_flops",
                s.execution.ops.matmul_flops,
                p.execution.ops.matmul_flops,
            ),
            (
                "execution.tree_steps",
                s.execution.ops.tree_steps,
                p.execution.ops.tree_steps,
            ),
            (
                "execution.mem_bytes",
                s.execution.ops.mem_bytes,
                p.execution.ops.mem_bytes,
            ),
            (
                "inference_kwh_per_row",
                s.inference_kwh_per_row,
                p.inference_kwh_per_row,
            ),
            (
                "inference_s_per_row",
                s.inference_s_per_row,
                p.inference_s_per_row,
            ),
        ];
        for (name, a, b) in bits {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: {name} ({a} vs {b})");
        }
        assert_eq!(s.n_models, p.n_models, "{ctx}: n_models");
        assert_eq!(s.n_evaluations, p.n_evaluations, "{ctx}: n_evaluations");
    }
}

#[test]
fn parallel_grid_is_bit_identical_to_serial() {
    let serial = grid_at(1);
    assert!(!serial.is_empty());
    // More workers than cells exercises the starved-worker path too.
    for workers in [2, 8] {
        assert_points_identical(&serial, &grid_at(workers));
    }
}

#[test]
fn auto_parallelism_matches_serial_too() {
    // `0` = one worker per available core — the repro binary's default.
    assert_points_identical(&grid_at(1), &grid_at(0));
}
