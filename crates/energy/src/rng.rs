//! A small, dependency-free deterministic PRNG.
//!
//! The benchmark must build in hermetic (offline) environments, so the
//! workspace carries no external `rand` dependency. Every stochastic
//! component — dataset synthesis, search strategies, bootstrap resampling —
//! draws from this [`SplitMix64`] generator instead. SplitMix64 (Steele,
//! Lea & Flood, *Fast Splittable Pseudorandom Number Generators*, OOPSLA
//! 2014) passes BigCrush, needs eight lines of code, and — crucially for a
//! benchmark whose parallel grid must be byte-identical to its serial run —
//! is seeded purely by a `u64`, so every grid cell can derive its own
//! independent, reproducible stream.
//!
//! The API deliberately mirrors the subset of `rand 0.8` the workspace
//! used (`seed_from_u64`, `gen_range`, `gen_bool`), keeping call sites
//! idiomatic.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 pseudorandom generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Identical seeds yield identical streams on every
    /// platform and build profile.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open or inclusive range (integer or `f64`).
    ///
    /// Panics on an empty or non-finite range, matching `rand`'s contract.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Uniform draw in `[0, span)` without modulo bias (Lemire's
    /// widening-multiply method with threshold rejection; *Fast Random
    /// Integer Generation in an Interval*, TOMACS 2019).
    ///
    /// The naive `next_u64() % span` over-weights the low residues whenever
    /// `span` does not divide 2⁶⁴ — up to one part in `2⁶⁴/span`, which for
    /// the benchmark's large search-space spans is a measurable skew. The
    /// widening multiply maps the 64-bit output onto `span` buckets of
    /// near-equal size and rejects the `2⁶⁴ mod span` draws that would land
    /// in partial buckets, so every residue is exactly equally likely.
    ///
    /// # Panics
    /// Panics if `span` is zero.
    #[inline]
    pub fn bounded_u64(&mut self, span: u64) -> u64 {
        assert!(span > 0, "bounded_u64 span must be non-zero");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span {
                return (m >> 64) as u64;
            }
            // Slow path, taken with probability < span / 2^64: compute the
            // rejection threshold (2^64 mod span) once and retry until the
            // draw clears it.
            let threshold = span.wrapping_neg() % span;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draw one uniform value.
    fn sample_from(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Half-open integer spans always fit in u64.
                let off = rng.bounded_u64(span as u64) as u128;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // A full-width inclusive range (e.g. `u64::MIN..=u64::MAX`)
                // has span 2^64: every raw output is in range.
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.bounded_u64(span as u64) as u128
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut SplitMix64) -> f64 {
        assert!(
            self.start < self.end && (self.end - self.start).is_finite(),
            "gen_range on empty or non-finite float range"
        );
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; stay half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut SplitMix64) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(
            lo <= hi && (hi - lo).is_finite(),
            "gen_range on empty or non-finite float range"
        );
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..2000 {
            let u = r.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let i = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = r.gen_range(0.25..=0.25f64);
            assert_eq!(g, 0.25);
        }
    }

    #[test]
    fn f64_is_uniformish_on_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(99);
        let n = 10_000;
        let mean = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
        let mut r = SplitMix64::seed_from_u64(5);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        let mut r = SplitMix64::seed_from_u64(5);
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn bounded_u64_stays_in_bounds_and_hits_every_residue() {
        let mut r = SplitMix64::seed_from_u64(0xb1a5);
        let span = 7u64;
        let mut counts = [0u64; 7];
        for _ in 0..7000 {
            let v = r.bounded_u64(span);
            assert!(v < span);
            counts[v as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "residue {i} drawn {c} times");
        }
    }

    #[test]
    fn bounded_u64_is_exactly_unbiased_over_the_mapping() {
        // Lemire's map sends x to (x * span) >> 64 and rejects
        // x*span mod 2^64 < (2^64 mod span). Verify the accepted-preimage
        // count is identical for every residue over a miniature model of
        // the construction (16-bit words), which the 64-bit code mirrors.
        let span: u32 = 48_271 % 977; // arbitrary awkward span
        let span = span.max(3);
        let threshold = (span as u16).wrapping_neg() % span as u16;
        let mut counts = vec![0u32; span as usize];
        for x in 0..=u16::MAX {
            let m = (x as u32) * span;
            let low = m as u16;
            if low >= threshold {
                counts[(m >> 16) as usize] += 1;
            }
        }
        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "accepted preimages must be equal per residue"
        );
    }

    #[test]
    fn full_width_inclusive_range_uses_raw_output() {
        let mut a = SplitMix64::seed_from_u64(31);
        let mut b = SplitMix64::seed_from_u64(31);
        assert_eq!(a.gen_range(u64::MIN..=u64::MAX), b.next_u64());
        let mut c = SplitMix64::seed_from_u64(32);
        let mut d = SplitMix64::seed_from_u64(32);
        assert_eq!(
            c.gen_range(i64::MIN..=i64::MAX),
            d.next_u64().wrapping_add(i64::MIN as u64) as i64
        );
    }

    #[test]
    fn negative_spans_are_unbiased_and_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(0x5e9);
        let mut counts = [0u64; 11];
        for _ in 0..11_000 {
            let v = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
            counts[(v + 5) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&c),
                "value {} drawn {c} times",
                i as i32 - 5
            );
        }
    }

    #[test]
    #[should_panic(expected = "span must be non-zero")]
    fn zero_span_panics() {
        SplitMix64::seed_from_u64(0).bounded_u64(0);
    }
}
