//! Typed operation counts — the simulated analogue of hardware performance
//! counters.
//!
//! Every substrate operation (a tree split, a matrix multiply, a gradient
//! step, …) is described by how many abstract operations of each kind it
//! performs. The [`crate::Device`] model later converts these counts into
//! virtual time and energy. Counts are `f64` because logical-size charging
//! (datasets materialised small but charged at their nominal row count)
//! multiplies counts by large scale factors.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A bundle of typed operation counts.
///
/// The four kinds map to distinct hardware resources:
///
/// * `scalar_flops` — general-purpose arithmetic executed on CPU cores
///   (distance computations, SGD updates, histogram building, …).
/// * `matmul_flops` — dense-linear-algebra FLOPs that a GPU can accelerate
///   (transformer attention, MLP layers). On a CPU-only device they run on
///   the cores at a higher (SIMD-friendly) throughput than scalar work.
/// * `tree_steps` — node traversals/split evaluations in decision-tree
///   workloads; branchy and cache-unfriendly, never GPU-accelerated.
/// * `mem_bytes` — bytes moved to/from DRAM (data loading, one-hot
///   expansion, ensemble prediction gathering).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCounts {
    /// General-purpose CPU arithmetic operations.
    pub scalar_flops: f64,
    /// GPU-accelerable dense linear-algebra operations.
    pub matmul_flops: f64,
    /// Decision-tree node traversals / split evaluations.
    pub tree_steps: f64,
    /// Bytes of DRAM traffic.
    pub mem_bytes: f64,
}

impl OpCounts {
    /// No work at all.
    pub const ZERO: OpCounts = OpCounts {
        scalar_flops: 0.0,
        matmul_flops: 0.0,
        tree_steps: 0.0,
        mem_bytes: 0.0,
    };

    /// Purely scalar work.
    #[inline]
    pub fn scalar(flops: f64) -> Self {
        OpCounts {
            scalar_flops: flops,
            ..Self::ZERO
        }
    }

    /// Purely dense-linear-algebra work.
    #[inline]
    pub fn matmul(flops: f64) -> Self {
        OpCounts {
            matmul_flops: flops,
            ..Self::ZERO
        }
    }

    /// Purely tree-traversal work.
    #[inline]
    pub fn tree(steps: f64) -> Self {
        OpCounts {
            tree_steps: steps,
            ..Self::ZERO
        }
    }

    /// Purely memory traffic.
    #[inline]
    pub fn mem(bytes: f64) -> Self {
        OpCounts {
            mem_bytes: bytes,
            ..Self::ZERO
        }
    }

    /// Sum of all counts, useful as a crude "total work" scalar.
    #[inline]
    pub fn total(&self) -> f64 {
        self.scalar_flops + self.matmul_flops + self.tree_steps + self.mem_bytes
    }

    /// `true` if every counter is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.total() == 0.0
    }

    /// Scale every counter by `factor` (logical-size charging).
    #[inline]
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        self * factor
    }

    /// `true` if all counters are finite and non-negative.
    #[inline]
    pub fn is_valid(&self) -> bool {
        let all = [
            self.scalar_flops,
            self.matmul_flops,
            self.tree_steps,
            self.mem_bytes,
        ];
        all.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    #[inline]
    fn add(self, rhs: OpCounts) -> OpCounts {
        OpCounts {
            scalar_flops: self.scalar_flops + rhs.scalar_flops,
            matmul_flops: self.matmul_flops + rhs.matmul_flops,
            tree_steps: self.tree_steps + rhs.tree_steps,
            mem_bytes: self.mem_bytes + rhs.mem_bytes,
        }
    }
}

impl AddAssign for OpCounts {
    #[inline]
    fn add_assign(&mut self, rhs: OpCounts) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for OpCounts {
    type Output = OpCounts;

    #[inline]
    fn mul(self, factor: f64) -> OpCounts {
        OpCounts {
            scalar_flops: self.scalar_flops * factor,
            matmul_flops: self.matmul_flops * factor,
            tree_steps: self.tree_steps * factor,
            mem_bytes: self.mem_bytes * factor,
        }
    }
}

impl Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> OpCounts {
        iter.fold(OpCounts::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn constructors_set_single_field() {
        assert_eq!(OpCounts::scalar(5.0).scalar_flops, 5.0);
        assert_eq!(OpCounts::scalar(5.0).matmul_flops, 0.0);
        assert_eq!(OpCounts::matmul(7.0).matmul_flops, 7.0);
        assert_eq!(OpCounts::tree(3.0).tree_steps, 3.0);
        assert_eq!(OpCounts::mem(9.0).mem_bytes, 9.0);
    }

    #[test]
    fn zero_is_zero() {
        assert!(OpCounts::ZERO.is_zero());
        assert!(!OpCounts::scalar(1.0).is_zero());
    }

    #[test]
    fn add_and_scale() {
        let a = OpCounts::scalar(1.0) + OpCounts::matmul(2.0) + OpCounts::tree(3.0);
        let b = a * 2.0;
        assert_eq!(b.scalar_flops, 2.0);
        assert_eq!(b.matmul_flops, 4.0);
        assert_eq!(b.tree_steps, 6.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: OpCounts = (1..=4).map(|i| OpCounts::scalar(i as f64)).sum();
        assert_eq!(total.scalar_flops, 10.0);
    }

    #[test]
    fn addition_is_commutative() {
        let mut rng = SplitMix64::seed_from_u64(0x0b5);
        for _ in 0..64 {
            let (a, b, c, d) = (
                rng.gen_range(0.0..1e12f64),
                rng.gen_range(0.0..1e12f64),
                rng.gen_range(0.0..1e12f64),
                rng.gen_range(0.0..1e12f64),
            );
            let x = OpCounts {
                scalar_flops: a,
                matmul_flops: b,
                tree_steps: c,
                mem_bytes: d,
            };
            let y = OpCounts {
                scalar_flops: d,
                matmul_flops: c,
                tree_steps: b,
                mem_bytes: a,
            };
            assert_eq!(x + y, y + x);
        }
    }

    #[test]
    fn scaling_scales_total() {
        let mut rng = SplitMix64::seed_from_u64(0x5ca1e);
        for _ in 0..64 {
            let a = rng.gen_range(0.0..1e9f64);
            let f = rng.gen_range(0.0..1e3f64);
            let x = OpCounts::scalar(a) + OpCounts::tree(a);
            let scaled = x.scaled(f);
            assert!(
                (scaled.total() - x.total() * f).abs() <= 1e-6 * x.total().max(1.0) * f.max(1.0)
            );
        }
    }

    #[test]
    fn valid_counts_stay_valid() {
        let mut rng = SplitMix64::seed_from_u64(0xa11d);
        for _ in 0..64 {
            let a = rng.gen_range(0.0..1e12f64);
            let f = rng.gen_range(0.0..1e6f64);
            let x = OpCounts::scalar(a) + OpCounts::mem(a);
            assert!(x.is_valid());
            assert!(x.scaled(f).is_valid());
        }
    }
}
