//! # green-automl-energy
//!
//! An *operation-accounted virtual energy meter* — the measurement substrate
//! for the Green-AutoML benchmark.
//!
//! The paper ("How Green is AutoML for Tabular Data?", EDBT 2025) measures
//! energy with [CodeCarbon], which samples Intel RAPL counters and NVIDIA
//! driver telemetry while the benchmarked process runs. This crate rebuilds
//! that measurement chain for a simulated testbed:
//!
//! 1. Workloads *charge* typed operation counts ([`OpCounts`]) into a
//!    [`CostTracker`] — the analogue of hardware performance counters.
//! 2. A [`Device`] model (CPU cores + optional GPU, with throughput and power
//!    curves) converts operations into **virtual seconds** on a
//!    [`VirtualClock`] and **Joules** in RAPL-like domains
//!    ([`EnergyBreakdown`]: package / DRAM / GPU).
//! 3. [`carbon`] converts kWh into CO₂ and monetary cost, mirroring the
//!    paper's Table 4 constants (0.222 kg CO₂/kWh German grid, 0.20 €/kWh).
//!
//! Because energy is derived from the *actual work performed* by the
//! simulated AutoML systems, relative orderings between systems are emergent
//! properties of their algorithms, exactly as they are on real hardware.
//!
//! ## Example
//!
//! ```
//! use green_automl_energy::{CostTracker, Device, OpCounts, ParallelProfile};
//!
//! let mut tracker = CostTracker::new(Device::xeon_gold_6132(), 1);
//! // Charge the cost of 1e9 scalar FLOPs of fully serial work.
//! tracker.charge(OpCounts::scalar(1e9), ParallelProfile::serial());
//! let m = tracker.measurement();
//! assert!(m.duration_s > 0.0);
//! assert!(m.energy.total_joules() > 0.0);
//! ```
//!
//! [CodeCarbon]: https://github.com/mlco2/codecarbon

pub mod carbon;
pub mod clock;
pub mod device;
pub mod fault;
pub mod hash;
pub mod metrics;
pub mod ops;
pub mod parallel;
pub mod rng;
pub mod trace;
pub mod tracker;

pub use carbon::{CarbonProfile, EmissionsEstimate, GridIntensity, EUR_PER_KWH};
pub use clock::VirtualClock;
pub use device::{CpuSpec, Device, GpuSpec};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultPlanError, HostFault, TrialFault};
pub use hash::StableHasher;
pub use metrics::{Histogram, MetricsRegistry};
pub use ops::OpCounts;
pub use parallel::ParallelProfile;
pub use rng::SplitMix64;
pub use trace::{Span, SpanKind, Trace, Tracer};
pub use tracker::{ChargeRec, CostTracker, EnergyBreakdown, Measurement};

/// Joules in one kilowatt-hour.
pub const JOULES_PER_KWH: f64 = 3.6e6;

/// Convert Joules to kilowatt-hours.
#[inline]
pub fn joules_to_kwh(joules: f64) -> f64 {
    joules / JOULES_PER_KWH
}

/// Convert kilowatt-hours to Joules.
#[inline]
pub fn kwh_to_joules(kwh: f64) -> f64 {
    kwh * JOULES_PER_KWH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kwh_joule_roundtrip() {
        let j = 123_456.0;
        assert!((kwh_to_joules(joules_to_kwh(j)) - j).abs() < 1e-6);
    }

    #[test]
    fn one_kwh_is_3_6_megajoules() {
        assert_eq!(kwh_to_joules(1.0), 3.6e6);
    }
}
