//! Conversion of consumed energy to CO₂ emissions and monetary cost.
//!
//! The paper reports energy (kWh) as its primary measure because CO₂ per kWh
//! varies with the electricity mix (§2.4). For the trillion-prediction
//! example (Table 4) it converts using the German grid intensity
//! (0.222 kg CO₂/kWh, via nowtricity.com) and the average European
//! electricity price (0.20 €/kWh, via Eurostat). This module reproduces
//! those constants and adds a small per-country table so users can localise
//! their reports.

/// Average European electricity price assumed by the paper, €/kWh.
pub const EUR_PER_KWH: f64 = 0.20;

/// Grid carbon intensity of a region, kg CO₂ per kWh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridIntensity {
    /// Region name.
    pub region: &'static str,
    /// Emissions per consumed kWh, kg CO₂.
    pub kg_co2_per_kwh: f64,
}

impl GridIntensity {
    /// Germany, 2023 — the paper's Table 4 assumption.
    pub const GERMANY: GridIntensity = GridIntensity {
        region: "Germany",
        kg_co2_per_kwh: 0.222,
    };
    /// France (nuclear-heavy mix).
    pub const FRANCE: GridIntensity = GridIntensity {
        region: "France",
        kg_co2_per_kwh: 0.056,
    };
    /// Sweden (hydro/nuclear mix).
    pub const SWEDEN: GridIntensity = GridIntensity {
        region: "Sweden",
        kg_co2_per_kwh: 0.041,
    };
    /// Poland (coal-heavy mix).
    pub const POLAND: GridIntensity = GridIntensity {
        region: "Poland",
        kg_co2_per_kwh: 0.666,
    };
    /// United States average.
    pub const USA: GridIntensity = GridIntensity {
        region: "USA",
        kg_co2_per_kwh: 0.367,
    };
    /// European Union average.
    pub const EU_AVERAGE: GridIntensity = GridIntensity {
        region: "EU average",
        kg_co2_per_kwh: 0.238,
    };

    /// All built-in regions.
    pub fn all() -> &'static [GridIntensity] {
        &[
            Self::GERMANY,
            Self::FRANCE,
            Self::SWEDEN,
            Self::POLAND,
            Self::USA,
            Self::EU_AVERAGE,
        ]
    }
}

/// CO₂ and monetary cost of a measured amount of energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmissionsEstimate {
    /// Energy consumed, kWh.
    pub kwh: f64,
    /// Emissions, kg CO₂.
    pub kg_co2: f64,
    /// Monetary cost, €.
    pub cost_eur: f64,
    /// Grid used for the conversion.
    pub grid: GridIntensity,
}

impl EmissionsEstimate {
    /// Convert `kwh` under `grid` at the paper's price assumption.
    ///
    /// # Panics
    /// Panics if `kwh` is negative or not finite.
    pub fn from_kwh(kwh: f64, grid: GridIntensity) -> Self {
        Self::from_kwh_priced(kwh, grid, EUR_PER_KWH)
    }

    /// Convert `kwh` under `grid` at a custom electricity price.
    ///
    /// # Panics
    /// Panics if `kwh` is negative or not finite.
    pub fn from_kwh_priced(kwh: f64, grid: GridIntensity, eur_per_kwh: f64) -> Self {
        assert!(kwh.is_finite() && kwh >= 0.0, "kWh must be non-negative");
        EmissionsEstimate {
            kwh,
            kg_co2: kwh * grid.kg_co2_per_kwh,
            cost_eur: kwh * eur_per_kwh,
            grid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn paper_table4_constants() {
        // Sanity-check against paper Table 4: FLAML's 762 kWh row converts
        // to 169 kg CO2 and 152 EUR.
        let e = EmissionsEstimate::from_kwh(762.0, GridIntensity::GERMANY);
        assert!((e.kg_co2 - 169.164).abs() < 0.01);
        assert!((e.cost_eur - 152.4).abs() < 0.01);
    }

    #[test]
    fn tabpfn_row_matches_paper() {
        // Paper Table 4: TabPFN 404,649 kWh -> 89,832 kg CO2 -> 80,930 EUR.
        let e = EmissionsEstimate::from_kwh(404_649.0, GridIntensity::GERMANY);
        assert!((e.kg_co2 - 89_832.0).abs() < 1.0);
        assert!((e.cost_eur - 80_929.8).abs() < 0.1);
    }

    #[test]
    fn cleaner_grids_emit_less() {
        let de = EmissionsEstimate::from_kwh(100.0, GridIntensity::GERMANY);
        let se = EmissionsEstimate::from_kwh(100.0, GridIntensity::SWEDEN);
        let pl = EmissionsEstimate::from_kwh(100.0, GridIntensity::POLAND);
        assert!(se.kg_co2 < de.kg_co2);
        assert!(de.kg_co2 < pl.kg_co2);
    }

    #[test]
    fn all_regions_listed_and_positive() {
        let all = GridIntensity::all();
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|g| g.kg_co2_per_kwh > 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_kwh_panics() {
        let _ = EmissionsEstimate::from_kwh(-1.0, GridIntensity::GERMANY);
    }

    #[test]
    fn conversion_is_linear() {
        let mut rng = SplitMix64::seed_from_u64(0xc02);
        for _ in 0..64 {
            let kwh = rng.gen_range(0.0..1e9f64);
            let e = EmissionsEstimate::from_kwh(kwh, GridIntensity::GERMANY);
            assert!((e.kg_co2 - kwh * 0.222).abs() < 1e-6 * kwh.max(1.0));
            assert!((e.cost_eur - kwh * 0.20).abs() < 1e-6 * kwh.max(1.0));
        }
    }
}
