//! Conversion of consumed energy to CO₂ emissions and monetary cost.
//!
//! The paper reports energy (kWh) as its primary measure because CO₂ per kWh
//! varies with the electricity mix (§2.4). For the trillion-prediction
//! example (Table 4) it converts using the German grid intensity
//! (0.222 kg CO₂/kWh, via nowtricity.com) and the average European
//! electricity price (0.20 €/kWh, via Eurostat). This module reproduces
//! those constants and adds a small per-country table so users can localise
//! their reports.

/// Average European electricity price assumed by the paper, €/kWh.
pub const EUR_PER_KWH: f64 = 0.20;

/// Grid carbon intensity of a region, kg CO₂ per kWh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridIntensity {
    /// Region name.
    pub region: &'static str,
    /// Emissions per consumed kWh, kg CO₂.
    pub kg_co2_per_kwh: f64,
}

impl GridIntensity {
    /// Germany, 2023 — the paper's Table 4 assumption.
    pub const GERMANY: GridIntensity = GridIntensity {
        region: "Germany",
        kg_co2_per_kwh: 0.222,
    };
    /// France (nuclear-heavy mix).
    pub const FRANCE: GridIntensity = GridIntensity {
        region: "France",
        kg_co2_per_kwh: 0.056,
    };
    /// Sweden (hydro/nuclear mix).
    pub const SWEDEN: GridIntensity = GridIntensity {
        region: "Sweden",
        kg_co2_per_kwh: 0.041,
    };
    /// Poland (coal-heavy mix).
    pub const POLAND: GridIntensity = GridIntensity {
        region: "Poland",
        kg_co2_per_kwh: 0.666,
    };
    /// United States average.
    pub const USA: GridIntensity = GridIntensity {
        region: "USA",
        kg_co2_per_kwh: 0.367,
    };
    /// European Union average.
    pub const EU_AVERAGE: GridIntensity = GridIntensity {
        region: "EU average",
        kg_co2_per_kwh: 0.238,
    };

    /// All built-in regions.
    pub fn all() -> &'static [GridIntensity] {
        &[
            Self::GERMANY,
            Self::FRANCE,
            Self::SWEDEN,
            Self::POLAND,
            Self::USA,
            Self::EU_AVERAGE,
        ]
    }
}

/// A time-varying grid carbon intensity: a base [`GridIntensity`] modulated
/// by a diurnal cosine — the signal a carbon-aware router shifts load
/// around. Real grids swing with the solar/wind share over the day
/// (electricityMap-style curves); the fleet simulation reproduces that
/// shape deterministically: the curve is a pure function of `(grid,
/// amplitude, period, peak)`, and the seeded constructor derives amplitude
/// and peak offset from a [`SplitMix64`](crate::rng::SplitMix64) stream so
/// every region gets a distinct but reproducible profile.
///
/// The curve is
/// `intensity(t) = base · (1 + amplitude · cos(2π (t − peak_s) / period_s))`,
/// so the *mean* over any whole period is exactly the base intensity —
/// a time-varying region is no dirtier on average than its static table
/// entry, only at different *hours*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonProfile {
    /// The region's mean intensity (the static Table-4-style entry).
    pub grid: GridIntensity,
    /// Relative swing around the mean, in `[0, 1)`. `0` = flat curve.
    pub amplitude: f64,
    /// Length of one cycle, virtual seconds (a day for diurnal curves).
    pub period_s: f64,
    /// Instant of peak (dirtiest) intensity within the cycle, seconds.
    pub peak_s: f64,
}

impl CarbonProfile {
    /// One simulated day, virtual seconds.
    pub const DAY_S: f64 = 86_400.0;

    /// A flat profile: the static table entry at every instant.
    pub fn flat(grid: GridIntensity) -> CarbonProfile {
        CarbonProfile {
            grid,
            amplitude: 0.0,
            period_s: Self::DAY_S,
            peak_s: 0.0,
        }
    }

    /// A diurnal profile with the given swing and peak hour.
    ///
    /// # Panics
    /// Panics if `amplitude` is outside `[0, 1)`.
    pub fn diurnal(grid: GridIntensity, amplitude: f64, peak_s: f64) -> CarbonProfile {
        assert!(
            amplitude.is_finite() && (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        CarbonProfile {
            grid,
            amplitude,
            period_s: Self::DAY_S,
            peak_s,
        }
    }

    /// A seeded diurnal profile: amplitude in `[0.2, 0.5)` and peak hour
    /// uniform over the day, both pure functions of `seed`.
    pub fn seeded(grid: GridIntensity, seed: u64) -> CarbonProfile {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(seed ^ 0xca4b_0210);
        CarbonProfile {
            grid,
            amplitude: 0.2 + 0.3 * rng.next_f64(),
            period_s: Self::DAY_S,
            peak_s: rng.next_f64() * Self::DAY_S,
        }
    }

    /// Instantaneous intensity at virtual instant `t`, kg CO₂/kWh.
    pub fn intensity_at(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (t - self.peak_s) / self.period_s;
        self.grid.kg_co2_per_kwh * (1.0 + self.amplitude * phase.cos())
    }

    /// Mean intensity over `[t0, t1]`, kg CO₂/kWh — the closed-form
    /// integral of the cosine curve, so energy drawn over an interval can
    /// be converted to CO₂ without discretisation error. For `t1 == t0`
    /// this degenerates to [`CarbonProfile::intensity_at`].
    ///
    /// # Panics
    /// Panics if `t1 < t0` or either bound is non-finite.
    pub fn mean_intensity(&self, t0: f64, t1: f64) -> f64 {
        assert!(
            t0.is_finite() && t1.is_finite() && t1 >= t0,
            "need a finite, ordered interval"
        );
        if t1 == t0 {
            return self.intensity_at(t0);
        }
        let w = 2.0 * std::f64::consts::PI / self.period_s;
        let integral = |t: f64| t + self.amplitude / w * (w * (t - self.peak_s)).sin();
        self.grid.kg_co2_per_kwh * (integral(t1) - integral(t0)) / (t1 - t0)
    }

    /// CO₂ emitted by `kwh` drawn uniformly over `[t0, t1]`, kg.
    pub fn kg_co2(&self, kwh: f64, t0: f64, t1: f64) -> f64 {
        assert!(kwh.is_finite() && kwh >= 0.0, "kWh must be non-negative");
        kwh * self.mean_intensity(t0, t1)
    }
}

/// CO₂ and monetary cost of a measured amount of energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmissionsEstimate {
    /// Energy consumed, kWh.
    pub kwh: f64,
    /// Emissions, kg CO₂.
    pub kg_co2: f64,
    /// Monetary cost, €.
    pub cost_eur: f64,
    /// Grid used for the conversion.
    pub grid: GridIntensity,
}

impl EmissionsEstimate {
    /// Convert `kwh` under `grid` at the paper's price assumption.
    ///
    /// # Panics
    /// Panics if `kwh` is negative or not finite.
    pub fn from_kwh(kwh: f64, grid: GridIntensity) -> Self {
        Self::from_kwh_priced(kwh, grid, EUR_PER_KWH)
    }

    /// Convert `kwh` under `grid` at a custom electricity price.
    ///
    /// # Panics
    /// Panics if `kwh` is negative or not finite.
    pub fn from_kwh_priced(kwh: f64, grid: GridIntensity, eur_per_kwh: f64) -> Self {
        assert!(kwh.is_finite() && kwh >= 0.0, "kWh must be non-negative");
        EmissionsEstimate {
            kwh,
            kg_co2: kwh * grid.kg_co2_per_kwh,
            cost_eur: kwh * eur_per_kwh,
            grid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn paper_table4_constants() {
        // Sanity-check against paper Table 4: FLAML's 762 kWh row converts
        // to 169 kg CO2 and 152 EUR.
        let e = EmissionsEstimate::from_kwh(762.0, GridIntensity::GERMANY);
        assert!((e.kg_co2 - 169.164).abs() < 0.01);
        assert!((e.cost_eur - 152.4).abs() < 0.01);
    }

    #[test]
    fn tabpfn_row_matches_paper() {
        // Paper Table 4: TabPFN 404,649 kWh -> 89,832 kg CO2 -> 80,930 EUR.
        let e = EmissionsEstimate::from_kwh(404_649.0, GridIntensity::GERMANY);
        assert!((e.kg_co2 - 89_832.0).abs() < 1.0);
        assert!((e.cost_eur - 80_929.8).abs() < 0.1);
    }

    #[test]
    fn cleaner_grids_emit_less() {
        let de = EmissionsEstimate::from_kwh(100.0, GridIntensity::GERMANY);
        let se = EmissionsEstimate::from_kwh(100.0, GridIntensity::SWEDEN);
        let pl = EmissionsEstimate::from_kwh(100.0, GridIntensity::POLAND);
        assert!(se.kg_co2 < de.kg_co2);
        assert!(de.kg_co2 < pl.kg_co2);
    }

    #[test]
    fn all_regions_listed_and_positive() {
        let all = GridIntensity::all();
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|g| g.kg_co2_per_kwh > 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_kwh_panics() {
        let _ = EmissionsEstimate::from_kwh(-1.0, GridIntensity::GERMANY);
    }

    #[test]
    fn conversions_are_monotone_in_kwh() {
        // Property: for every region, more energy never means less CO2 or
        // a lower bill — the seeded pairs sweep nine decades of kWh.
        let mut rng = SplitMix64::seed_from_u64(0x304e);
        for grid in GridIntensity::all() {
            for _ in 0..64 {
                let a = rng.gen_range(0.0..1e9f64);
                let b = rng.gen_range(0.0..1e9f64);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let e_lo = EmissionsEstimate::from_kwh(lo, *grid);
                let e_hi = EmissionsEstimate::from_kwh(hi, *grid);
                assert!(
                    e_lo.kg_co2 <= e_hi.kg_co2,
                    "{}: CO2 not monotone",
                    grid.region
                );
                assert!(
                    e_lo.cost_eur <= e_hi.cost_eur,
                    "{}: cost not monotone",
                    grid.region
                );
            }
        }
    }

    #[test]
    fn region_table_lookup_matches_paper_constants() {
        // The German entry is the paper's Table 4 conversion basis; the
        // lookup must hand back exactly those constants.
        let de = GridIntensity::all()
            .iter()
            .find(|g| g.region == "Germany")
            .expect("table lists Germany");
        assert_eq!(de.kg_co2_per_kwh, 0.222);
        assert_eq!(*de, GridIntensity::GERMANY);
        assert_eq!(EUR_PER_KWH, 0.20);
        // And the full Table 4 row reproduces through the lookup result.
        let e = EmissionsEstimate::from_kwh(762.0, *de);
        assert!((e.kg_co2 - 169.164).abs() < 1e-9);
        assert!((e.cost_eur - 152.4).abs() < 1e-9);
    }

    #[test]
    fn flat_profile_is_the_static_table_entry_everywhere() {
        let p = CarbonProfile::flat(GridIntensity::POLAND);
        let mut rng = SplitMix64::seed_from_u64(0xf1a7);
        for _ in 0..64 {
            let t = rng.gen_range(0.0..1e7f64);
            assert_eq!(p.intensity_at(t), GridIntensity::POLAND.kg_co2_per_kwh);
        }
        assert_eq!(
            p.mean_intensity(0.0, 1e6),
            GridIntensity::POLAND.kg_co2_per_kwh
        );
    }

    #[test]
    fn diurnal_curve_is_bounded_periodic_and_peaks_where_told() {
        let mut rng = SplitMix64::seed_from_u64(0xd1ca);
        for seed in 0..16u64 {
            let p = CarbonProfile::seeded(GridIntensity::GERMANY, seed);
            let base = GridIntensity::GERMANY.kg_co2_per_kwh;
            assert!((0.2..0.5).contains(&p.amplitude), "seeded amplitude band");
            for _ in 0..64 {
                let t = rng.gen_range(0.0..10.0 * CarbonProfile::DAY_S);
                let i = p.intensity_at(t);
                // Property: bounded by base*(1 ± amplitude), positive.
                assert!(i >= base * (1.0 - p.amplitude) - 1e-12);
                assert!(i <= base * (1.0 + p.amplitude) + 1e-12);
                assert!(i > 0.0, "amplitude < 1 keeps intensity positive");
                // Property: periodic to float tolerance.
                assert!((i - p.intensity_at(t + p.period_s)).abs() < 1e-9);
            }
            // The peak instant is the curve's maximum.
            assert!((p.intensity_at(p.peak_s) - base * (1.0 + p.amplitude)).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_over_whole_periods_recovers_the_table_entry() {
        // Property: a time-varying region is no dirtier on average than its
        // static table entry — the closed-form mean over k periods is the
        // base intensity, for every seeded profile.
        let mut rng = SplitMix64::seed_from_u64(0x3ea2);
        for seed in 0..16u64 {
            let p = CarbonProfile::seeded(GridIntensity::USA, seed);
            let t0 = rng.gen_range(0.0..CarbonProfile::DAY_S);
            let k = rng.gen_range(1..4usize) as f64;
            let mean = p.mean_intensity(t0, t0 + k * p.period_s);
            assert!(
                (mean - GridIntensity::USA.kg_co2_per_kwh).abs() < 1e-9,
                "mean {mean} vs base over {k} periods"
            );
        }
    }

    #[test]
    fn mean_intensity_matches_numerical_integration() {
        let p = CarbonProfile::diurnal(GridIntensity::GERMANY, 0.4, 3.0e4);
        let mut rng = SplitMix64::seed_from_u64(0x1474);
        for _ in 0..16 {
            let t0 = rng.gen_range(0.0..2.0 * CarbonProfile::DAY_S);
            let t1 = t0 + rng.gen_range(1.0..0.7 * CarbonProfile::DAY_S);
            let n = 20_000usize;
            let dt = (t1 - t0) / n as f64;
            let riemann: f64 = (0..n)
                .map(|i| p.intensity_at(t0 + (i as f64 + 0.5) * dt) * dt)
                .sum::<f64>()
                / (t1 - t0);
            let closed = p.mean_intensity(t0, t1);
            assert!(
                (closed - riemann).abs() < 1e-6,
                "closed {closed} vs riemann {riemann}"
            );
        }
    }

    #[test]
    fn degenerate_interval_is_the_instantaneous_intensity() {
        let p = CarbonProfile::seeded(GridIntensity::FRANCE, 9);
        assert_eq!(p.mean_intensity(123.0, 123.0), p.intensity_at(123.0));
        assert_eq!(p.kg_co2(0.0, 0.0, 1.0e4), 0.0);
    }

    #[test]
    fn seeded_profiles_are_reproducible_and_distinct() {
        let a = CarbonProfile::seeded(GridIntensity::SWEDEN, 7);
        let b = CarbonProfile::seeded(GridIntensity::SWEDEN, 7);
        let c = CarbonProfile::seeded(GridIntensity::SWEDEN, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn out_of_band_amplitude_panics() {
        let _ = CarbonProfile::diurnal(GridIntensity::GERMANY, 1.0, 0.0);
    }

    #[test]
    fn conversion_is_linear() {
        let mut rng = SplitMix64::seed_from_u64(0xc02);
        for _ in 0..64 {
            let kwh = rng.gen_range(0.0..1e9f64);
            let e = EmissionsEstimate::from_kwh(kwh, GridIntensity::GERMANY);
            assert!((e.kg_co2 - kwh * 0.222).abs() < 1e-6 * kwh.max(1.0));
            assert!((e.cost_eur - kwh * 0.20).abs() < 1e-6 * kwh.max(1.0));
        }
    }
}
