//! Deterministic span tracing over the virtual power meter.
//!
//! The paper's contribution is *attributing* energy to stages; a bare
//! [`CostTracker`](crate::CostTracker) only knows end-of-run totals. This
//! module adds the attribution layer: code under measurement opens and
//! closes **spans** — typed, nestable intervals keyed by a [`SpanKind`] —
//! and every closed span carries the domain-wise [`EnergyBreakdown`] delta,
//! the virtual-time interval, and the [`OpCounts`] of everything charged
//! inside it (its whole subtree).
//!
//! ## Determinism invariants
//!
//! The trace is as reproducible as the measurement itself:
//!
//! * **Timestamps** come from the [`VirtualClock`](crate::VirtualClock),
//!   never the wall clock.
//! * **Span ids** are pure functions of the tracer seed and the span's
//!   open sequence number ([`span_id`]), so ids survive re-runs and do not
//!   depend on thread scheduling.
//! * **Serialisation** ([`Trace::to_jsonl`], [`Trace::to_chrome_trace`])
//!   formats every `f64` with Rust's shortest-round-trip `Display`, which
//!   is a deterministic function of the bit pattern.
//!
//! Together these make the serialized trace of a parallel benchmark grid
//! byte-identical at every worker count — the observability output inherits
//! the equivalence guarantees of the numbers it explains.

use crate::fault::FaultKind;
use crate::ops::OpCounts;
use crate::tracker::{EnergyBreakdown, Measurement};

/// What a span measures — the trace's typed vocabulary.
///
/// Ordering follows nesting depth in a typical run (a `System` span
/// contains `Stage` spans, which contain `Trial` spans, …), but any
/// nesting is legal: the tracer only records what the call sites open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// One AutoML system's whole `fit` (the execution stage root).
    System,
    /// One Green-AutoML stage: development, execution, or inference.
    Stage,
    /// One search trial (a pipeline evaluation, a bagged model training).
    Trial,
    /// One cross-validation or bagging fold inside a trial.
    Fold,
    /// Work attributed to one dataset (e.g. the inference pass on it).
    Dataset,
    /// One micro-batch executed by the serving layer.
    Batch,
    /// One serving replica's lifetime (busy + idle).
    Replica,
    /// One cluster host's lifetime in a simulated multi-host grid run.
    Host,
    /// One network transfer (dataset shipping, result collection,
    /// cache sync) between cluster hosts.
    Transfer,
}

impl SpanKind {
    /// All kinds, in declaration order.
    pub const ALL: [SpanKind; 9] = [
        SpanKind::System,
        SpanKind::Stage,
        SpanKind::Trial,
        SpanKind::Fold,
        SpanKind::Dataset,
        SpanKind::Batch,
        SpanKind::Replica,
        SpanKind::Host,
        SpanKind::Transfer,
    ];

    /// Stable lowercase name used by the sinks.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::System => "system",
            SpanKind::Stage => "stage",
            SpanKind::Trial => "trial",
            SpanKind::Fold => "fold",
            SpanKind::Dataset => "dataset",
            SpanKind::Batch => "batch",
            SpanKind::Replica => "replica",
            SpanKind::Host => "host",
            SpanKind::Transfer => "transfer",
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One closed span: a typed virtual-time interval with the energy, ops,
/// and fault outcome of its subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Deterministic id ([`span_id`] of the tracer seed and open order).
    pub id: u64,
    /// Id of the enclosing span, `None` for a root.
    pub parent: Option<u64>,
    /// What this span measures.
    pub kind: SpanKind,
    /// Human-readable label ("FLAML", "trial 17", "batch 3", …).
    pub label: String,
    /// Render lane for exporters (0 within one tracker; merged traces
    /// assign one lane per source so concurrent timelines do not overlap).
    pub track: u32,
    /// Virtual start time, seconds.
    pub start_s: f64,
    /// Virtual end time, seconds.
    pub end_s: f64,
    /// Domain-wise energy charged between open and close (subtree total).
    pub energy: EnergyBreakdown,
    /// Operations charged between open and close (subtree total).
    pub ops: OpCounts,
    /// The injected fault that ended this span, if any.
    pub fault: Option<FaultKind>,
}

impl Span {
    /// Virtual duration, seconds.
    #[inline]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// SplitMix64 finalizer — the same mixer fault injection uses, so span ids
/// share its avalanche quality without coupling the two streams.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Domain-separation tag for span ids (ASCII "span").
const TAG_SPAN: u64 = 0x7370_616e;

/// The deterministic id of the `seq`-th span opened by a tracer seeded
/// with `seed`. Pure, schedule-independent, and never zero in practice.
#[inline]
pub fn span_id(seed: u64, seq: u64) -> u64 {
    mix64(seed ^ mix64(seq.wrapping_add(1) ^ TAG_SPAN))
}

/// Records spans against a [`CostTracker`](crate::CostTracker)'s
/// measurement snapshots.
///
/// The tracker owns the tracer and feeds it [`Measurement`] snapshots on
/// open/close; the tracer itself never touches the clock or the meter, so
/// **tracing is zero-cost on the virtual timeline** — enabling it cannot
/// change any measured number.
#[derive(Debug, Clone)]
pub struct Tracer {
    seed: u64,
    next_seq: u64,
    spans: Vec<Span>,
    /// Stack of open spans: (index into `spans`, snapshot at open).
    open: Vec<(usize, Measurement)>,
}

impl Tracer {
    /// A tracer whose span ids derive from `seed` (use the run seed).
    pub fn new(seed: u64) -> Tracer {
        Tracer {
            seed,
            next_seq: 0,
            spans: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Open a span at the state captured by `snapshot`.
    pub fn open(&mut self, kind: SpanKind, label: String, snapshot: Measurement) {
        let id = span_id(self.seed, self.next_seq);
        self.next_seq += 1;
        let parent = self.open.last().map(|&(i, _)| self.spans[i].id);
        let idx = self.spans.len();
        self.spans.push(Span {
            id,
            parent,
            kind,
            label,
            track: 0,
            start_s: snapshot.duration_s,
            end_s: snapshot.duration_s,
            energy: EnergyBreakdown::default(),
            ops: OpCounts::ZERO,
            fault: None,
        });
        self.open.push((idx, snapshot));
    }

    /// Close the innermost open span at `snapshot`, recording the delta
    /// since its open and the fault that ended it (if any).
    ///
    /// # Panics
    /// Panics if no span is open.
    pub fn close(&mut self, snapshot: Measurement, fault: Option<FaultKind>) {
        let (idx, opened) = self.open.pop().expect("span_close without an open span");
        let d = snapshot.since(&opened);
        let span = &mut self.spans[idx];
        span.end_s = snapshot.duration_s;
        span.energy = d.energy;
        span.ops = d.ops;
        span.fault = fault;
    }

    /// Number of spans still open.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }

    /// Close any spans still open at `snapshot` and return the finished
    /// trace, in span-open order.
    pub fn finish(mut self, snapshot: Measurement) -> Trace {
        while !self.open.is_empty() {
            self.close(snapshot, None);
        }
        Trace { spans: self.spans }
    }
}

/// A finished sequence of spans, in span-open order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// All recorded spans.
    pub spans: Vec<Span>,
}

impl Trace {
    /// An empty trace.
    pub fn empty() -> Trace {
        Trace::default()
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The root spans (those without a parent), in open order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Sum of the root spans' energy.
    ///
    /// For a trace whose single root covers the tracker's whole lifetime
    /// this is **bitwise equal** to the tracker's final
    /// [`EnergyBreakdown`]: the root's delta is `final − 0`, and IEEE-754
    /// subtraction of zero is exact.
    pub fn root_energy(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for s in self.roots() {
            total.package_j += s.energy.package_j;
            total.dram_j += s.energy.dram_j;
            total.gpu_j += s.energy.gpu_j;
        }
        total
    }

    /// Shift every span by `dt` virtual seconds (used to re-base a
    /// tracker-local trace onto a global timeline, e.g. a serving batch
    /// onto its dispatch instant).
    pub fn shift(&mut self, dt: f64) {
        for s in &mut self.spans {
            s.start_s += dt;
            s.end_s += dt;
        }
    }

    /// Assign every span to render lane `track`.
    pub fn set_track(&mut self, track: u32) {
        for s in &mut self.spans {
            s.track = track;
        }
    }

    /// Concatenate traces in iteration order. Span ids stay unique as
    /// long as the sources were seeded distinctly; parent links are
    /// source-local, so merging never re-parents anything.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut spans = Vec::new();
        for t in traces {
            spans.extend(t.spans);
        }
        Trace { spans }
    }

    /// Serialize as JSON Lines: one span object per line, fields in a
    /// fixed order, `f64`s via shortest-round-trip `Display`. Identical
    /// traces serialize to identical bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str("{\"id\":\"");
            out.push_str(&format!("{:016x}", s.id));
            out.push_str("\",\"parent\":");
            match s.parent {
                Some(p) => out.push_str(&format!("\"{p:016x}\"")),
                None => out.push_str("null"),
            }
            out.push_str(",\"kind\":\"");
            out.push_str(s.kind.as_str());
            out.push_str("\",\"label\":\"");
            out.push_str(&json_escape(&s.label));
            out.push_str("\",\"track\":");
            out.push_str(&s.track.to_string());
            push_f64_field(&mut out, "start_s", s.start_s);
            push_f64_field(&mut out, "end_s", s.end_s);
            push_f64_field(&mut out, "package_j", s.energy.package_j);
            push_f64_field(&mut out, "dram_j", s.energy.dram_j);
            push_f64_field(&mut out, "gpu_j", s.energy.gpu_j);
            push_f64_field(&mut out, "scalar_flops", s.ops.scalar_flops);
            push_f64_field(&mut out, "matmul_flops", s.ops.matmul_flops);
            push_f64_field(&mut out, "tree_steps", s.ops.tree_steps);
            push_f64_field(&mut out, "mem_bytes", s.ops.mem_bytes);
            out.push_str(",\"fault\":");
            match s.fault {
                Some(k) => {
                    out.push('"');
                    out.push_str(k.as_str());
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str("}\n");
        }
        out
    }

    /// Export in the Chrome `trace_event` JSON format (load in
    /// `chrome://tracing` or Perfetto): one complete (`"ph":"X"`) event
    /// per span, timestamps in microseconds of virtual time, one `tid`
    /// per render lane. Deterministic for the same reason as
    /// [`Trace::to_jsonl`].
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            out.push_str(&json_escape(&s.label));
            out.push_str("\",\"cat\":\"");
            out.push_str(s.kind.as_str());
            out.push_str("\",\"ph\":\"X\",\"ts\":");
            out.push_str(&format!("{}", s.start_s * 1e6));
            out.push_str(",\"dur\":");
            out.push_str(&format!("{}", s.duration_s() * 1e6));
            out.push_str(",\"pid\":0,\"tid\":");
            out.push_str(&s.track.to_string());
            out.push_str(",\"args\":{");
            out.push_str(&format!("\"id\":\"{:016x}\"", s.id));
            push_f64_field(&mut out, "package_j", s.energy.package_j);
            push_f64_field(&mut out, "dram_j", s.energy.dram_j);
            push_f64_field(&mut out, "gpu_j", s.energy.gpu_j);
            if let Some(k) = s.fault {
                out.push_str(",\"fault\":\"");
                out.push_str(k.as_str());
                out.push('"');
            }
            out.push_str("}}");
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Append `,"name":value` with deterministic f64 formatting.
fn push_f64_field(out: &mut String, name: &str, value: f64) {
    out.push_str(",\"");
    out.push_str(name);
    out.push_str("\":");
    out.push_str(&format!("{value}"));
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(t: f64, pkg: f64) -> Measurement {
        Measurement {
            duration_s: t,
            energy: EnergyBreakdown {
                package_j: pkg,
                dram_j: 0.0,
                gpu_j: 0.0,
            },
            ops: OpCounts::ZERO,
        }
    }

    #[test]
    fn spans_nest_and_carry_subtree_deltas() {
        let mut tr = Tracer::new(7);
        tr.open(SpanKind::System, "sys".into(), meas(0.0, 0.0));
        tr.open(SpanKind::Trial, "trial 0".into(), meas(1.0, 10.0));
        tr.close(meas(2.0, 25.0), None);
        let t = tr.finish(meas(3.0, 30.0));

        assert_eq!(t.len(), 2);
        let sys = &t.spans[0];
        let trial = &t.spans[1];
        assert_eq!(sys.parent, None);
        assert_eq!(trial.parent, Some(sys.id));
        assert_eq!(trial.start_s, 1.0);
        assert_eq!(trial.end_s, 2.0);
        assert_eq!(trial.energy.package_j, 15.0);
        // The root span covers the whole lifetime and reconciles exactly.
        assert_eq!(sys.duration_s(), 3.0);
        assert_eq!(t.root_energy().package_j.to_bits(), 30.0f64.to_bits());
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut tr = Tracer::new(1);
        tr.open(SpanKind::System, "sys".into(), meas(0.0, 0.0));
        tr.open(SpanKind::Trial, "t".into(), meas(1.0, 5.0));
        assert_eq!(tr.open_depth(), 2);
        let t = tr.finish(meas(4.0, 9.0));
        assert!(t.spans.iter().all(|s| s.end_s == 4.0));
    }

    #[test]
    fn span_ids_are_pure_in_seed_and_sequence() {
        assert_eq!(span_id(42, 0), span_id(42, 0));
        assert_ne!(span_id(42, 0), span_id(42, 1));
        assert_ne!(span_id(42, 0), span_id(43, 0));
    }

    #[test]
    fn fault_tags_survive_serialisation() {
        let mut tr = Tracer::new(3);
        tr.open(SpanKind::Trial, "doomed".into(), meas(0.0, 0.0));
        tr.close(meas(0.5, 2.0), Some(FaultKind::OomKill));
        let t = tr.finish(meas(0.5, 2.0));
        let jsonl = t.to_jsonl();
        assert!(jsonl.contains("\"fault\":\"oom\""));
        assert!(jsonl.contains("\"kind\":\"trial\""));
        let chrome = t.to_chrome_trace();
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"fault\":\"oom\""));
    }

    #[test]
    fn serialisation_is_reproducible() {
        let build = || {
            let mut tr = Tracer::new(11);
            tr.open(SpanKind::System, "s \"x\"\n".into(), meas(0.0, 0.0));
            tr.open(SpanKind::Trial, "t".into(), meas(0.25, 1.5));
            tr.close(meas(0.75, 3.25), None);
            tr.finish(meas(1.0, 4.0))
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.to_chrome_trace(), b.to_chrome_trace());
        // Escapes keep each span on one line.
        assert_eq!(a.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn merge_shift_and_track_compose() {
        let mut a = {
            let mut tr = Tracer::new(1);
            tr.open(SpanKind::Batch, "b0".into(), meas(0.0, 0.0));
            tr.finish(meas(1.0, 2.0))
        };
        a.shift(10.0);
        a.set_track(3);
        let b = {
            let mut tr = Tracer::new(2);
            tr.open(SpanKind::Batch, "b1".into(), meas(0.0, 0.0));
            tr.finish(meas(1.0, 2.0))
        };
        let m = Trace::merge([a, b]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.spans[0].start_s, 10.0);
        assert_eq!(m.spans[0].track, 3);
        assert_eq!(m.spans[1].start_s, 0.0);
        assert_ne!(m.spans[0].id, m.spans[1].id);
    }
}
