//! The virtual clock that stands in for wall-clock time.
//!
//! All budget enforcement in the simulated AutoML systems (search times of
//! 10 s, 30 s, 1 min, 5 min — exactly the paper's grid) operates on virtual
//! seconds derived from charged operations, never on real wall time. This
//! keeps experiments deterministic and lets a 28-compute-day study finish in
//! seconds of real time while preserving every budget-related behaviour
//! (any-time search, overshoot, strict adherence — paper Table 7).

/// A monotonically advancing clock measured in virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// A clock starting at zero virtual seconds.
    #[inline]
    pub fn new() -> Self {
        VirtualClock { now_s: 0.0 }
    }

    /// Current virtual time in seconds since creation.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now_s
    }

    /// Advance by `dt` virtual seconds.
    ///
    /// # Panics
    /// Panics if `dt` is negative or not finite — time never flows backwards.
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "virtual clock must advance by a finite, non-negative duration (got {dt})"
        );
        self.now_s += dt;
    }

    /// Advance the clock to the absolute virtual instant `t` if `t` lies in
    /// the future; no-op otherwise. Returns the duration actually waited.
    #[inline]
    pub fn advance_to(&mut self, t: f64) -> f64 {
        if t > self.now_s {
            let dt = t - self.now_s;
            self.now_s = t;
            dt
        } else {
            0.0
        }
    }

    /// Seconds elapsed since the virtual instant `since`.
    #[inline]
    pub fn elapsed_since(&self, since: f64) -> f64 {
        self.now_s - since
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(2.5);
        assert_eq!(c.now(), 4.0);
    }

    #[test]
    fn advance_to_future_and_past() {
        let mut c = VirtualClock::new();
        assert_eq!(c.advance_to(10.0), 10.0);
        assert_eq!(c.advance_to(5.0), 0.0);
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    fn monotone_under_any_advances() {
        let mut rng = SplitMix64::seed_from_u64(0xc10c);
        for _ in 0..32 {
            let n = rng.gen_range(0..50usize);
            let mut c = VirtualClock::new();
            let mut prev = 0.0;
            for _ in 0..n {
                c.advance(rng.gen_range(0.0..1e6f64));
                assert!(c.now() >= prev);
                prev = c.now();
            }
        }
    }
}
