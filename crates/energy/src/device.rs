//! Device models: CPUs and GPUs with throughput and power curves.
//!
//! Two presets mirror the paper's testbeds (§3.1):
//!
//! * [`Device::xeon_gold_6132`] — the 28-core Intel Xeon Gold 6132 @ 2.60 GHz
//!   machine used for all CPU experiments.
//! * [`Device::gpu_node`] — the 8-core Xeon @ 2.00 GHz + 1× NVIDIA T4 machine
//!   used for the GPU experiments (Table 3).
//!
//! Throughput numbers are *effective* rates (instrument-calibrated, i.e. they
//! absorb framework overhead of the Python stacks the paper measures), not
//! peak datasheet numbers. Power curves follow the classic split into static
//! (leakage + uncore, drawn whenever a core is allocated to the job) and
//! dynamic (drawn per executed core-second) components; this split is what
//! produces the paper's Fig. 5 parallelism trade-off.

/// Throughput and power model of a multi-core CPU package (+ DRAM domain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Physical cores available on the machine.
    pub cores: usize,
    /// Effective scalar arithmetic throughput per core, ops/s.
    pub scalar_flops_per_core: f64,
    /// Effective dense-linear-algebra throughput per core, FLOP/s (SIMD/FMA).
    pub matmul_flops_per_core: f64,
    /// Effective decision-tree traversal throughput per core, steps/s.
    pub tree_steps_per_core: f64,
    /// Shared DRAM bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Package power drawn regardless of activity, Watts (uncore + leakage).
    pub base_idle_w: f64,
    /// Additional static power per core *allocated* to the job, Watts.
    pub core_allocated_w: f64,
    /// Dynamic power per *busy* core-second, Watts.
    pub core_busy_w: f64,
    /// DRAM domain idle power, Watts.
    pub dram_idle_w: f64,
    /// DRAM access energy, Joules per byte.
    pub dram_joules_per_byte: f64,
}

/// Throughput and power model of a discrete GPU accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Human-readable model name.
    pub name: &'static str,
    /// Effective dense-linear-algebra throughput, FLOP/s.
    pub matmul_flops: f64,
    /// Power drawn while the GPU is present but idle, Watts.
    pub idle_w: f64,
    /// Power drawn while kernels execute, Watts.
    pub active_w: f64,
}

/// A complete machine: CPU package, DRAM, and optionally a GPU.
///
/// When a GPU is present, `matmul_flops` charges are executed on it (the
/// simulated frameworks offload dense linear algebra, as PyTorch does for
/// TabPFN); all other operation kinds stay on the CPU. The GPU draws idle
/// power for the whole duration of any measured workload — this is the
/// mechanism behind the paper's Table 3 observation that AutoGluon (whose
/// models mostly cannot use the GPU) *loses* energy efficiency on the GPU
/// node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Human-readable machine name.
    pub name: &'static str,
    /// CPU package model.
    pub cpu: CpuSpec,
    /// Optional GPU accelerator.
    pub gpu: Option<GpuSpec>,
}

impl Device {
    /// The paper's CPU testbed: 28 × Intel Xeon Gold 6132 @ 2.60 GHz, 264 GB.
    pub fn xeon_gold_6132() -> Device {
        Device {
            name: "28x Xeon Gold 6132 @ 2.60GHz",
            cpu: CpuSpec {
                cores: 28,
                scalar_flops_per_core: 2.0e9,
                matmul_flops_per_core: 1.6e10,
                tree_steps_per_core: 6.0e8,
                mem_bandwidth: 1.2e11,
                base_idle_w: 10.0,
                core_allocated_w: 5.0,
                core_busy_w: 8.0,
                dram_idle_w: 6.0,
                dram_joules_per_byte: 6.0e-11,
            },
            gpu: None,
        }
    }

    /// The paper's GPU testbed: 8 × Xeon @ 2.00 GHz + 1 × NVIDIA T4, 51 GB.
    pub fn gpu_node() -> Device {
        Device {
            name: "8x Xeon @ 2.00GHz + 1x NVIDIA T4",
            cpu: CpuSpec {
                cores: 8,
                // ~2.0/2.6 of the Gold 6132 per-core rates.
                scalar_flops_per_core: 1.55e9,
                matmul_flops_per_core: 1.25e10,
                tree_steps_per_core: 4.6e8,
                mem_bandwidth: 8.0e10,
                base_idle_w: 8.0,
                core_allocated_w: 5.0,
                core_busy_w: 8.0,
                dram_idle_w: 4.0,
                dram_joules_per_byte: 6.0e-11,
            },
            gpu: Some(GpuSpec {
                name: "NVIDIA T4",
                // Effective throughput for small-batch FP32 transformer
                // inference including PCIe transfers — far below the 8.1
                // TFLOPS datasheet peak, calibrated so TabPFN's GPU/CPU
                // inference-time ratio lands near the paper's ~16x.
                matmul_flops: 6.0e11,
                idle_w: 13.0,
                active_w: 70.0,
            }),
        }
    }

    /// A commodity 16-core cluster worker node: slower per core than the
    /// Gold 6132 testbed but cheaper at idle — the profile used for
    /// non-coordinator hosts in simulated multi-host grid runs.
    pub fn cluster_node() -> Device {
        Device {
            name: "16x Xeon Silver 4216 @ 2.10GHz",
            cpu: CpuSpec {
                cores: 16,
                scalar_flops_per_core: 1.6e9,
                matmul_flops_per_core: 1.3e10,
                tree_steps_per_core: 4.8e8,
                mem_bandwidth: 9.0e10,
                base_idle_w: 7.0,
                core_allocated_w: 4.0,
                core_busy_w: 7.0,
                dram_idle_w: 4.0,
                dram_joules_per_byte: 6.0e-11,
            },
            gpu: None,
        }
    }

    /// The same machine as [`Device::gpu_node`] but with the GPU disabled
    /// (the paper's "CPU only" column of Table 3).
    pub fn gpu_node_cpu_only() -> Device {
        Device {
            name: "8x Xeon @ 2.00GHz (GPU disabled)",
            gpu: None,
            ..Self::gpu_node()
        }
    }

    /// Package power (W) with `allocated` cores reserved, of which
    /// `busy` are executing, plus DRAM idle power.
    ///
    /// # Panics
    /// Panics if `busy > allocated` or `allocated` exceeds the core count.
    pub fn cpu_power_w(&self, allocated: usize, busy: f64) -> f64 {
        assert!(
            allocated <= self.cpu.cores,
            "cannot allocate more cores than exist"
        );
        assert!(
            busy <= allocated as f64,
            "busy cores cannot exceed allocated cores"
        );
        self.cpu.base_idle_w
            + self.cpu.core_allocated_w * allocated as f64
            + self.cpu.core_busy_w * busy
            + self.cpu.dram_idle_w
    }

    /// `true` if this device offloads dense linear algebra to a GPU.
    #[inline]
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let cpu = Device::xeon_gold_6132();
        assert_eq!(cpu.cpu.cores, 28);
        assert!(!cpu.has_gpu());

        let gpu = Device::gpu_node();
        assert_eq!(gpu.cpu.cores, 8);
        assert!(gpu.has_gpu());
        // The GPU node's CPU is slower per core than the Gold 6132.
        assert!(gpu.cpu.scalar_flops_per_core < cpu.cpu.scalar_flops_per_core);
    }

    #[test]
    fn cpu_only_variant_drops_gpu() {
        let d = Device::gpu_node_cpu_only();
        assert!(!d.has_gpu());
        assert_eq!(d.cpu, Device::gpu_node().cpu);
    }

    #[test]
    fn power_grows_with_allocation_and_business() {
        let d = Device::xeon_gold_6132();
        let p1 = d.cpu_power_w(1, 1.0);
        let p8_idle = d.cpu_power_w(8, 1.0);
        let p8_busy = d.cpu_power_w(8, 8.0);
        assert!(p1 < p8_idle);
        assert!(p8_idle < p8_busy);
    }

    #[test]
    #[should_panic(expected = "busy cores")]
    fn busy_exceeding_allocated_panics() {
        Device::xeon_gold_6132().cpu_power_w(2, 3.0);
    }

    #[test]
    #[should_panic(expected = "allocate more cores")]
    fn over_allocation_panics() {
        Device::gpu_node().cpu_power_w(9, 1.0);
    }

    #[test]
    fn parallel_energy_premium_matches_paper_band() {
        // Paper §3.3: running a budget-bound sequential workload (CAML) on 8
        // cores costs "up to 2.7x" the energy of 1 core. With one busy core
        // in both cases the static-power ratio should land near that band.
        let d = Device::xeon_gold_6132();
        let ratio = d.cpu_power_w(8, 1.0) / d.cpu_power_w(1, 1.0);
        assert!(
            (1.8..=3.2).contains(&ratio),
            "8-core/1-core idle-heavy power ratio {ratio:.2} outside plausible band"
        );
    }
}
