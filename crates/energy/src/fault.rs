//! Seeded, deterministic fault injection.
//!
//! The real systems the paper measures live with failure as a constant:
//! AutoSklearn and TPOT kill trial pipelines via time/memory limits
//! (pynisher), AMLB reports per-framework failure rates as a first-class
//! benchmark column, and the Green-AutoML agenda (Tornede et al. 2023)
//! calls out energy wasted on failed runs as an unreported cost. This
//! module injects those failures into the simulation *deterministically*:
//! every decision is a pure function of `(plan seed, site id)`, where the
//! site id encodes the run seed, the system name, and the trial (or batch
//! attempt) index. Nothing is drawn from shared mutable PRNG state, so a
//! parallel schedule cannot reorder decisions — grid results and serving
//! reports stay **byte-identical at every worker count**, faults included.
//!
//! Three layers consume this module:
//!
//! * search — each AutoML system asks [`FaultInjector::trial_fault`] before
//!   evaluating a candidate; a faulted trial burns (wasted) energy and is
//!   skipped;
//! * grid — `green_automl_core::benchmark` threads a [`FaultPlan`] through
//!   `RunSpec` so every cell derives the same decisions at every
//!   parallelism setting;
//! * serving — `green_automl_serve::scheduler` asks
//!   [`FaultInjector::replica_crash`] per batch dispatch attempt to decide
//!   replica crashes (retried with capped exponential virtual-time
//!   backoff).

use crate::rng::SplitMix64;

/// How an injected trial fault kills a candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The trial process dies partway through (segfault, lost worker).
    Crash,
    /// The per-trial time limit fires: the full trial window is spent
    /// before the kill (pynisher-style wall-clock limit).
    Timeout,
    /// The memory limit kills the trial partway through its fit.
    OomKill,
}

impl FaultKind {
    /// Stable lowercase name used by trace sinks and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Timeout => "timeout",
            FaultKind::OomKill => "oom",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One injected trial failure: what killed the candidate and how much of a
/// typical trial's work had already been performed (and is now wasted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialFault {
    /// The failure mode.
    pub kind: FaultKind,
    /// Fraction of a typical trial's duration burned before the kill, in
    /// `[0, 1]`. Timeouts always waste the full window (`1.0`).
    pub wasted_frac: f64,
}

/// A host-level failure in the simulated cluster, decided per
/// `(host, cell, attempt)` site by [`FaultInjector::host_fault`]. One site
/// draws at most one fault, so a host never crashes *and* straggles on the
/// same attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HostFault {
    /// The host dies mid-cell and stays dead for the rest of the run; the
    /// in-flight cell had burned `wasted_frac` of its work when it died.
    Crash {
        /// Fraction of the cell's work burned before the crash, in `[0, 1)`.
        wasted_frac: f64,
    },
    /// The host executes this attempt `slowdown`× slower than nominal
    /// (thermal throttling, noisy neighbour, failing disk).
    Straggler {
        /// Duration multiplier, `> 1`.
        slowdown: f64,
    },
    /// The host is unreachable for `duration_s` virtual seconds starting
    /// at the attempt: it keeps computing locally against its last-seen
    /// cache view, and its results (plus a cache sync) deliver on rejoin.
    Partition {
        /// Virtual seconds the host stays unreachable.
        duration_s: f64,
    },
}

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`] — the typed
/// counterpart of `RunSpecError`, threaded through the `repro` CLI so a
/// malformed `--host-crash-p` names its own error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// The named probability field was not a finite value in `[0, 1]`.
    NonProbability(&'static str),
    /// The three trial fault classes sum past 1.
    TrialSumExceedsOne,
    /// The named duration field was not finite and non-negative.
    NegativeDuration(&'static str),
    /// `host_straggler_slowdown` was not finite and `> 1`.
    NonPositiveSlowdown,
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::NonProbability(field) => {
                write!(f, "{field} must be a finite probability in [0, 1]")
            }
            FaultPlanError::TrialSumExceedsOne => {
                write!(f, "trial fault probabilities must sum to at most 1")
            }
            FaultPlanError::NegativeDuration(field) => {
                write!(f, "{field} must be finite and non-negative")
            }
            FaultPlanError::NonPositiveSlowdown => {
                write!(
                    f,
                    "host_straggler_slowdown must be finite and greater than 1"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative fault schedule. `Default` is fully disabled — zero
/// probability everywhere — so a plain `RunSpec` behaves exactly as before
/// fault injection existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream. Independent from the run seed: the same
    /// workload under two plan seeds fails at different sites.
    pub seed: u64,
    /// Per-trial probability of a [`FaultKind::Crash`].
    pub trial_crash_p: f64,
    /// Per-trial probability of a [`FaultKind::Timeout`].
    pub trial_timeout_p: f64,
    /// Per-trial probability of an [`FaultKind::OomKill`].
    pub trial_oom_p: f64,
    /// Per-dispatch-attempt probability that the serving replica executing
    /// a batch crashes mid-batch.
    pub replica_crash_p: f64,
    /// Virtual seconds a crashed replica needs to restart before accepting
    /// work again.
    pub replica_restart_s: f64,
    /// Per-(host, cell, attempt) probability of a [`HostFault::Crash`] in
    /// the simulated cluster (the coordinator, host 0, is immune: its
    /// crash decisions are suppressed so the grid always completes).
    pub host_crash_p: f64,
    /// Per-attempt probability of a [`HostFault::Straggler`].
    pub host_straggler_p: f64,
    /// Duration multiplier a straggling attempt runs at (`> 1`).
    pub host_straggler_slowdown: f64,
    /// Per-attempt probability of a [`HostFault::Partition`].
    pub host_partition_p: f64,
    /// Virtual seconds a partitioned host stays unreachable.
    pub host_partition_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            trial_crash_p: 0.0,
            trial_timeout_p: 0.0,
            trial_oom_p: 0.0,
            replica_crash_p: 0.0,
            replica_restart_s: 0.25,
            host_crash_p: 0.0,
            host_straggler_p: 0.0,
            host_straggler_slowdown: 4.0,
            host_partition_p: 0.0,
            host_partition_s: 2.0,
        }
    }
}

impl FaultPlan {
    /// The no-fault plan (same as `Default`).
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// A moderate chaos profile used by the `repro chaos` artefact: every
    /// trial/replica fault class enabled at realistic AMLB-like rates.
    /// Host-level faults stay off — see [`FaultPlan::cluster_chaos`].
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            trial_crash_p: 0.10,
            trial_timeout_p: 0.05,
            trial_oom_p: 0.05,
            replica_crash_p: 0.05,
            replica_restart_s: 0.25,
            ..FaultPlan::default()
        }
    }

    /// The [`FaultPlan::chaos`] profile plus host-level chaos for the
    /// simulated cluster: crashes, 4× stragglers, and 2-second partitions
    /// at rates high enough that a small grid sees every class.
    pub fn cluster_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            host_crash_p: 0.04,
            host_straggler_p: 0.08,
            host_straggler_slowdown: 4.0,
            host_partition_p: 0.06,
            host_partition_s: 2.0,
            ..FaultPlan::chaos(seed)
        }
    }

    /// A plan under which **every** trial dies — exercises the
    /// constant-class fallback path end to end.
    pub fn total_failure(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            trial_crash_p: 1.0,
            ..FaultPlan::default()
        }
    }

    /// `true` if any fault class has non-zero probability.
    pub fn is_active(&self) -> bool {
        self.trial_crash_p > 0.0
            || self.trial_timeout_p > 0.0
            || self.trial_oom_p > 0.0
            || self.replica_crash_p > 0.0
            || self.host_fault_p() > 0.0
    }

    /// Combined per-attempt host fault probability.
    pub fn host_fault_p(&self) -> f64 {
        self.host_crash_p + self.host_straggler_p + self.host_partition_p
    }

    /// Combined per-trial failure probability.
    pub fn trial_fault_p(&self) -> f64 {
        self.trial_crash_p + self.trial_timeout_p + self.trial_oom_p
    }

    /// Check every probability is a finite value in `[0, 1]` (with the
    /// three trial classes summing to at most 1), every duration is finite
    /// and non-negative, and the straggler slowdown exceeds 1. Returns a
    /// typed [`FaultPlanError`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let p01 = |p: f64, field: &'static str| {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(FaultPlanError::NonProbability(field))
            }
        };
        p01(self.trial_crash_p, "trial_crash_p")?;
        p01(self.trial_timeout_p, "trial_timeout_p")?;
        p01(self.trial_oom_p, "trial_oom_p")?;
        if self.trial_fault_p() > 1.0 {
            return Err(FaultPlanError::TrialSumExceedsOne);
        }
        p01(self.replica_crash_p, "replica_crash_p")?;
        if !(self.replica_restart_s.is_finite() && self.replica_restart_s >= 0.0) {
            return Err(FaultPlanError::NegativeDuration("replica_restart_s"));
        }
        p01(self.host_crash_p, "host_crash_p")?;
        p01(self.host_straggler_p, "host_straggler_p")?;
        p01(self.host_partition_p, "host_partition_p")?;
        if !(self.host_straggler_slowdown.is_finite() && self.host_straggler_slowdown > 1.0) {
            return Err(FaultPlanError::NonPositiveSlowdown);
        }
        if !(self.host_partition_s.is_finite() && self.host_partition_s >= 0.0) {
            return Err(FaultPlanError::NegativeDuration("host_partition_s"));
        }
        Ok(())
    }
}

/// Domain tag separating trial sites from replica sites, so a trial and a
/// batch attempt with the same indices never share a decision.
const TAG_TRIAL: u64 = 0x7421_a11a_5f4e_0001;
/// Domain tag for serving replica crash sites.
const TAG_REPLICA: u64 = 0x7421_a11a_5f4e_0002;
/// Domain tag for cluster host fault sites.
const TAG_HOST: u64 = 0x7421_a11a_5f4e_0003;

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string — stable across platforms and builds, used to
/// fold system names into site ids.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stateless decision oracle over a [`FaultPlan`]. Cloning or sharing an
/// injector is free: every query re-derives its answer from the site id
/// alone, so call order and thread placement are irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Build an injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan this injector answers for.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Derive the per-site PRNG: hash-chain the plan seed with the site
    /// components, then seed a private SplitMix64 stream.
    fn site_rng(&self, components: [u64; 3], tag: u64) -> SplitMix64 {
        let mut h = mix64(self.plan.seed ^ tag);
        for c in components {
            h = mix64(h ^ c);
        }
        SplitMix64::seed_from_u64(h)
    }

    /// Decide the fate of one search trial. The site is
    /// `(run seed, system name, trial index)` — byte-identical decisions at
    /// every worker count and call order.
    pub fn trial_fault(&self, run_seed: u64, system: &str, trial: u64) -> Option<TrialFault> {
        let p_crash = self.plan.trial_crash_p;
        let p_timeout = self.plan.trial_timeout_p;
        let p_oom = self.plan.trial_oom_p;
        if p_crash + p_timeout + p_oom <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng([run_seed, fnv1a(system.as_bytes()), trial], TAG_TRIAL);
        let u = rng.next_f64();
        let kind = if u < p_crash {
            FaultKind::Crash
        } else if u < p_crash + p_timeout {
            FaultKind::Timeout
        } else if u < p_crash + p_timeout + p_oom {
            FaultKind::OomKill
        } else {
            return None;
        };
        let wasted_frac = match kind {
            // A timeout spends the whole trial window before the kill.
            FaultKind::Timeout => 1.0,
            // Crashes and OOM kills strike partway through.
            FaultKind::Crash | FaultKind::OomKill => rng.next_f64(),
        };
        Some(TrialFault { kind, wasted_frac })
    }

    /// Decide the fate of cluster host `host` executing attempt `attempt`
    /// of grid cell `cell`. The site is `(host, cell, attempt)`, so the
    /// decision is known *before* the attempt starts (the scheduler uses
    /// attempt-0 decisions to pick cache views) and is independent of how
    /// many jobs execute the grid — byte-identical at every (hosts × jobs)
    /// shape. At most one fault class fires per site.
    pub fn host_fault(&self, host: u64, cell: u64, attempt: u64) -> Option<HostFault> {
        let p_crash = self.plan.host_crash_p;
        let p_straggle = self.plan.host_straggler_p;
        let p_partition = self.plan.host_partition_p;
        if p_crash + p_straggle + p_partition <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng([host, cell, attempt], TAG_HOST);
        let u = rng.next_f64();
        if u < p_crash {
            Some(HostFault::Crash {
                wasted_frac: rng.next_f64(),
            })
        } else if u < p_crash + p_straggle {
            Some(HostFault::Straggler {
                slowdown: self.plan.host_straggler_slowdown,
            })
        } else if u < p_crash + p_straggle + p_partition {
            Some(HostFault::Partition {
                duration_s: self.plan.host_partition_s,
            })
        } else {
            None
        }
    }

    /// Decide whether the replica executing dispatch attempt `attempt` of
    /// batch `batch` crashes mid-batch; returns the completed fraction of
    /// the batch at the crash instant. The site is
    /// `(stream seed, batch index, attempt index)`.
    pub fn replica_crash(&self, stream: u64, batch: u64, attempt: u64) -> Option<f64> {
        if self.plan.replica_crash_p <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng([stream, batch, attempt], TAG_REPLICA);
        if rng.next_f64() < self.plan.replica_crash_p {
            Some(rng.next_f64())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        let inj = FaultInjector::new(plan);
        for trial in 0..100 {
            assert!(inj.trial_fault(7, "FLAML", trial).is_none());
            assert!(inj.replica_crash(7, trial, 0).is_none());
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_site() {
        let inj = FaultInjector::new(FaultPlan::chaos(42));
        // Query in two different orders; answers must match exactly.
        let forward: Vec<Option<TrialFault>> =
            (0..200).map(|t| inj.trial_fault(9, "TPOT", t)).collect();
        let backward: Vec<Option<TrialFault>> = (0..200)
            .rev()
            .map(|t| inj.trial_fault(9, "TPOT", t))
            .collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|f| f.is_some()), "chaos plan must fire");
        assert!(forward.iter().any(|f| f.is_none()), "and must not always");
    }

    #[test]
    fn sites_are_independent() {
        let inj = FaultInjector::new(FaultPlan::chaos(1));
        // Different systems / run seeds / trial indices see different
        // streams (some decision must differ over a long window).
        let a: Vec<_> = (0..300).map(|t| inj.trial_fault(0, "FLAML", t)).collect();
        let b: Vec<_> = (0..300).map(|t| inj.trial_fault(0, "CAML", t)).collect();
        let c: Vec<_> = (0..300).map(|t| inj.trial_fault(1, "FLAML", t)).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fault_rate_tracks_the_plan() {
        let plan = FaultPlan {
            seed: 3,
            trial_crash_p: 0.2,
            trial_timeout_p: 0.1,
            trial_oom_p: 0.1,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let n = 4000u64;
        let hits = (0..n)
            .filter(|&t| inj.trial_fault(0, "ASKL", t).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.05, "empirical fault rate {rate}");
    }

    #[test]
    fn timeouts_waste_the_full_window() {
        let plan = FaultPlan {
            seed: 5,
            trial_timeout_p: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.trial_fault(0, "FLAML", 0).expect("certain fault");
        assert_eq!(f.kind, FaultKind::Timeout);
        assert_eq!(f.wasted_frac, 1.0);
    }

    #[test]
    fn total_failure_kills_everything() {
        let inj = FaultInjector::new(FaultPlan::total_failure(11));
        for t in 0..50 {
            let f = inj.trial_fault(4, "AutoGluon", t).expect("all trials die");
            assert_eq!(f.kind, FaultKind::Crash);
            assert!((0.0..1.0).contains(&f.wasted_frac));
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad_p = FaultPlan {
            trial_crash_p: 1.5,
            ..FaultPlan::default()
        };
        assert!(bad_p.validate().is_err());
        let bad_sum = FaultPlan {
            trial_crash_p: 0.6,
            trial_timeout_p: 0.6,
            ..FaultPlan::default()
        };
        assert!(bad_sum.validate().is_err());
        let bad_nan = FaultPlan {
            replica_crash_p: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(bad_nan.validate().is_err());
        let bad_restart = FaultPlan {
            replica_restart_s: -1.0,
            ..FaultPlan::default()
        };
        assert!(bad_restart.validate().is_err());
        assert!(FaultPlan::chaos(0).validate().is_ok());
        assert!(FaultPlan::total_failure(0).validate().is_ok());
    }

    #[test]
    fn validation_errors_are_typed_and_named() {
        let bad_host = FaultPlan {
            host_crash_p: 2.0,
            ..FaultPlan::default()
        };
        assert_eq!(
            bad_host.validate(),
            Err(FaultPlanError::NonProbability("host_crash_p"))
        );
        let bad_sum = FaultPlan {
            trial_crash_p: 0.6,
            trial_timeout_p: 0.6,
            ..FaultPlan::default()
        };
        assert_eq!(bad_sum.validate(), Err(FaultPlanError::TrialSumExceedsOne));
        let bad_partition = FaultPlan {
            host_partition_s: f64::NEG_INFINITY,
            ..FaultPlan::default()
        };
        assert_eq!(
            bad_partition.validate(),
            Err(FaultPlanError::NegativeDuration("host_partition_s"))
        );
        let bad_slowdown = FaultPlan {
            host_straggler_slowdown: 1.0,
            ..FaultPlan::default()
        };
        assert_eq!(
            bad_slowdown.validate(),
            Err(FaultPlanError::NonPositiveSlowdown)
        );
        // The message names the offending field for CLI surfacing.
        let msg = bad_host.validate().unwrap_err().to_string();
        assert!(msg.contains("host_crash_p"), "message was {msg:?}");
        assert!(FaultPlan::cluster_chaos(0).validate().is_ok());
    }

    #[test]
    fn host_faults_are_pure_functions_of_the_site() {
        let inj = FaultInjector::new(FaultPlan::cluster_chaos(21));
        let forward: Vec<Option<HostFault>> =
            (0..400).map(|c| inj.host_fault(c % 4, c, c % 3)).collect();
        let again: Vec<Option<HostFault>> = (0..400)
            .rev()
            .map(|c| inj.host_fault(c % 4, c, c % 3))
            .collect();
        let again: Vec<_> = again.into_iter().rev().collect();
        assert_eq!(forward, again);
        // Different hosts and attempts draw from independent streams.
        let h0: Vec<_> = (0..400).map(|c| inj.host_fault(0, c, 0)).collect();
        let h1: Vec<_> = (0..400).map(|c| inj.host_fault(1, c, 0)).collect();
        let a1: Vec<_> = (0..400).map(|c| inj.host_fault(0, c, 1)).collect();
        assert_ne!(h0, h1);
        assert_ne!(h0, a1);
    }

    #[test]
    fn cluster_chaos_fires_every_host_fault_class() {
        let inj = FaultInjector::new(FaultPlan::cluster_chaos(4));
        let draws: Vec<HostFault> = (0..4000)
            .filter_map(|c| inj.host_fault(c % 8, c, 0))
            .collect();
        assert!(draws.iter().any(
            |f| matches!(f, HostFault::Crash { wasted_frac } if (0.0..1.0).contains(wasted_frac))
        ));
        assert!(draws
            .iter()
            .any(|f| matches!(f, HostFault::Straggler { slowdown } if *slowdown > 1.0)));
        assert!(draws
            .iter()
            .any(|f| matches!(f, HostFault::Partition { duration_s } if *duration_s > 0.0)));
        let rate = draws.len() as f64 / 4000.0;
        let want = FaultPlan::cluster_chaos(4).host_fault_p();
        assert!(
            (rate - want).abs() < 0.03,
            "empirical host fault rate {rate}"
        );
        // The plain chaos plan leaves hosts untouched — committed chaos
        // artefacts must stay byte-identical.
        let plain = FaultInjector::new(FaultPlan::chaos(4));
        assert!((0..400).all(|c| plain.host_fault(c % 8, c, 0).is_none()));
    }

    #[test]
    fn replica_crashes_are_deterministic_and_rate_faithful() {
        let inj = FaultInjector::new(FaultPlan::chaos(9));
        let n = 4000u64;
        let a: Vec<Option<f64>> = (0..n).map(|b| inj.replica_crash(2, b, 0)).collect();
        let b: Vec<Option<f64>> = (0..n).map(|b| inj.replica_crash(2, b, 0)).collect();
        assert_eq!(a, b);
        let rate = a.iter().filter(|c| c.is_some()).count() as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.02, "empirical crash rate {rate}");
        // Crash fractions are valid progress points.
        assert!(a.iter().flatten().all(|frac| (0.0..1.0).contains(frac)));
    }
}
