//! Seeded, deterministic fault injection.
//!
//! The real systems the paper measures live with failure as a constant:
//! AutoSklearn and TPOT kill trial pipelines via time/memory limits
//! (pynisher), AMLB reports per-framework failure rates as a first-class
//! benchmark column, and the Green-AutoML agenda (Tornede et al. 2023)
//! calls out energy wasted on failed runs as an unreported cost. This
//! module injects those failures into the simulation *deterministically*:
//! every decision is a pure function of `(plan seed, site id)`, where the
//! site id encodes the run seed, the system name, and the trial (or batch
//! attempt) index. Nothing is drawn from shared mutable PRNG state, so a
//! parallel schedule cannot reorder decisions — grid results and serving
//! reports stay **byte-identical at every worker count**, faults included.
//!
//! Three layers consume this module:
//!
//! * search — each AutoML system asks [`FaultInjector::trial_fault`] before
//!   evaluating a candidate; a faulted trial burns (wasted) energy and is
//!   skipped;
//! * grid — `green_automl_core::benchmark` threads a [`FaultPlan`] through
//!   `RunSpec` so every cell derives the same decisions at every
//!   parallelism setting;
//! * serving — `green_automl_serve::scheduler` asks
//!   [`FaultInjector::replica_crash`] per batch dispatch attempt to decide
//!   replica crashes (retried with capped exponential virtual-time
//!   backoff).

use crate::rng::SplitMix64;

/// How an injected trial fault kills a candidate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The trial process dies partway through (segfault, lost worker).
    Crash,
    /// The per-trial time limit fires: the full trial window is spent
    /// before the kill (pynisher-style wall-clock limit).
    Timeout,
    /// The memory limit kills the trial partway through its fit.
    OomKill,
}

impl FaultKind {
    /// Stable lowercase name used by trace sinks and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Timeout => "timeout",
            FaultKind::OomKill => "oom",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One injected trial failure: what killed the candidate and how much of a
/// typical trial's work had already been performed (and is now wasted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialFault {
    /// The failure mode.
    pub kind: FaultKind,
    /// Fraction of a typical trial's duration burned before the kill, in
    /// `[0, 1]`. Timeouts always waste the full window (`1.0`).
    pub wasted_frac: f64,
}

/// A declarative fault schedule. `Default` is fully disabled — zero
/// probability everywhere — so a plain `RunSpec` behaves exactly as before
/// fault injection existed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream. Independent from the run seed: the same
    /// workload under two plan seeds fails at different sites.
    pub seed: u64,
    /// Per-trial probability of a [`FaultKind::Crash`].
    pub trial_crash_p: f64,
    /// Per-trial probability of a [`FaultKind::Timeout`].
    pub trial_timeout_p: f64,
    /// Per-trial probability of an [`FaultKind::OomKill`].
    pub trial_oom_p: f64,
    /// Per-dispatch-attempt probability that the serving replica executing
    /// a batch crashes mid-batch.
    pub replica_crash_p: f64,
    /// Virtual seconds a crashed replica needs to restart before accepting
    /// work again.
    pub replica_restart_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            trial_crash_p: 0.0,
            trial_timeout_p: 0.0,
            trial_oom_p: 0.0,
            replica_crash_p: 0.0,
            replica_restart_s: 0.25,
        }
    }
}

impl FaultPlan {
    /// The no-fault plan (same as `Default`).
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// A moderate chaos profile used by the `repro chaos` artefact: every
    /// fault class enabled at realistic AMLB-like rates.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            trial_crash_p: 0.10,
            trial_timeout_p: 0.05,
            trial_oom_p: 0.05,
            replica_crash_p: 0.05,
            replica_restart_s: 0.25,
        }
    }

    /// A plan under which **every** trial dies — exercises the
    /// constant-class fallback path end to end.
    pub fn total_failure(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            trial_crash_p: 1.0,
            trial_timeout_p: 0.0,
            trial_oom_p: 0.0,
            replica_crash_p: 0.0,
            replica_restart_s: 0.25,
        }
    }

    /// `true` if any fault class has non-zero probability.
    pub fn is_active(&self) -> bool {
        self.trial_crash_p > 0.0
            || self.trial_timeout_p > 0.0
            || self.trial_oom_p > 0.0
            || self.replica_crash_p > 0.0
    }

    /// Combined per-trial failure probability.
    pub fn trial_fault_p(&self) -> f64 {
        self.trial_crash_p + self.trial_timeout_p + self.trial_oom_p
    }

    /// Check every probability is a finite value in `[0, 1]` (with the
    /// three trial classes summing to at most 1) and the restart time is
    /// finite and non-negative. Returns the offending field's description.
    pub fn validate(&self) -> Result<(), &'static str> {
        let p01 = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        if !p01(self.trial_crash_p) {
            return Err("trial_crash_p must be a finite probability in [0, 1]");
        }
        if !p01(self.trial_timeout_p) {
            return Err("trial_timeout_p must be a finite probability in [0, 1]");
        }
        if !p01(self.trial_oom_p) {
            return Err("trial_oom_p must be a finite probability in [0, 1]");
        }
        if self.trial_fault_p() > 1.0 {
            return Err("trial fault probabilities must sum to at most 1");
        }
        if !p01(self.replica_crash_p) {
            return Err("replica_crash_p must be a finite probability in [0, 1]");
        }
        if !(self.replica_restart_s.is_finite() && self.replica_restart_s >= 0.0) {
            return Err("replica_restart_s must be finite and non-negative");
        }
        Ok(())
    }
}

/// Domain tag separating trial sites from replica sites, so a trial and a
/// batch attempt with the same indices never share a decision.
const TAG_TRIAL: u64 = 0x7421_a11a_5f4e_0001;
/// Domain tag for serving replica crash sites.
const TAG_REPLICA: u64 = 0x7421_a11a_5f4e_0002;

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string — stable across platforms and builds, used to
/// fold system names into site ids.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stateless decision oracle over a [`FaultPlan`]. Cloning or sharing an
/// injector is free: every query re-derives its answer from the site id
/// alone, so call order and thread placement are irrelevant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Build an injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan this injector answers for.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Derive the per-site PRNG: hash-chain the plan seed with the site
    /// components, then seed a private SplitMix64 stream.
    fn site_rng(&self, components: [u64; 3], tag: u64) -> SplitMix64 {
        let mut h = mix64(self.plan.seed ^ tag);
        for c in components {
            h = mix64(h ^ c);
        }
        SplitMix64::seed_from_u64(h)
    }

    /// Decide the fate of one search trial. The site is
    /// `(run seed, system name, trial index)` — byte-identical decisions at
    /// every worker count and call order.
    pub fn trial_fault(&self, run_seed: u64, system: &str, trial: u64) -> Option<TrialFault> {
        let p_crash = self.plan.trial_crash_p;
        let p_timeout = self.plan.trial_timeout_p;
        let p_oom = self.plan.trial_oom_p;
        if p_crash + p_timeout + p_oom <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng([run_seed, fnv1a(system.as_bytes()), trial], TAG_TRIAL);
        let u = rng.next_f64();
        let kind = if u < p_crash {
            FaultKind::Crash
        } else if u < p_crash + p_timeout {
            FaultKind::Timeout
        } else if u < p_crash + p_timeout + p_oom {
            FaultKind::OomKill
        } else {
            return None;
        };
        let wasted_frac = match kind {
            // A timeout spends the whole trial window before the kill.
            FaultKind::Timeout => 1.0,
            // Crashes and OOM kills strike partway through.
            FaultKind::Crash | FaultKind::OomKill => rng.next_f64(),
        };
        Some(TrialFault { kind, wasted_frac })
    }

    /// Decide whether the replica executing dispatch attempt `attempt` of
    /// batch `batch` crashes mid-batch; returns the completed fraction of
    /// the batch at the crash instant. The site is
    /// `(stream seed, batch index, attempt index)`.
    pub fn replica_crash(&self, stream: u64, batch: u64, attempt: u64) -> Option<f64> {
        if self.plan.replica_crash_p <= 0.0 {
            return None;
        }
        let mut rng = self.site_rng([stream, batch, attempt], TAG_REPLICA);
        if rng.next_f64() < self.plan.replica_crash_p {
            Some(rng.next_f64())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        let inj = FaultInjector::new(plan);
        for trial in 0..100 {
            assert!(inj.trial_fault(7, "FLAML", trial).is_none());
            assert!(inj.replica_crash(7, trial, 0).is_none());
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_the_site() {
        let inj = FaultInjector::new(FaultPlan::chaos(42));
        // Query in two different orders; answers must match exactly.
        let forward: Vec<Option<TrialFault>> =
            (0..200).map(|t| inj.trial_fault(9, "TPOT", t)).collect();
        let backward: Vec<Option<TrialFault>> = (0..200)
            .rev()
            .map(|t| inj.trial_fault(9, "TPOT", t))
            .collect();
        let backward: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert!(forward.iter().any(|f| f.is_some()), "chaos plan must fire");
        assert!(forward.iter().any(|f| f.is_none()), "and must not always");
    }

    #[test]
    fn sites_are_independent() {
        let inj = FaultInjector::new(FaultPlan::chaos(1));
        // Different systems / run seeds / trial indices see different
        // streams (some decision must differ over a long window).
        let a: Vec<_> = (0..300).map(|t| inj.trial_fault(0, "FLAML", t)).collect();
        let b: Vec<_> = (0..300).map(|t| inj.trial_fault(0, "CAML", t)).collect();
        let c: Vec<_> = (0..300).map(|t| inj.trial_fault(1, "FLAML", t)).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fault_rate_tracks_the_plan() {
        let plan = FaultPlan {
            seed: 3,
            trial_crash_p: 0.2,
            trial_timeout_p: 0.1,
            trial_oom_p: 0.1,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let n = 4000u64;
        let hits = (0..n)
            .filter(|&t| inj.trial_fault(0, "ASKL", t).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.05, "empirical fault rate {rate}");
    }

    #[test]
    fn timeouts_waste_the_full_window() {
        let plan = FaultPlan {
            seed: 5,
            trial_timeout_p: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let f = inj.trial_fault(0, "FLAML", 0).expect("certain fault");
        assert_eq!(f.kind, FaultKind::Timeout);
        assert_eq!(f.wasted_frac, 1.0);
    }

    #[test]
    fn total_failure_kills_everything() {
        let inj = FaultInjector::new(FaultPlan::total_failure(11));
        for t in 0..50 {
            let f = inj.trial_fault(4, "AutoGluon", t).expect("all trials die");
            assert_eq!(f.kind, FaultKind::Crash);
            assert!((0.0..1.0).contains(&f.wasted_frac));
        }
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let bad_p = FaultPlan {
            trial_crash_p: 1.5,
            ..FaultPlan::default()
        };
        assert!(bad_p.validate().is_err());
        let bad_sum = FaultPlan {
            trial_crash_p: 0.6,
            trial_timeout_p: 0.6,
            ..FaultPlan::default()
        };
        assert!(bad_sum.validate().is_err());
        let bad_nan = FaultPlan {
            replica_crash_p: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(bad_nan.validate().is_err());
        let bad_restart = FaultPlan {
            replica_restart_s: -1.0,
            ..FaultPlan::default()
        };
        assert!(bad_restart.validate().is_err());
        assert!(FaultPlan::chaos(0).validate().is_ok());
        assert!(FaultPlan::total_failure(0).validate().is_ok());
    }

    #[test]
    fn replica_crashes_are_deterministic_and_rate_faithful() {
        let inj = FaultInjector::new(FaultPlan::chaos(9));
        let n = 4000u64;
        let a: Vec<Option<f64>> = (0..n).map(|b| inj.replica_crash(2, b, 0)).collect();
        let b: Vec<Option<f64>> = (0..n).map(|b| inj.replica_crash(2, b, 0)).collect();
        assert_eq!(a, b);
        let rate = a.iter().filter(|c| c.is_some()).count() as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.02, "empirical crash rate {rate}");
        // Crash fractions are valid progress points.
        assert!(a.iter().flatten().all(|frac| (0.0..1.0).contains(frac)));
    }
}
