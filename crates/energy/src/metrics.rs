//! Deterministic metrics aggregation over traces.
//!
//! A [`MetricsRegistry`] holds monotone counters, summed gauges, and
//! fixed-bucket histograms in `BTreeMap`s, so iteration — and therefore
//! every rendered report — is deterministic. [`MetricsRegistry::record_trace`]
//! folds a [`Trace`] into the registry in span order, which makes the
//! aggregate a pure function of the trace bytes: two byte-identical traces
//! produce byte-identical metrics.

use crate::trace::Trace;
use std::collections::BTreeMap;

/// Fixed histogram bucket bounds for span durations, virtual seconds.
pub const DURATION_BOUNDS_S: [f64; 7] = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0];

/// A fixed-bucket histogram: counts per bucket plus the running sum.
///
/// Bucket `i` counts observations `<= bounds[i]`; one overflow bucket
/// catches the rest. Bounds are fixed at registration, so merged or
/// re-rendered histograms always agree on shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
}

impl Histogram {
    /// A histogram with the given ascending bucket bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_bound, count)` per bucket; the overflow bucket reports
    /// `f64::INFINITY`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }
}

/// Deterministic counters, sums, and fixed-bucket histograms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    sums: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment counter `name` by `by` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Add `value` to the summed gauge `name` (creating it at zero).
    pub fn add(&mut self, name: &str, value: f64) {
        *self.sums.entry(name.to_string()).or_insert(0.0) += value;
    }

    /// Current value of summed gauge `name` (zero if never added to).
    pub fn sum(&self, name: &str) -> f64 {
        self.sums.get(name).copied().unwrap_or(0.0)
    }

    /// Record `value` into histogram `name`, creating it with `bounds` on
    /// first use (later calls reuse the registered bounds).
    pub fn observe(&mut self, name: &str, value: f64, bounds: &[f64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The registered histogram `name`, if any observation created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold a trace into the registry, in span order:
    ///
    /// * `spans_total` and `spans.<kind>` counters,
    /// * `faults.<fault>` counters for fault-tagged spans,
    /// * `energy_j.<kind>` and `duration_s.<kind>` summed gauges,
    /// * `span_duration_s.<kind>` histograms over [`DURATION_BOUNDS_S`].
    pub fn record_trace(&mut self, trace: &Trace) {
        for s in &trace.spans {
            let kind = s.kind.as_str();
            self.inc("spans_total", 1);
            self.inc(&format!("spans.{kind}"), 1);
            if let Some(fault) = s.fault {
                self.inc(&format!("faults.{}", fault.as_str()), 1);
            }
            self.add(&format!("energy_j.{kind}"), s.energy.total_joules());
            self.add(&format!("duration_s.{kind}"), s.duration_s());
            self.observe(
                &format!("span_duration_s.{kind}"),
                s.duration_s(),
                &DURATION_BOUNDS_S,
            );
        }
    }

    /// Render every metric as deterministic `name value` lines (counters,
    /// then sums, then histogram buckets), one per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.sums {
            out.push_str(&format!("sum {name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            for (bound, count) in h.buckets() {
                if bound.is_finite() {
                    out.push_str(&format!("hist {name}{{le={bound}}} {count}\n"));
                } else {
                    out.push_str(&format!("hist {name}{{le=+inf}} {count}\n"));
                }
            }
            out.push_str(&format!("hist {name}{{sum}} {}\n", h.sum()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, Tracer};
    use crate::tracker::{EnergyBreakdown, Measurement};
    use crate::{FaultKind, OpCounts};

    fn meas(t: f64, pkg: f64) -> Measurement {
        Measurement {
            duration_s: t,
            energy: EnergyBreakdown {
                package_j: pkg,
                dram_j: 0.0,
                gpu_j: 0.0,
            },
            ops: OpCounts::ZERO,
        }
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2], (f64::INFINITY, 1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 55.5);
    }

    #[test]
    fn record_trace_counts_kinds_and_faults() {
        let mut tr = Tracer::new(5);
        tr.open(SpanKind::System, "sys".into(), meas(0.0, 0.0));
        tr.open(SpanKind::Trial, "t0".into(), meas(0.0, 0.0));
        tr.close(meas(1.0, 3.0), None);
        tr.open(SpanKind::Trial, "t1".into(), meas(1.0, 3.0));
        tr.close(meas(1.5, 4.0), Some(FaultKind::Crash));
        let trace = tr.finish(meas(2.0, 5.0));

        let mut reg = MetricsRegistry::new();
        reg.record_trace(&trace);
        assert_eq!(reg.counter("spans_total"), 3);
        assert_eq!(reg.counter("spans.trial"), 2);
        assert_eq!(reg.counter("spans.system"), 1);
        assert_eq!(reg.counter("faults.crash"), 1);
        assert_eq!(reg.sum("energy_j.system"), 5.0);
        assert_eq!(reg.histogram("span_duration_s.trial").unwrap().count(), 2);
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.inc("b", 2);
            reg.inc("a", 1);
            reg.add("z", 0.5);
            reg.observe("h", 0.02, &DURATION_BOUNDS_S);
            reg.render_text()
        };
        let (x, y) = (build(), build());
        assert_eq!(x, y);
        // BTreeMap ordering: "a" renders before "b".
        assert!(x.find("counter a").unwrap() < x.find("counter b").unwrap());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[1.0, 0.5]);
    }
}
