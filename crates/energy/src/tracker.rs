//! The cost tracker: converts charged operations into virtual time and
//! energy, playing the role CodeCarbon + RAPL play in the paper.

use crate::clock::VirtualClock;
use crate::device::Device;
use crate::fault::FaultKind;
use crate::ops::OpCounts;
use crate::parallel::ParallelProfile;
use crate::trace::{SpanKind, Trace, Tracer};

/// Accumulated energy split into RAPL-like measurement domains.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// CPU package domain (cores + uncore), Joules.
    pub package_j: f64,
    /// DRAM domain, Joules.
    pub dram_j: f64,
    /// GPU domain (zero on CPU-only devices), Joules.
    pub gpu_j: f64,
}

impl EnergyBreakdown {
    /// Total energy across all domains, Joules.
    #[inline]
    pub fn total_joules(&self) -> f64 {
        self.package_j + self.dram_j + self.gpu_j
    }

    /// Total energy across all domains, kWh.
    #[inline]
    pub fn total_kwh(&self) -> f64 {
        crate::joules_to_kwh(self.total_joules())
    }

    /// Domain-wise difference `self - earlier` — the same naming
    /// convention as [`Measurement::since`], so all span accounting goes
    /// through one subtraction path.
    #[must_use]
    pub fn since(&self, earlier: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            package_j: self.package_j - earlier.package_j,
            dram_j: self.dram_j - earlier.dram_j,
            gpu_j: self.gpu_j - earlier.gpu_j,
        }
    }
}

/// A snapshot of a tracker: elapsed virtual time, energy, and raw op counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// Virtual seconds elapsed.
    pub duration_s: f64,
    /// Energy consumed per domain.
    pub energy: EnergyBreakdown,
    /// Raw operations executed.
    pub ops: OpCounts,
}

impl Measurement {
    /// The measurement between `earlier` and `self` (component-wise delta).
    #[must_use]
    pub fn since(&self, earlier: &Measurement) -> Measurement {
        Measurement {
            duration_s: self.duration_s - earlier.duration_s,
            energy: self.energy.since(&earlier.energy),
            ops: OpCounts {
                scalar_flops: self.ops.scalar_flops - earlier.ops.scalar_flops,
                matmul_flops: self.ops.matmul_flops - earlier.ops.matmul_flops,
                tree_steps: self.ops.tree_steps - earlier.ops.tree_steps,
                mem_bytes: self.ops.mem_bytes - earlier.ops.mem_bytes,
            },
        }
    }

    /// Total energy, kWh — the paper's reporting unit.
    #[inline]
    pub fn kwh(&self) -> f64 {
        self.energy.total_kwh()
    }
}

/// One recorded [`CostTracker::charge`]: the op counts and the
/// *callee-chosen* parallel profile (before any override resolution).
///
/// A sequence of `ChargeRec`s captured while computing an evaluation is
/// the exact virtual-energy cost of that evaluation: replaying it through
/// [`CostTracker::replay`] on a tracker in the same configuration (device,
/// cores, profile override) advances the clock and the meter bitwise
/// identically to re-running the computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeRec {
    /// Operations charged.
    pub ops: OpCounts,
    /// Parallel profile as passed by the callee (pre-override).
    pub profile: ParallelProfile,
}

/// The virtual power meter.
///
/// A `CostTracker` is created per measured activity (one AutoML run, one
/// inference pass) with a [`Device`] and a number of allocated cores. Code
/// under measurement calls [`CostTracker::charge`] with the operations it
/// performed; the tracker advances its [`VirtualClock`] and integrates power
/// over the resulting duration.
///
/// ## Accounting model
///
/// For a charge of ops with parallel profile `p` on `c` allocated cores:
///
/// * CPU work in single-core-seconds
///   `w = scalar/tp_scalar + tree/tp_tree [+ matmul/tp_matmul if no GPU]`
/// * memory time `t_mem = bytes / bandwidth` (shared resource, not
///   core-scaled)
/// * GPU time `t_gpu = matmul / gpu_throughput` (if a GPU is present)
/// * duration `d = amdahl(w, p, c) + t_mem + t_gpu`
/// * package energy `(base + alloc_w·c) · d + busy_w · w` — dynamic energy is
///   work-conserving (independent of `c`), static energy scales with
///   allocation; this reproduces the paper's Fig. 5 energy/parallelism
///   trade-off.
/// * DRAM energy `idle_w · d + bytes · J_per_byte`
/// * GPU energy `idle_w · d + (active_w − idle_w) · t_gpu` — a present-but-
///   unused GPU still draws idle power (paper Table 3, AutoGluon row).
#[derive(Debug, Clone)]
pub struct CostTracker {
    device: Device,
    cores: usize,
    clock: VirtualClock,
    energy: EnergyBreakdown,
    ops: OpCounts,
    profile_override: Option<ParallelProfile>,
    tracer: Option<Box<Tracer>>,
    recorder: Option<Vec<ChargeRec>>,
}

impl CostTracker {
    /// Create a tracker for a job allocated `cores` cores on `device`.
    ///
    /// # Panics
    /// Panics if `cores` is zero or exceeds the device's core count.
    pub fn new(device: Device, cores: usize) -> Self {
        assert!(cores >= 1, "a job needs at least one core");
        assert!(
            cores <= device.cpu.cores,
            "cannot allocate {cores} cores on a {}-core device",
            device.cpu.cores
        );
        CostTracker {
            device,
            cores,
            clock: VirtualClock::new(),
            energy: EnergyBreakdown::default(),
            ops: OpCounts::ZERO,
            profile_override: None,
            tracer: None,
            recorder: None,
        }
    }

    /// Start capturing every subsequent charge as a [`ChargeRec`] (for the
    /// evaluation-memoisation layer). While recording, [`CostTracker::idle_for`],
    /// [`CostTracker::idle_until`] and [`CostTracker::set_profile_override`]
    /// panic: a recorded unit must be replayable from its charges alone, and
    /// those calls depend on (or mutate) tracker state outside the record.
    ///
    /// # Panics
    /// Panics if a recording is already in progress (units never nest).
    pub fn start_recording(&mut self) {
        assert!(self.recorder.is_none(), "charge recordings must not nest");
        self.recorder = Some(Vec::new());
    }

    /// Stop capturing and return the recorded charge sequence.
    ///
    /// # Panics
    /// Panics if no recording is in progress.
    pub fn finish_recording(&mut self) -> Vec<ChargeRec> {
        self.recorder
            .take()
            .expect("finish_recording without start_recording")
    }

    /// Replay a recorded charge sequence: advances the clock and the meter
    /// exactly as the original computation did, provided the tracker is in
    /// the same configuration (device, cores, profile override) — which the
    /// memoisation key guarantees.
    pub fn replay(&mut self, recs: &[ChargeRec]) {
        for rec in recs {
            self.charge(rec.ops, rec.profile);
        }
    }

    /// Attach a span [`Tracer`] whose ids derive from `seed` (use the run
    /// seed for reproducible traces). Until this is called, every span
    /// hook below is a no-op, so untraced hot paths pay nothing.
    ///
    /// Tracing never touches the clock or the meter: enabling it cannot
    /// change any measured number.
    pub fn enable_tracing(&mut self, seed: u64) {
        self.tracer = Some(Box::new(Tracer::new(seed)));
    }

    /// Whether a tracer is attached.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Open a span at the current measurement snapshot. The label closure
    /// only runs when tracing is enabled, so hot paths never allocate for
    /// a disabled tracer. No-op without a tracer.
    pub fn span_open(&mut self, kind: SpanKind, label: impl FnOnce() -> String) {
        if self.tracer.is_none() {
            return;
        }
        let snap = self.measurement();
        if let Some(t) = self.tracer.as_mut() {
            t.open(kind, label(), snap);
        }
    }

    /// Close the innermost open span at the current snapshot. No-op
    /// without a tracer.
    ///
    /// # Panics
    /// Panics if tracing is enabled and no span is open.
    pub fn span_close(&mut self) {
        self.span_close_with(None);
    }

    /// Close the innermost open span, tagging it with the injected fault
    /// that ended it. No-op without a tracer.
    ///
    /// # Panics
    /// Panics if tracing is enabled and no span is open.
    pub fn span_close_fault(&mut self, fault: FaultKind) {
        self.span_close_with(Some(fault));
    }

    fn span_close_with(&mut self, fault: Option<FaultKind>) {
        if self.tracer.is_none() {
            return;
        }
        let snap = self.measurement();
        if let Some(t) = self.tracer.as_mut() {
            t.close(snap, fault);
        }
    }

    /// Detach the tracer and return its finished [`Trace`] (any spans
    /// still open are closed at the current snapshot). `None` when
    /// tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let snap = self.measurement();
        self.tracer.take().map(|t| t.finish(snap))
    }

    /// Override the parallel profile of every subsequent [`CostTracker::charge`]
    /// (pass `None` to restore callee-chosen profiles). Systems that
    /// parallelise at a *coarser* grain than the library calls they make —
    /// AutoGluon running its bagging folds concurrently — use this so the
    /// system-level parallelism, not the per-model profile, governs time
    /// and energy.
    pub fn set_profile_override(&mut self, profile: Option<ParallelProfile>) {
        assert!(
            self.recorder.is_none(),
            "profile overrides must not change inside a recorded unit"
        );
        self.profile_override = profile;
    }

    /// The currently active profile override, if any (part of the
    /// evaluation-memoisation context fingerprint: replaying a charge
    /// record is only valid under the override it was recorded with).
    #[inline]
    pub fn profile_override(&self) -> Option<ParallelProfile> {
        self.profile_override
    }

    /// The device this tracker models.
    #[inline]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Cores allocated to the measured job.
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Current virtual time, seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Charge `ops` of work with the given parallel profile, advancing the
    /// clock and integrating energy.
    ///
    /// # Panics
    /// Panics (in debug builds) on non-finite or negative op counts.
    pub fn charge(&mut self, ops: OpCounts, profile: ParallelProfile) {
        debug_assert!(ops.is_valid(), "invalid op counts: {ops:?}");
        if ops.is_zero() {
            return;
        }
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(ChargeRec { ops, profile });
        }
        let profile = self.profile_override.unwrap_or(profile);
        let cpu = &self.device.cpu;

        let mut w =
            ops.scalar_flops / cpu.scalar_flops_per_core + ops.tree_steps / cpu.tree_steps_per_core;
        let mut t_gpu = 0.0;
        match self.device.gpu {
            Some(gpu) => t_gpu = ops.matmul_flops / gpu.matmul_flops,
            None => w += ops.matmul_flops / cpu.matmul_flops_per_core,
        }
        let t_mem = ops.mem_bytes / cpu.mem_bandwidth;

        let duration = profile.duration_s(w, self.cores) + t_mem + t_gpu;

        let static_w = cpu.base_idle_w + cpu.core_allocated_w * self.cores as f64;
        self.energy.package_j += static_w * duration + cpu.core_busy_w * w;
        self.energy.dram_j += cpu.dram_idle_w * duration + ops.mem_bytes * cpu.dram_joules_per_byte;
        if let Some(gpu) = self.device.gpu {
            self.energy.gpu_j += gpu.idle_w * duration + (gpu.active_w - gpu.idle_w) * t_gpu;
        }

        self.ops += ops;
        self.clock.advance(duration);
    }

    /// Let the job sit idle for `secs` virtual seconds (e.g. a strict-budget
    /// system that has exhausted its candidate evaluations but holds its
    /// allocation until the budget elapses).
    pub fn idle_for(&mut self, secs: f64) {
        assert!(
            self.recorder.is_none(),
            "idling inside a recorded unit is not replayable"
        );
        assert!(
            secs.is_finite() && secs >= 0.0,
            "idle duration must be non-negative"
        );
        if secs == 0.0 {
            return;
        }
        let cpu = &self.device.cpu;
        let static_w = cpu.base_idle_w + cpu.core_allocated_w * self.cores as f64;
        self.energy.package_j += static_w * secs;
        self.energy.dram_j += cpu.dram_idle_w * secs;
        if let Some(gpu) = self.device.gpu {
            self.energy.gpu_j += gpu.idle_w * secs;
        }
        self.clock.advance(secs);
    }

    /// Idle until the absolute virtual instant `t` (no-op if already past).
    pub fn idle_until(&mut self, t: f64) {
        // `dt > 0.0` is false for NaN, which would silently no-op and mask
        // a poisoned deadline upstream; fail loudly like `idle_for` does.
        debug_assert!(!t.is_nan(), "idle_until deadline must not be NaN");
        let dt = t - self.clock.now();
        if dt > 0.0 {
            self.idle_for(dt);
        }
    }

    /// Snapshot of everything measured so far.
    pub fn measurement(&self) -> Measurement {
        Measurement {
            duration_s: self.clock.now(),
            energy: self.energy,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    #[test]
    fn zero_charge_is_free() {
        let mut t = tracker();
        t.charge(OpCounts::ZERO, ParallelProfile::serial());
        assert_eq!(t.now(), 0.0);
        assert_eq!(t.measurement().energy.total_joules(), 0.0);
    }

    #[test]
    fn charging_advances_time_and_energy() {
        let mut t = tracker();
        t.charge(OpCounts::scalar(2.0e9), ParallelProfile::serial());
        // 2e9 scalar flops at 2e9 flops/s/core = 1 virtual second.
        assert!((t.now() - 1.0).abs() < 1e-9);
        let m = t.measurement();
        // One busy core on the Gold 6132: 10 + 5 + 8 (pkg) + 6 (dram) = 29 W.
        assert!((m.energy.total_joules() - 29.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_runs_on_cpu_without_gpu_and_gpu_with() {
        let ops = OpCounts::matmul(6.0e11);
        let mut cpu_only = CostTracker::new(Device::gpu_node_cpu_only(), 1);
        cpu_only.charge(ops, ParallelProfile::serial());
        let mut with_gpu = CostTracker::new(Device::gpu_node(), 1);
        with_gpu.charge(ops, ParallelProfile::serial());
        // The T4 executes this ~50x faster than one 2 GHz core.
        assert!(with_gpu.now() < cpu_only.now() / 10.0);
        // And the GPU domain records energy only in the GPU run.
        assert_eq!(cpu_only.measurement().energy.gpu_j, 0.0);
        assert!(with_gpu.measurement().energy.gpu_j > 0.0);
    }

    #[test]
    fn unused_gpu_still_draws_idle_power() {
        // Tree-heavy work on the GPU node: the GPU never executes a kernel
        // but burns idle power for the full duration (paper Table 3).
        let mut t = CostTracker::new(Device::gpu_node(), 1);
        t.charge(OpCounts::tree(4.6e8), ParallelProfile::serial());
        let m = t.measurement();
        assert!((m.duration_s - 1.0).abs() < 1e-9);
        assert!((m.energy.gpu_j - 13.0).abs() < 1e-6);
    }

    #[test]
    fn dynamic_energy_is_work_conserving_across_cores() {
        // Same work on 1 vs 8 cores: duration shrinks, dynamic energy equal,
        // static energy grows with allocation.
        let ops = OpCounts::scalar(2.0e10);
        let mut t1 = CostTracker::new(Device::xeon_gold_6132(), 1);
        let mut t8 = CostTracker::new(Device::xeon_gold_6132(), 8);
        t1.charge(ops, ParallelProfile::embarrassing());
        t8.charge(ops, ParallelProfile::embarrassing());
        assert!(t8.now() < t1.now() / 3.0);
        // For fully-busy parallel work, more cores finish faster and the
        // static power does not have time to accumulate: energy drops.
        assert!(t8.measurement().energy.total_joules() < t1.measurement().energy.total_joules());
    }

    #[test]
    fn sequential_work_on_many_cores_wastes_energy() {
        // Serial work holds 8 cores for the same duration as 1 core: the
        // energy ratio must land in the paper's ~2.7x band (Fig. 5, CAML).
        let ops = OpCounts::scalar(2.0e10);
        let mut t1 = CostTracker::new(Device::xeon_gold_6132(), 1);
        let mut t8 = CostTracker::new(Device::xeon_gold_6132(), 8);
        t1.charge(ops, ParallelProfile::serial());
        t8.charge(ops, ParallelProfile::serial());
        assert_eq!(t1.now(), t8.now());
        let ratio = t8.measurement().energy.total_joules() / t1.measurement().energy.total_joules();
        assert!(
            (1.8..=3.2).contains(&ratio),
            "ratio {ratio:.2} outside band"
        );
    }

    #[test]
    fn idle_burns_static_power_only() {
        let mut t = tracker();
        t.idle_for(10.0);
        let m = t.measurement();
        assert_eq!(m.duration_s, 10.0);
        // 10 + 5 (pkg static) + 6 (dram) = 21 W for 10 s.
        assert!((m.energy.total_joules() - 210.0).abs() < 1e-6);
        assert_eq!(m.ops, OpCounts::ZERO);
    }

    #[test]
    fn idle_until_is_idempotent() {
        let mut t = tracker();
        t.idle_until(5.0);
        let e = t.measurement().energy.total_joules();
        t.idle_until(5.0);
        t.idle_until(4.0);
        assert_eq!(t.measurement().energy.total_joules(), e);
        assert_eq!(t.now(), 5.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "idle_until deadline must not be NaN")]
    fn idle_until_rejects_nan_deadlines() {
        // A NaN deadline fails the `dt > 0.0` guard and used to no-op
        // silently, hiding the corrupted deadline from the caller.
        tracker().idle_until(f64::NAN);
    }

    #[test]
    fn idle_until_rejects_infinite_deadlines_via_idle_for() {
        // +inf is caught one level down by idle_for's finiteness assert.
        let r = std::panic::catch_unwind(|| {
            let mut t = tracker();
            t.idle_until(f64::INFINITY);
        });
        assert!(r.is_err(), "an infinite deadline must not pass silently");
    }

    #[test]
    fn profile_override_governs_charges() {
        let ops = OpCounts::scalar(2.0e10);
        let mut plain = CostTracker::new(Device::xeon_gold_6132(), 8);
        plain.charge(ops, ParallelProfile::serial());
        let mut overridden = CostTracker::new(Device::xeon_gold_6132(), 8);
        overridden.set_profile_override(Some(ParallelProfile::embarrassing()));
        overridden.charge(ops, ParallelProfile::serial());
        assert!(
            overridden.now() < plain.now() / 3.0,
            "override should parallelise the serial charge"
        );
        // Clearing the override restores callee profiles.
        overridden.set_profile_override(None);
        let before = overridden.now();
        overridden.charge(ops, ParallelProfile::serial());
        assert!(overridden.now() - before > plain.now() / 2.0);
    }

    #[test]
    fn measurement_since_subtracts() {
        let mut t = tracker();
        t.charge(OpCounts::scalar(2.0e9), ParallelProfile::serial());
        let mid = t.measurement();
        t.charge(OpCounts::scalar(2.0e9), ParallelProfile::serial());
        let d = t.measurement().since(&mid);
        assert!((d.duration_s - 1.0).abs() < 1e-9);
        assert!((d.ops.scalar_flops - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn tracing_is_measurement_neutral_and_reconciles_bitwise() {
        let ops = OpCounts::scalar(3.0e9);
        let mut plain = tracker();
        plain.charge(ops, ParallelProfile::serial());
        plain.idle_for(0.5);

        let mut traced = tracker();
        traced.enable_tracing(42);
        traced.span_open(crate::trace::SpanKind::System, || "sys".to_string());
        traced.span_open(crate::trace::SpanKind::Trial, || "trial 0".to_string());
        traced.charge(ops, ParallelProfile::serial());
        traced.span_close();
        traced.idle_for(0.5);
        traced.span_close();

        // Tracing never perturbs the measurement…
        let (p, t) = (plain.measurement(), traced.measurement());
        assert_eq!(p.duration_s.to_bits(), t.duration_s.to_bits());
        assert_eq!(p.energy.package_j.to_bits(), t.energy.package_j.to_bits());

        // …and the root span reconciles bitwise with the run total.
        let trace = traced.take_trace().expect("tracing enabled");
        assert_eq!(trace.len(), 2);
        let root = trace.roots().next().unwrap();
        assert_eq!(
            root.energy.package_j.to_bits(),
            t.energy.package_j.to_bits()
        );
        assert_eq!(root.energy.dram_j.to_bits(), t.energy.dram_j.to_bits());
        assert_eq!(root.energy.gpu_j.to_bits(), t.energy.gpu_j.to_bits());
        assert_eq!(root.end_s.to_bits(), t.duration_s.to_bits());
        // A second take returns nothing: the tracer is detached.
        assert!(traced.take_trace().is_none());
    }

    #[test]
    fn span_hooks_are_noops_without_a_tracer() {
        let mut t = tracker();
        assert!(!t.tracing_enabled());
        t.span_open(crate::trace::SpanKind::Trial, || {
            panic!("label closure must not run while tracing is disabled")
        });
        t.span_close();
        assert!(t.take_trace().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = CostTracker::new(Device::xeon_gold_6132(), 0);
    }

    #[test]
    fn energy_and_time_are_monotone() {
        let mut rng = SplitMix64::seed_from_u64(0xe4e);
        for _ in 0..32 {
            let n = rng.gen_range(1..20usize);
            let mut t = tracker();
            let mut last_e = 0.0;
            let mut last_t = 0.0;
            for _ in 0..n {
                t.charge(
                    OpCounts::scalar(rng.gen_range(1e3..1e10f64)),
                    ParallelProfile::serial(),
                );
                let m = t.measurement();
                assert!(m.duration_s > last_t);
                assert!(m.energy.total_joules() > last_e);
                last_t = m.duration_s;
                last_e = m.energy.total_joules();
            }
        }
    }

    #[test]
    fn charge_is_additive() {
        let mut rng = SplitMix64::seed_from_u64(0xadd);
        for _ in 0..64 {
            let a = rng.gen_range(1e3..1e10f64);
            let b = rng.gen_range(1e3..1e10f64);
            let mut split = tracker();
            split.charge(OpCounts::scalar(a), ParallelProfile::serial());
            split.charge(OpCounts::scalar(b), ParallelProfile::serial());
            let mut joint = tracker();
            joint.charge(OpCounts::scalar(a + b), ParallelProfile::serial());
            let (ms, mj) = (split.measurement(), joint.measurement());
            assert!((ms.duration_s - mj.duration_s).abs() < 1e-9 * mj.duration_s.max(1.0));
            assert!(
                (ms.energy.total_joules() - mj.energy.total_joules()).abs()
                    < 1e-9 * mj.energy.total_joules().max(1.0)
            );
        }
    }

    #[test]
    fn replaying_a_recording_reproduces_the_meter_bitwise() {
        let mut rng = SplitMix64::seed_from_u64(0x4ec);
        for _ in 0..16 {
            let charges: Vec<(f64, ParallelProfile)> = (0..rng.gen_range(1..6usize))
                .map(|_| {
                    let p = if rng.gen_range(0..2u32) == 0 {
                        ParallelProfile::serial()
                    } else {
                        ParallelProfile::model_training()
                    };
                    (rng.gen_range(1e3..1e9f64), p)
                })
                .collect();

            let mut live = tracker();
            live.start_recording();
            for &(f, p) in &charges {
                live.charge(OpCounts::scalar(f), p);
            }
            let recs = live.finish_recording();
            assert_eq!(recs.len(), charges.len());

            let mut replayed = tracker();
            replayed.replay(&recs);
            let (a, b) = (live.measurement(), replayed.measurement());
            assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
            assert_eq!(a.energy.package_j.to_bits(), b.energy.package_j.to_bits());
            assert_eq!(a.energy.dram_j.to_bits(), b.energy.dram_j.to_bits());
            assert_eq!(a.ops, b.ops);
        }
    }

    #[test]
    fn recording_keeps_callee_profiles_for_overridden_trackers() {
        // Record under an override, replay under the same override: bitwise
        // equal. The record stores the callee profile, so the override must
        // be part of the memoisation key — which this test documents.
        let ops = OpCounts::scalar(2.0e10);
        let mut live = CostTracker::new(Device::xeon_gold_6132(), 8);
        live.set_profile_override(Some(ParallelProfile::embarrassing()));
        live.start_recording();
        live.charge(ops, ParallelProfile::serial());
        let recs = live.finish_recording();
        assert_eq!(recs[0].profile, ParallelProfile::serial());

        let mut replayed = CostTracker::new(Device::xeon_gold_6132(), 8);
        replayed.set_profile_override(Some(ParallelProfile::embarrassing()));
        replayed.replay(&recs);
        assert_eq!(live.now().to_bits(), replayed.now().to_bits());
    }

    #[test]
    fn zero_charges_are_not_recorded() {
        let mut t = tracker();
        t.start_recording();
        t.charge(OpCounts::ZERO, ParallelProfile::serial());
        assert!(t.finish_recording().is_empty());
    }

    #[test]
    #[should_panic(expected = "must not nest")]
    fn nested_recordings_panic() {
        let mut t = tracker();
        t.start_recording();
        t.start_recording();
    }

    #[test]
    #[should_panic(expected = "not replayable")]
    fn idling_while_recording_panics() {
        let mut t = tracker();
        t.start_recording();
        t.idle_for(1.0);
    }

    #[test]
    #[should_panic(expected = "must not change inside")]
    fn override_change_while_recording_panics() {
        let mut t = tracker();
        t.start_recording();
        t.set_profile_override(None);
    }

    #[test]
    fn more_cores_never_increase_duration() {
        let mut rng = SplitMix64::seed_from_u64(0xc0e5);
        for _ in 0..64 {
            let flops = rng.gen_range(1e6..1e11f64);
            let c = rng.gen_range(1..28usize);
            let mut t1 = CostTracker::new(Device::xeon_gold_6132(), c);
            let mut t2 = CostTracker::new(Device::xeon_gold_6132(), c + 1);
            t1.charge(OpCounts::scalar(flops), ParallelProfile::model_training());
            t2.charge(OpCounts::scalar(flops), ParallelProfile::model_training());
            assert!(t2.now() <= t1.now() + 1e-12);
        }
    }
}
