//! A small, stable, non-cryptographic hasher for content fingerprints.
//!
//! The evaluation-memoisation layer keys its memo table on *content
//! fingerprints* of pipelines, datasets, and tracker configurations.
//! `std::hash` offers no stability guarantee across releases and
//! `DefaultHasher` is explicitly documented as unstable, so fingerprints
//! that end up in artefacts (checkpoints, benchmark JSON) need a hasher
//! whose output is fixed by this crate alone. [`StableHasher`] is a
//! word-at-a-time mixer built on the SplitMix64 finaliser (the same mixer
//! [`crate::rng::SplitMix64`] uses), with two independently-evolving lanes
//! folded at the end so single-lane collisions do not collide the digest.

/// SplitMix64 finalising mixer: a fast 64-bit permutation with good
/// avalanche behaviour.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stable streaming hasher over 64-bit words.
///
/// Not cryptographic — collision resistance is the ~2⁻⁶⁴ of a well-mixed
/// 64-bit digest, which is ample for memo-table keys (a false hit needs a
/// collision *within* one key domain of one grid run).
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
    words: u64,
}

impl StableHasher {
    /// A hasher seeded with a domain `tag` so different kinds of content
    /// (pipelines, datasets, split derivations) hash in disjoint domains.
    pub fn new(tag: u64) -> StableHasher {
        StableHasher {
            a: mix64(tag ^ 0x9e37_79b9_7f4a_7c15),
            b: mix64(tag.wrapping_add(0x6a09_e667_f3bc_c909)),
            words: 0,
        }
    }

    /// Absorb one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.a = mix64(self.a ^ w);
        self.b = mix64(self.b.rotate_left(32) ^ w ^ 0x9e37_79b9_7f4a_7c15);
        self.words = self.words.wrapping_add(1);
    }

    /// Absorb a `usize` (widened, so 32- and 64-bit builds agree on inputs
    /// that fit in 32 bits).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern (`-0.0` and `0.0` hash
    /// differently; NaNs hash by their payload — fine for fingerprints of
    /// data that is compared bitwise anyway).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a byte slice (length-prefixed, zero-padded to whole words).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Absorb a string slice.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The 64-bit digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        mix64(self.a ^ self.b.rotate_left(32) ^ mix64(self.words))
    }
}

/// One-shot fingerprint of a string under a domain tag.
pub fn hash_str(tag: u64, s: &str) -> u64 {
    let mut h = StableHasher::new(tag);
    h.write_str(s);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable() {
        // Pinned values: fingerprints land in artefacts, so the hash
        // function must never drift silently.
        let mut h = StableHasher::new(1);
        h.write_u64(42);
        h.write_str("pipeline");
        assert_eq!(h.finish(), h.clone().finish());
        let d1 = h.finish();
        let mut h2 = StableHasher::new(1);
        h2.write_u64(42);
        h2.write_str("pipeline");
        assert_eq!(d1, h2.finish());
    }

    #[test]
    fn tags_separate_domains() {
        assert_ne!(hash_str(1, "x"), hash_str(2, "x"));
        assert_ne!(hash_str(1, "x"), hash_str(1, "y"));
    }

    #[test]
    fn word_order_matters() {
        let mut a = StableHasher::new(0);
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new(0);
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_extension_is_distinguished() {
        // "ab" + "c" must differ from "a" + "bc" (length prefixes).
        let mut a = StableHasher::new(0);
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new(0);
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_hashes_by_bits() {
        let mut a = StableHasher::new(0);
        a.write_f64(0.0);
        let mut b = StableHasher::new(0);
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_inputs_still_depend_on_tag() {
        assert_ne!(StableHasher::new(3).finish(), StableHasher::new(4).finish());
    }

    #[test]
    fn mixer_fixed_point_at_zero_never_reaches_the_digest() {
        // The splitmix finaliser maps 0 to 0; the hasher's tag seeding
        // avoids ever feeding the raw zero state through unmixed.
        assert_eq!(mix64(0), 0);
        assert_ne!(StableHasher::new(0).finish(), 0);
    }
}
