//! The parallel-execution model: how a workload's operations spread across
//! allocated cores.
//!
//! The paper's Fig. 5 finding — sequential Bayesian optimisation (CAML)
//! wastes energy on extra cores while embarrassingly parallel bagging
//! (AutoGluon) benefits from them — hinges on how much of each workload can
//! actually use additional cores. We model this with Amdahl's law plus a
//! per-extra-core efficiency discount for cache/bandwidth sharing (the
//! mechanism behind the paper's "sublinear energy increase ... because the
//! computer can leverage caching").

/// Describes how a charged chunk of work parallelises.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelProfile {
    /// Fraction of the work (in single-core-seconds) that can run on all
    /// allocated cores; the remainder is inherently serial. In `[0, 1]`.
    pub parallel_fraction: f64,
    /// Multiplicative efficiency of each *additional* core, in `(0, 1]`.
    /// Captures cache and memory-bandwidth sharing: `e = 1.0` is perfect
    /// scaling, `e = 0.8` means the 2nd..nth cores each contribute 80% of a
    /// dedicated core.
    pub extra_core_efficiency: f64,
}

impl ParallelProfile {
    /// Entirely serial work (Bayesian-optimisation model fits, bookkeeping).
    #[inline]
    pub fn serial() -> Self {
        ParallelProfile {
            parallel_fraction: 0.0,
            extra_core_efficiency: 1.0,
        }
    }

    /// Embarrassingly parallel work (bagging folds, per-tree training).
    #[inline]
    pub fn embarrassing() -> Self {
        ParallelProfile {
            parallel_fraction: 0.98,
            extra_core_efficiency: 0.85,
        }
    }

    /// Typical single-model training: inner loops vectorise, outer loop does
    /// not.
    #[inline]
    pub fn model_training() -> Self {
        ParallelProfile {
            parallel_fraction: 0.60,
            extra_core_efficiency: 0.80,
        }
    }

    /// Batch inference: near-perfectly parallel across instances.
    #[inline]
    pub fn batch_inference() -> Self {
        ParallelProfile {
            parallel_fraction: 0.90,
            extra_core_efficiency: 0.85,
        }
    }

    /// A custom profile.
    ///
    /// # Panics
    /// Panics if `parallel_fraction` is outside `[0, 1]` or
    /// `extra_core_efficiency` outside `(0, 1]`.
    pub fn new(parallel_fraction: f64, extra_core_efficiency: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "parallel_fraction must lie in [0, 1]"
        );
        assert!(
            extra_core_efficiency > 0.0 && extra_core_efficiency <= 1.0,
            "extra_core_efficiency must lie in (0, 1]"
        );
        ParallelProfile {
            parallel_fraction,
            extra_core_efficiency,
        }
    }

    /// Effective number of cores the parallel portion runs on when `cores`
    /// are allocated: `1 + (cores - 1) * efficiency`.
    #[inline]
    pub fn effective_cores(&self, cores: usize) -> f64 {
        1.0 + (cores.saturating_sub(1)) as f64 * self.extra_core_efficiency
    }

    /// Wall-clock duration of `work_s` single-core-seconds on `cores`
    /// allocated cores (Amdahl with efficiency-discounted extra cores).
    pub fn duration_s(&self, work_s: f64, cores: usize) -> f64 {
        debug_assert!(work_s >= 0.0);
        let serial = work_s * (1.0 - self.parallel_fraction);
        let parallel = work_s * self.parallel_fraction;
        serial + parallel / self.effective_cores(cores.max(1))
    }

    /// Average number of busy cores over the duration of the work; used for
    /// dynamic-power accounting. Always in `[1, cores]` for positive work.
    pub fn avg_busy_cores(&self, work_s: f64, cores: usize) -> f64 {
        let d = self.duration_s(work_s, cores);
        if d <= 0.0 {
            0.0
        } else {
            (work_s / d).clamp(1.0, cores.max(1) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn serial_work_ignores_cores() {
        let p = ParallelProfile::serial();
        assert_eq!(p.duration_s(10.0, 1), 10.0);
        assert_eq!(p.duration_s(10.0, 28), 10.0);
    }

    #[test]
    fn embarrassing_work_scales_down() {
        let p = ParallelProfile::embarrassing();
        let d1 = p.duration_s(10.0, 1);
        let d8 = p.duration_s(10.0, 8);
        assert!(
            d8 < d1 / 3.0,
            "8 cores should cut duration by >3x, got {d1} -> {d8}"
        );
    }

    #[test]
    fn busy_cores_bounded() {
        let p = ParallelProfile::embarrassing();
        let busy = p.avg_busy_cores(10.0, 8);
        assert!(busy > 1.0 && busy <= 8.0);
        assert_eq!(ParallelProfile::serial().avg_busy_cores(10.0, 8), 1.0);
    }

    #[test]
    #[should_panic(expected = "parallel_fraction")]
    fn invalid_fraction_panics() {
        ParallelProfile::new(1.5, 0.8);
    }

    #[test]
    fn more_cores_never_slower() {
        let mut rng = SplitMix64::seed_from_u64(0xc0e);
        for _ in 0..64 {
            let work = rng.gen_range(0.0..1e4f64);
            let frac = rng.gen_range(0.0..=1.0f64);
            let eff = rng.gen_range(0.01..=1.0f64);
            let c = rng.gen_range(1..28usize);
            let p = ParallelProfile::new(frac, eff);
            assert!(p.duration_s(work, c + 1) <= p.duration_s(work, c) + 1e-9);
        }
    }

    #[test]
    fn duration_at_least_serial_part() {
        let mut rng = SplitMix64::seed_from_u64(0x5e1a);
        for _ in 0..64 {
            let work = rng.gen_range(0.0..1e4f64);
            let frac = rng.gen_range(0.0..=1.0f64);
            let c = rng.gen_range(1..64usize);
            let p = ParallelProfile::new(frac, 0.9);
            assert!(p.duration_s(work, c) >= work * (1.0 - frac) - 1e-9);
        }
    }

    #[test]
    fn busy_cores_within_allocation() {
        let mut rng = SplitMix64::seed_from_u64(0xb5c);
        for _ in 0..64 {
            let work = rng.gen_range(1e-3..1e4f64);
            let frac = rng.gen_range(0.0..=1.0f64);
            let c = rng.gen_range(1..32usize);
            let p = ParallelProfile::new(frac, 0.7);
            let busy = p.avg_busy_cores(work, c);
            assert!(busy >= 1.0 - 1e-9 && busy <= c as f64 + 1e-9);
        }
    }
}
