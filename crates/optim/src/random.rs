//! Random search — the baseline AutoML amortises against (paper §1,
//! Bergstra & Bengio 2012).

use crate::space::{Config, ConfigSpace};
use green_automl_energy::rng::SplitMix64;

/// A deterministic stream of uniformly random configurations.
#[derive(Debug)]
pub struct RandomSearch {
    space: ConfigSpace,
    rng: SplitMix64,
}

impl RandomSearch {
    /// Create a seeded random-search stream over `space`.
    pub fn new(space: ConfigSpace, seed: u64) -> RandomSearch {
        RandomSearch {
            space,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Next random configuration.
    pub fn suggest(&mut self) -> Config {
        self.space.sample(&mut self.rng)
    }

    /// The space being searched.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::new()
            .add_float("x", 0.0, 1.0, false)
            .add_cat("c", 3)
    }

    #[test]
    fn is_deterministic_per_seed() {
        let mut a = RandomSearch::new(space(), 7);
        let mut b = RandomSearch::new(space(), 7);
        for _ in 0..10 {
            assert_eq!(a.suggest(), b.suggest());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomSearch::new(space(), 1);
        let mut b = RandomSearch::new(space(), 2);
        let same = (0..10).filter(|_| a.suggest() == b.suggest()).count();
        assert!(same < 10);
    }

    #[test]
    fn eventually_finds_good_region() {
        // Minimise (x - 0.3)^2: random search must land within 0.05 of the
        // optimum within a few hundred draws.
        let mut rs = RandomSearch::new(ConfigSpace::new().add_float("x", 0.0, 1.0, false), 0);
        let best = (0..300)
            .map(|_| {
                let x = rs.suggest().float(0);
                (x - 0.3).abs()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best < 0.05, "best distance {best}");
    }
}
