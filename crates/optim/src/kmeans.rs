//! k-means++ clustering, used to pick representative datasets for the
//! development-stage tuner (paper §2.5 / Fig. 2: "we cluster the datasets
//! based on metadata features ... For each K-Means centroid, we pick the
//! closest dataset").

use green_automl_energy::rng::SplitMix64;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Run k-means++ with `iters` Lloyd iterations.
///
/// # Panics
/// Panics if `k == 0`, `k > points.len()`, or points have inconsistent
/// dimensionality.
pub fn kmeans(points: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> KMeans {
    assert!(k >= 1, "k must be >= 1");
    assert!(k <= points.len(), "more clusters than points");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "inconsistent dimensions"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids: duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut r = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, &w) in d2.iter().enumerate() {
            if r < w {
                chosen = i;
                break;
            }
            r -= w;
        }
        centroids.push(points[chosen].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iters.max(1) {
        for (i, p) in points.iter().enumerate() {
            assignment[i] = nearest(p, &centroids).0;
        }
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &v) in sums[assignment[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                *c = sum.iter().map(|&s| s / count as f64).collect();
            }
        }
    }
    for (i, p) in points.iter().enumerate() {
        assignment[i] = nearest(p, &centroids).0;
    }
    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeans {
        centroids,
        assignment,
        inertia,
    }
}

/// For each centroid, the index of the closest input point — §2.5's
/// "top-k most representative datasets". Distinct indices are guaranteed
/// (a point already claimed by a nearer centroid is skipped).
pub fn representatives(points: &[Vec<f64>], km: &KMeans) -> Vec<usize> {
    let mut taken = vec![false; points.len()];
    km.centroids
        .iter()
        .map(|c| {
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for (i, p) in points.iter().enumerate() {
                if taken[i] {
                    continue;
                }
                let d = sq_dist(p, c);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            // Fall back to any point if everything is taken (k > n cannot
            // happen by construction).
            if best == usize::MAX {
                best = 0;
            }
            taken[best] = true;
            best
        })
        .collect()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.01;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![10.0 + j, 0.0]);
            pts.push(vec![0.0 + j, 10.0]);
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = three_blobs();
        let km = kmeans(&pts, 3, 20, 0);
        // Points of the same blob share a cluster.
        for base in 0..3 {
            let first = km.assignment[base];
            for i in 0..10 {
                assert_eq!(km.assignment[base + 3 * i], first);
            }
        }
        assert!(km.inertia < 1.0, "inertia {}", km.inertia);
    }

    #[test]
    fn representatives_are_distinct_and_near_centroids() {
        let pts = three_blobs();
        let km = kmeans(&pts, 3, 20, 0);
        let reps = representatives(&pts, &km);
        let set: std::collections::BTreeSet<usize> = reps.iter().copied().collect();
        assert_eq!(set.len(), 3, "representatives must be distinct");
        for (c, &r) in km.centroids.iter().zip(&reps) {
            assert!(sq_dist(&pts[r], c) < 1.0);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let km = kmeans(&pts, 3, 10, 1);
        assert!(km.inertia < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = three_blobs();
        let a = kmeans(&pts, 3, 10, 42);
        let b = kmeans(&pts, 3, 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more clusters than points")]
    fn too_many_clusters_panics() {
        let _ = kmeans(&[vec![0.0]], 2, 5, 0);
    }

    #[test]
    fn every_point_gets_a_valid_cluster() {
        let mut gen = SplitMix64::seed_from_u64(0xc1a5);
        for _ in 0..16 {
            let n = gen.gen_range(3..40usize);
            let k = gen.gen_range(1..3usize);
            let seed = gen.gen_range(0..50u64);
            let mut rng = SplitMix64::seed_from_u64(seed);
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
                .collect();
            let km = kmeans(&pts, k, 8, seed);
            assert_eq!(km.assignment.len(), n);
            assert!(km.assignment.iter().all(|&a| a < k));
            assert!(km.inertia.is_finite() && km.inertia >= 0.0);
            let reps = representatives(&pts, &km);
            assert_eq!(reps.len(), k);
        }
    }
}
