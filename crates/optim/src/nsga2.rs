//! NSGA-II (Deb et al. 2002) — the multi-objective evolutionary engine
//! behind TPOT's genetic programming (paper §2.2).
//!
//! Generic over the genome type: callers supply objective values per
//! individual and variation operators; this module provides fast
//! non-dominated sorting, crowding distance, and environmental selection.

use green_automl_energy::rng::SplitMix64;
use green_automl_energy::OpCounts;

/// `a` Pareto-dominates `b` when it is no worse in every objective and
/// strictly better in at least one (all objectives are maximised).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Fast non-dominated sort: returns fronts as index lists, best front first.
pub fn non_dominated_sort(objectives: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objectives.len();
    let mut dominated_by: Vec<usize> = vec![0; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if dominates(&objectives[i], &objectives[j]) {
                dominates_list[i].push(j);
                dominated_by[j] += 1;
            } else if dominates(&objectives[j], &objectives[i]) {
                dominates_list[j].push(i);
                dominated_by[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_by[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_by[j] -= 1;
                if dominated_by[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of each index within one front (larger = more
/// isolated = preferred).
pub fn crowding_distance(objectives: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let m = objectives.first().map_or(0, Vec::len);
    let mut dist = vec![0.0f64; front.len()];
    if front.len() <= 2 {
        return vec![f64::INFINITY; front.len()];
    }
    for obj in 0..m {
        let mut order: Vec<usize> = (0..front.len()).collect();
        order.sort_by(|&a, &b| {
            objectives[front[a]][obj]
                .partial_cmp(&objectives[front[b]][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = objectives[front[order[0]]][obj];
        let hi = objectives[front[*order.last().unwrap()]][obj];
        let span = (hi - lo).max(1e-12);
        dist[order[0]] = f64::INFINITY;
        dist[*order.last().unwrap()] = f64::INFINITY;
        for w in 1..order.len() - 1 {
            let prev = objectives[front[order[w - 1]]][obj];
            let next = objectives[front[order[w + 1]]][obj];
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// Environmental selection: keep the `keep` best individuals by
/// (front rank, crowding distance). Returns selected indices and the
/// bookkeeping operations to charge.
pub fn select(objectives: &[Vec<f64>], keep: usize) -> (Vec<usize>, OpCounts) {
    let n = objectives.len();
    let fronts = non_dominated_sort(objectives);
    let mut selected = Vec::with_capacity(keep);
    for front in &fronts {
        if selected.len() >= keep {
            break;
        }
        if selected.len() + front.len() <= keep {
            selected.extend_from_slice(front);
        } else {
            let dist = crowding_distance(objectives, front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                dist[b]
                    .partial_cmp(&dist[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for &w in order.iter().take(keep - selected.len()) {
                selected.push(front[w]);
            }
        }
    }
    let m = objectives.first().map_or(1, Vec::len);
    let ops = OpCounts::scalar((n * n * m) as f64 + (n as f64) * (n as f64).log2().max(1.0));
    (selected, ops)
}

/// Binary-tournament parent selection by (rank, crowding).
pub fn tournament_pick(rng: &mut SplitMix64, rank: &[usize], crowd: &[f64]) -> usize {
    let n = rank.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    match rank[a].cmp(&rank[b]) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if crowd[a] >= crowd[b] {
                a
            } else {
                b
            }
        }
    }
}

/// Per-individual (front rank, crowding distance) for tournament selection.
pub fn rank_and_crowd(objectives: &[Vec<f64>]) -> (Vec<usize>, Vec<f64>) {
    let fronts = non_dominated_sort(objectives);
    let n = objectives.len();
    let mut rank = vec![0usize; n];
    let mut crowd = vec![0.0f64; n];
    for (r, front) in fronts.iter().enumerate() {
        let dist = crowding_distance(objectives, front);
        for (w, &i) in front.iter().enumerate() {
            rank[i] = r;
            crowd[i] = dist[w];
        }
    }
    (rank, crowd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_is_strict() {
        assert!(dominates(&[1.0, 1.0], &[0.0, 0.0]));
        assert!(dominates(&[1.0, 0.0], &[0.0, 0.0]));
        assert!(!dominates(&[1.0, 0.0], &[0.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
    }

    #[test]
    fn sort_layers_fronts_correctly() {
        let objs = vec![
            vec![1.0, 1.0], // front 0
            vec![0.5, 0.5], // dominated by 0
            vec![0.9, 1.1], // front 0 (trade-off with 0)
            vec![0.1, 0.1], // dominated by everything
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts[0], vec![0, 2]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn boundary_points_get_infinite_crowding() {
        let objs = vec![vec![0.0, 1.0], vec![0.5, 0.5], vec![1.0, 0.0]];
        let front: Vec<usize> = vec![0, 1, 2];
        let d = crowding_distance(&objs, &front);
        assert!(d[0].is_infinite());
        assert!(d[2].is_infinite());
        assert!(d[1].is_finite());
    }

    #[test]
    fn select_prefers_first_front_then_spread() {
        let objs = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.55, 0.55], // front 0, middle
            vec![0.5, 0.5],   // dominated by 2
        ];
        let (kept, ops) = select(&objs, 3);
        assert_eq!(kept.len(), 3);
        assert!(kept.contains(&0) && kept.contains(&1) && kept.contains(&2));
        assert!(ops.scalar_flops > 0.0);
    }

    #[test]
    fn tournament_prefers_better_rank() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let rank = vec![0, 3];
        let crowd = vec![1.0, 1.0];
        let wins_0 = (0..200)
            .filter(|_| tournament_pick(&mut rng, &rank, &crowd) == 0)
            .count();
        // Index 0 wins every mixed tournament and half the self-pairings.
        assert!(wins_0 > 120, "index 0 won only {wins_0}/200");
    }

    #[test]
    fn rank_and_crowd_cover_population() {
        let objs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let (rank, crowd) = rank_and_crowd(&objs);
        assert_eq!(rank, vec![2, 1, 0]); // single objective: best value = rank 0
        assert_eq!(crowd.len(), 3);
    }

    #[test]
    fn evolution_improves_a_toy_objective() {
        // Maximise (x, -x^2 residual): drive a population toward x = 1.
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut pop: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..0.2)).collect();
        for _ in 0..30 {
            let objs: Vec<Vec<f64>> = pop.iter().map(|&x| vec![x, -(x - 1.0).abs()]).collect();
            let (rank, crowd) = rank_and_crowd(&objs);
            let mut children: Vec<f64> = Vec::with_capacity(pop.len());
            for _ in 0..pop.len() {
                let p = tournament_pick(&mut rng, &rank, &crowd);
                let mut child = pop[p] + rng.gen_range(-0.05..0.1);
                child = child.clamp(0.0, 1.0);
                children.push(child);
            }
            let mut all = pop.clone();
            all.extend(children);
            let all_objs: Vec<Vec<f64>> = all.iter().map(|&x| vec![x, -(x - 1.0).abs()]).collect();
            let (kept, _) = select(&all_objs, pop.len());
            pop = kept.into_iter().map(|i| all[i]).collect();
        }
        let best = pop.iter().copied().fold(0.0f64, f64::max);
        assert!(best > 0.8, "evolution stalled at {best}");
    }
}
