//! Typed hyperparameter configuration spaces.
//!
//! A [`ConfigSpace`] is an ordered list of named parameters; a [`Config`] is
//! one concrete assignment (stored as `f64`s in natural units — integers and
//! categorical codes are rounded on access). Spaces can sample uniformly,
//! normalise configs into the unit hypercube for surrogate models, and
//! mutate single parameters for evolutionary search.

use green_automl_energy::rng::SplitMix64;

/// The type and range of one hyperparameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamKind {
    /// Continuous value in `[lo, hi]`; `log` samples log-uniformly.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Log-uniform sampling/normalisation.
        log: bool,
    },
    /// Integer value in `[lo, hi]`; `log` samples log-uniformly.
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
        /// Log-uniform sampling/normalisation.
        log: bool,
    },
    /// Categorical with `n` choices, stored as codes `0..n`.
    Cat {
        /// Number of choices.
        n: usize,
    },
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (unique within a space).
    pub name: String,
    /// Type and range.
    pub kind: ParamKind,
}

/// An ordered collection of parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigSpace {
    params: Vec<Param>,
}

/// One concrete assignment of every parameter in a space.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    values: Vec<f64>,
}

impl ConfigSpace {
    /// An empty space.
    pub fn new() -> ConfigSpace {
        ConfigSpace::default()
    }

    /// Add a float parameter.
    ///
    /// # Panics
    /// Panics on an empty or inverted range, a duplicate name, or `log` with
    /// a non-positive lower bound.
    #[must_use]
    pub fn add_float(mut self, name: &str, lo: f64, hi: f64, log: bool) -> Self {
        assert!(lo < hi, "empty range for '{name}'");
        assert!(!log || lo > 0.0, "log-scaled '{name}' needs lo > 0");
        self.push(name, ParamKind::Float { lo, hi, log });
        self
    }

    /// Add an integer parameter.
    ///
    /// # Panics
    /// Panics on an inverted range, a duplicate name, or `log` with a
    /// non-positive lower bound.
    #[must_use]
    pub fn add_int(mut self, name: &str, lo: i64, hi: i64, log: bool) -> Self {
        assert!(lo <= hi, "empty range for '{name}'");
        assert!(!log || lo > 0, "log-scaled '{name}' needs lo > 0");
        self.push(name, ParamKind::Int { lo, hi, log });
        self
    }

    /// Add a categorical parameter with `n` choices.
    ///
    /// # Panics
    /// Panics if `n == 0` or the name is duplicated.
    #[must_use]
    pub fn add_cat(mut self, name: &str, n: usize) -> Self {
        assert!(n >= 1, "categorical '{name}' needs at least one choice");
        self.push(name, ParamKind::Cat { n });
        self
    }

    fn push(&mut self, name: &str, kind: ParamKind) {
        assert!(
            self.index_of(name).is_none(),
            "duplicate parameter '{name}'"
        );
        self.params.push(Param {
            name: name.to_string(),
            kind,
        });
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` if the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The parameters in order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Sample a uniform random configuration.
    pub fn sample(&self, rng: &mut SplitMix64) -> Config {
        let values = self
            .params
            .iter()
            .map(|p| match p.kind {
                ParamKind::Float { lo, hi, log } => {
                    if log {
                        (rng.gen_range(lo.ln()..hi.ln())).exp()
                    } else {
                        rng.gen_range(lo..hi)
                    }
                }
                ParamKind::Int { lo, hi, log } => {
                    if log {
                        (rng.gen_range((lo as f64).ln()..=(hi as f64).ln()))
                            .exp()
                            .round()
                            .clamp(lo as f64, hi as f64)
                    } else {
                        rng.gen_range(lo..=hi) as f64
                    }
                }
                ParamKind::Cat { n } => rng.gen_range(0..n) as f64,
            })
            .collect();
        Config { values }
    }

    /// Map a config into the unit hypercube (surrogate-model features).
    pub fn normalize(&self, c: &Config) -> Vec<f64> {
        assert_eq!(c.values.len(), self.params.len(), "config/space mismatch");
        self.params
            .iter()
            .zip(&c.values)
            .map(|(p, &v)| match p.kind {
                ParamKind::Float { lo, hi, log } => {
                    if log {
                        (v.ln() - lo.ln()) / (hi.ln() - lo.ln())
                    } else {
                        (v - lo) / (hi - lo)
                    }
                }
                ParamKind::Int { lo, hi, log } => {
                    if lo == hi {
                        0.5
                    } else if log {
                        (v.ln() - (lo as f64).ln()) / ((hi as f64).ln() - (lo as f64).ln())
                    } else {
                        (v - lo as f64) / (hi - lo) as f64
                    }
                }
                ParamKind::Cat { n } => {
                    if n <= 1 {
                        0.5
                    } else {
                        v / (n - 1) as f64
                    }
                }
            })
            .collect()
    }

    /// Re-sample one random parameter of `c` (evolutionary mutation).
    pub fn mutate_one(&self, c: &Config, rng: &mut SplitMix64) -> Config {
        assert!(!self.is_empty(), "cannot mutate in an empty space");
        let i = rng.gen_range(0..self.params.len());
        let fresh = self.sample(rng);
        let mut values = c.values.clone();
        values[i] = fresh.values[i];
        Config { values }
    }

    /// Uniform crossover of two configs.
    pub fn crossover(&self, a: &Config, b: &Config, rng: &mut SplitMix64) -> Config {
        let values = a
            .values
            .iter()
            .zip(&b.values)
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect();
        Config { values }
    }
}

impl Config {
    /// Build from raw values (mostly for tests and defaults).
    pub fn from_values(values: Vec<f64>) -> Config {
        Config { values }
    }

    /// Raw values in parameter order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Float value of parameter `i`.
    pub fn float(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Integer value of parameter `i` (rounded).
    pub fn int(&self, i: usize) -> i64 {
        self.values[i].round() as i64
    }

    /// Categorical code of parameter `i`.
    pub fn cat(&self, i: usize) -> usize {
        self.values[i].round().max(0.0) as usize
    }

    /// Replace the value of parameter `i`.
    pub fn set(&mut self, i: usize, v: f64) {
        self.values[i] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::new()
            .add_float("lr", 1e-4, 1.0, true)
            .add_int("depth", 1, 20, false)
            .add_cat("model", 5)
    }

    #[test]
    fn samples_respect_ranges() {
        let s = space();
        let mut rng = SplitMix64::seed_from_u64(0);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!((1e-4..=1.0).contains(&c.float(0)));
            assert!((1..=20).contains(&c.int(1)));
            assert!(c.cat(2) < 5);
        }
    }

    #[test]
    fn log_sampling_covers_low_decades() {
        let s = ConfigSpace::new().add_float("lr", 1e-4, 1.0, true);
        let mut rng = SplitMix64::seed_from_u64(1);
        let below_01: usize = (0..500)
            .filter(|_| s.sample(&mut rng).float(0) < 0.01)
            .count();
        // Log-uniform: half the mass below 1e-2. Linear would give ~1%.
        assert!(below_01 > 150, "only {below_01}/500 below 0.01");
    }

    #[test]
    fn normalize_maps_to_unit_cube() {
        let s = space();
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..100 {
            let c = s.sample(&mut rng);
            for v in s.normalize(&c) {
                assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn mutate_changes_at_most_one_param() {
        let s = space();
        let mut rng = SplitMix64::seed_from_u64(3);
        let c = s.sample(&mut rng);
        let m = s.mutate_one(&c, &mut rng);
        let diffs = c
            .values()
            .iter()
            .zip(m.values())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diffs <= 1);
    }

    #[test]
    fn crossover_takes_values_from_parents() {
        let s = space();
        let mut rng = SplitMix64::seed_from_u64(4);
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        let child = s.crossover(&a, &b, &mut rng);
        for i in 0..s.len() {
            let v = child.values()[i];
            assert!(v == a.values()[i] || v == b.values()[i]);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let _ = ConfigSpace::new().add_cat("x", 2).add_cat("x", 3);
    }

    #[test]
    #[should_panic(expected = "needs lo > 0")]
    fn log_with_zero_lower_bound_panics() {
        let _ = ConfigSpace::new().add_float("lr", 0.0, 1.0, true);
    }

    #[test]
    fn normalization_is_monotone_for_floats() {
        let mut rng = SplitMix64::seed_from_u64(0x11011);
        for _ in 0..64 {
            let a = rng.gen_range(0.01f64..10.0);
            let b = rng.gen_range(0.01f64..10.0);
            let s = ConfigSpace::new().add_float("x", 0.001, 100.0, false);
            let ca = Config::from_values(vec![a]);
            let cb = Config::from_values(vec![b]);
            let (na, nb) = (s.normalize(&ca)[0], s.normalize(&cb)[0]);
            if a < b {
                assert!(na < nb);
            }
            if a > b {
                assert!(na > nb);
            }
        }
    }
}
