//! Grid search — the other naive baseline from the paper's §1 framing.

use crate::space::{Config, ConfigSpace, ParamKind};

/// Enumerate a full factorial grid with `resolution` points per continuous
/// axis (categoricals and small integer ranges enumerate exactly).
///
/// Returns configurations in row-major order of the grid. The size grows
/// exponentially with dimensionality — which is precisely why the paper's
/// systems replace it.
///
/// # Panics
/// Panics if `resolution < 2` or the space is empty.
pub fn grid(space: &ConfigSpace, resolution: usize) -> Vec<Config> {
    assert!(resolution >= 2, "need at least two points per axis");
    assert!(!space.is_empty(), "cannot grid an empty space");
    let axes: Vec<Vec<f64>> = space
        .params()
        .iter()
        .map(|p| match p.kind {
            ParamKind::Float { lo, hi, log } => (0..resolution)
                .map(|i| {
                    let t = i as f64 / (resolution - 1) as f64;
                    if log {
                        (lo.ln() + t * (hi.ln() - lo.ln())).exp()
                    } else {
                        lo + t * (hi - lo)
                    }
                })
                .collect(),
            ParamKind::Int { lo, hi, .. } => {
                let span = (hi - lo) as usize + 1;
                if span <= resolution {
                    (lo..=hi).map(|v| v as f64).collect()
                } else {
                    (0..resolution)
                        .map(|i| {
                            let t = i as f64 / (resolution - 1) as f64;
                            (lo as f64 + t * (hi - lo) as f64).round()
                        })
                        .collect()
                }
            }
            ParamKind::Cat { n } => (0..n).map(|v| v as f64).collect(),
        })
        .collect();

    let total: usize = axes.iter().map(Vec::len).product();
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; axes.len()];
    loop {
        out.push(Config::from_values(
            idx.iter().zip(&axes).map(|(&i, ax)| ax[i]).collect(),
        ));
        // Odometer increment.
        let mut d = axes.len();
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < axes[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_size_is_product_of_axes() {
        let s = ConfigSpace::new()
            .add_float("x", 0.0, 1.0, false)
            .add_cat("c", 3);
        let g = grid(&s, 4);
        assert_eq!(g.len(), 4 * 3);
    }

    #[test]
    fn grid_covers_endpoints() {
        let s = ConfigSpace::new().add_float("x", 2.0, 10.0, false);
        let g = grid(&s, 5);
        assert_eq!(g.first().unwrap().float(0), 2.0);
        assert_eq!(g.last().unwrap().float(0), 10.0);
    }

    #[test]
    fn small_int_ranges_enumerate_exactly() {
        let s = ConfigSpace::new().add_int("d", 1, 3, false);
        let g = grid(&s, 10);
        let vals: Vec<i64> = g.iter().map(|c| c.int(0)).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn log_axes_space_points_geometrically() {
        let s = ConfigSpace::new().add_float("lr", 1e-4, 1.0, true);
        let g = grid(&s, 5);
        let vals: Vec<f64> = g.iter().map(|c| c.float(0)).collect();
        // Consecutive ratios equal for a geometric progression.
        let r1 = vals[1] / vals[0];
        let r2 = vals[2] / vals[1];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn grid_is_unique() {
        let s = ConfigSpace::new().add_int("a", 0, 2, false).add_cat("b", 2);
        let g = grid(&s, 3);
        let set: std::collections::BTreeSet<String> =
            g.iter().map(|c| format!("{:?}", c.values())).collect();
        assert_eq!(set.len(), g.len());
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn tiny_resolution_panics() {
        let s = ConfigSpace::new().add_float("x", 0.0, 1.0, false);
        let _ = grid(&s, 1);
    }
}
