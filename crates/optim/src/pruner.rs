//! Median pruning — the early-termination rule of the §2.5 development-
//! stage tuner ("for poor-performing AutoML parameters, evaluating a few
//! datasets is sufficient to detect that the parameters are not performing
//! well. To leverage this insight, we use median pruning").

/// Tracks intermediate values of completed trials and prunes a running
/// trial whose intermediate value falls below the median of completed
/// trials at the same step.
#[derive(Debug, Clone, Default)]
pub struct MedianPruner {
    /// `history[step]` = intermediate values of completed trials at `step`.
    history: Vec<Vec<f64>>,
    /// Trials must survive this many steps before pruning applies.
    pub warmup_steps: usize,
    /// At least this many completed trials are needed before pruning.
    pub min_trials: usize,
}

impl MedianPruner {
    /// A pruner with the given warm-up (steps exempt from pruning) and
    /// minimum completed-trial count.
    pub fn new(warmup_steps: usize, min_trials: usize) -> MedianPruner {
        MedianPruner {
            history: Vec::new(),
            warmup_steps,
            min_trials,
        }
    }

    /// Should a running trial with `value` at `step` be pruned?
    /// (Higher values are better.)
    pub fn should_prune(&self, step: usize, value: f64) -> bool {
        if step < self.warmup_steps {
            return false;
        }
        let Some(values) = self.history.get(step) else {
            return false;
        };
        if values.len() < self.min_trials {
            return false;
        }
        value < median(values)
    }

    /// Record the intermediate trajectory of a *completed* trial
    /// (`trajectory[step]` = value at that step).
    pub fn record_completed(&mut self, trajectory: &[f64]) {
        for (step, &v) in trajectory.iter().enumerate() {
            if self.history.len() <= step {
                self.history.resize(step + 1, Vec::new());
            }
            self.history[step].push(v);
        }
    }

    /// Completed trials recorded at step 0.
    pub fn n_completed(&self) -> usize {
        self.history.first().map_or(0, Vec::len)
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pruning_without_history() {
        let p = MedianPruner::new(0, 1);
        assert!(!p.should_prune(0, -100.0));
    }

    #[test]
    fn prunes_below_median() {
        let mut p = MedianPruner::new(0, 2);
        p.record_completed(&[0.5, 0.6]);
        p.record_completed(&[0.7, 0.8]);
        p.record_completed(&[0.9, 0.95]);
        // Median at step 0 is 0.7.
        assert!(p.should_prune(0, 0.5));
        assert!(!p.should_prune(0, 0.8));
        // Median at step 1 is 0.8.
        assert!(p.should_prune(1, 0.7));
    }

    #[test]
    fn warmup_steps_are_exempt() {
        let mut p = MedianPruner::new(2, 1);
        p.record_completed(&[0.9, 0.9, 0.9]);
        assert!(!p.should_prune(0, 0.0));
        assert!(!p.should_prune(1, 0.0));
        assert!(p.should_prune(2, 0.0));
    }

    #[test]
    fn min_trials_gate() {
        let mut p = MedianPruner::new(0, 3);
        p.record_completed(&[0.9]);
        p.record_completed(&[0.9]);
        assert!(!p.should_prune(0, 0.0), "only two completed trials");
        p.record_completed(&[0.9]);
        assert!(p.should_prune(0, 0.0));
    }

    #[test]
    fn median_handles_even_counts() {
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn pruning_saves_most_bad_trials_in_a_sweep() {
        // Simulate 20 trials whose quality is known: bad trials should be
        // pruned at step 0 once enough good ones completed.
        let mut p = MedianPruner::new(0, 5);
        let mut pruned = 0;
        for t in 0..20 {
            let quality = if t % 2 == 0 { 0.9 } else { 0.3 };
            if p.should_prune(0, quality) {
                pruned += 1;
                continue;
            }
            p.record_completed(&[quality, quality]);
        }
        assert!(pruned >= 6, "only {pruned} trials pruned");
    }
}
