//! Successive halving — CAML's fidelity mechanism (paper §2.2: it
//! "leverages successive halving to prune ML pipelines that violate
//! constraints as early as possible").

/// The fidelity schedule of a successive-halving run: at each rung a
/// fraction of survivors is evaluated at a growing budget fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `(survivor count, fidelity fraction)` per rung, in execution order.
    pub rungs: Vec<(usize, f64)>,
}

/// Build the halving schedule for `n` starting configurations with reduction
/// factor `eta` and a final fidelity of 1.0.
///
/// # Panics
/// Panics if `n == 0` or `eta < 2`.
pub fn schedule(n: usize, eta: usize) -> Schedule {
    assert!(n >= 1, "need at least one configuration");
    assert!(eta >= 2, "eta must be at least 2");
    let mut rungs = Vec::new();
    let mut survivors = n;
    let mut rung_count = 0usize;
    let mut s = n;
    while s > 1 {
        s /= eta;
        rung_count += 1;
    }
    let denom = eta.pow(rung_count as u32) as f64;
    let mut fidelity = 1.0 / denom;
    loop {
        rungs.push((survivors, fidelity.min(1.0)));
        if survivors == 1 || fidelity >= 1.0 {
            break;
        }
        survivors = (survivors / eta).max(1);
        fidelity *= eta as f64;
    }
    Schedule { rungs }
}

impl Schedule {
    /// Total cost in full-fidelity-evaluation equivalents.
    pub fn total_cost(&self) -> f64 {
        self.rungs.iter().map(|&(k, f)| k as f64 * f).sum()
    }
}

/// Run successive halving: `eval(index, fidelity) -> score` is called for
/// each survivor at each rung; survivors are the top scorers of the previous
/// rung. Returns indices ranked best-first at the final rung.
pub fn run<F: FnMut(usize, f64) -> f64>(n: usize, eta: usize, mut eval: F) -> Vec<usize> {
    let sched = schedule(n, eta);
    let mut alive: Vec<usize> = (0..n).collect();
    for (r, &(_, fidelity)) in sched.rungs.iter().enumerate() {
        let mut scored: Vec<(usize, f64)> = alive.iter().map(|&i| (i, eval(i, fidelity))).collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        // Survivors advance to the next rung; the final rung keeps its
        // ranking so callers get a best-first ordering.
        let keep = sched
            .rungs
            .get(r + 1)
            .map_or(scored.len(), |&(next_k, _)| next_k);
        alive = scored.into_iter().take(keep).map(|(i, _)| i).collect();
    }
    alive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shrinks_survivors_and_grows_fidelity() {
        let s = schedule(27, 3);
        assert_eq!(
            s.rungs,
            vec![(27, 1.0 / 27.0), (9, 1.0 / 9.0), (3, 1.0 / 3.0), (1, 1.0)]
        );
    }

    #[test]
    fn halving_is_cheaper_than_full_evaluation() {
        let s = schedule(27, 3);
        // Full fidelity on all 27 would cost 27.0; halving costs 4.
        assert!(s.total_cost() < 27.0 / 4.0, "cost {}", s.total_cost());
    }

    #[test]
    fn single_config_degenerates() {
        let s = schedule(1, 2);
        assert_eq!(s.rungs, vec![(1, 1.0)]);
    }

    #[test]
    fn run_finds_the_best_arm_when_scores_are_consistent() {
        // Arm quality i/10, fidelity just adds no noise here.
        let ranking = run(10, 2, |i, _f| i as f64 / 10.0);
        assert_eq!(ranking[0], 9);
    }

    #[test]
    fn run_prunes_low_arms_early() {
        let mut evals_of_worst = 0usize;
        let _ = run(8, 2, |i, _f| {
            if i == 0 {
                evals_of_worst += 1;
            }
            i as f64
        });
        // The worst arm is evaluated at the first rung only.
        assert_eq!(evals_of_worst, 1);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn eta_one_panics() {
        let _ = schedule(8, 1);
    }
}
