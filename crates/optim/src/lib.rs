//! # green-automl-optim
//!
//! The search substrate underneath the simulated AutoML systems:
//!
//! * [`space`] — typed hyperparameter configuration spaces (float / int /
//!   categorical, optionally log-scaled);
//! * [`random`] and [`grid`] — the naive baselines the paper's §1 cites as
//!   the amortisation yardstick;
//! * [`bo`] — Bayesian optimisation with a random-forest surrogate and
//!   expected improvement (the SMAC recipe behind AutoSklearn and CAML);
//! * [`nsga2`] — the NSGA-II evolutionary loop behind TPOT;
//! * [`sh`] — successive halving (CAML's fidelity mechanism);
//! * [`pruner`] — median pruning (used by the §2.5 development-stage tuner);
//! * [`kmeans`] — k-means++ clustering (representative-dataset selection).
//!
//! Search algorithms report the operations their own bookkeeping costs
//! (surrogate fits, sorting fronts) as [`green_automl_energy::OpCounts`] so
//! callers can charge them to a meter — in AutoML the optimiser itself is
//! part of the measured system.

pub mod bo;
pub mod grid;
pub mod kmeans;
pub mod nsga2;
pub mod pruner;
pub mod random;
pub mod sh;
pub mod space;

pub use bo::BayesOpt;
pub use kmeans::{kmeans, representatives};
pub use pruner::MedianPruner;
pub use space::{Config, ConfigSpace, ParamKind};
