//! Bayesian optimisation with a random-forest surrogate and expected
//! improvement — the SMAC recipe used by AutoSklearn and CAML (paper §2.3:
//! "BO (random forest)").
//!
//! The optimiser *maximises* the observed score. Its own bookkeeping
//! (surrogate fitting, acquisition evaluation) is returned as
//! [`OpCounts`] from [`BayesOpt::suggest`] so the caller can charge it —
//! ASKL's surrogate work is part of the execution energy the paper
//! measures.

use crate::space::{Config, ConfigSpace};
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::OpCounts;

/// Bayesian optimiser over a [`ConfigSpace`].
#[derive(Debug)]
pub struct BayesOpt {
    space: ConfigSpace,
    /// `(config, normalised features, score)` per observation.
    history: Vec<(Config, Vec<f64>, f64)>,
    rng: SplitMix64,
    /// Random evaluations before the surrogate takes over.
    pub n_init: usize,
    /// Candidate pool size per suggestion.
    pub n_candidates: usize,
    /// Surrogate forest size.
    pub n_trees: usize,
}

impl BayesOpt {
    /// New optimiser with SMAC-like defaults (10 random initial designs).
    pub fn new(space: ConfigSpace, seed: u64) -> BayesOpt {
        BayesOpt {
            space,
            history: Vec::new(),
            rng: SplitMix64::seed_from_u64(seed ^ 0xb0),
            n_init: 10,
            n_candidates: 48,
            n_trees: 16,
        }
    }

    /// Observations so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// `true` before any observation.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The space being optimised.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// Record an evaluated configuration.
    pub fn observe(&mut self, config: Config, score: f64) {
        assert!(score.is_finite(), "scores must be finite");
        let feats = self.space.normalize(&config);
        self.history.push((config, feats, score));
    }

    /// Best observation so far.
    pub fn best(&self) -> Option<(&Config, f64)> {
        self.history
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _, s)| (c, *s))
    }

    /// Propose the next configuration, returning it together with the
    /// operations the optimiser itself spent (to be charged by the caller).
    pub fn suggest(&mut self) -> (Config, OpCounts) {
        if self.history.len() < self.n_init {
            // Random initial design: negligible bookkeeping.
            return (self.space.sample(&mut self.rng), OpCounts::scalar(1e3));
        }
        let d = self.space.len().max(1);
        let n = self.history.len();

        // Fit the surrogate forest on bootstrap samples.
        let xs: Vec<&[f64]> = self.history.iter().map(|(_, f, _)| f.as_slice()).collect();
        let ys: Vec<f64> = self.history.iter().map(|(_, _, s)| *s).collect();
        let forest: Vec<RegTree> = (0..self.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..n).map(|_| self.rng.gen_range(0..n)).collect();
                RegTree::fit(&xs, &ys, &idx, 0, 6, &mut self.rng)
            })
            .collect();

        let best_y = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Candidate pool: random samples plus mutations of the incumbents.
        let mut candidates: Vec<Config> = Vec::with_capacity(self.n_candidates);
        let top = self.best().map(|(c, _)| c.clone());
        for i in 0..self.n_candidates {
            let c = match (&top, i % 3) {
                (Some(t), 0) => self.space.mutate_one(t, &mut self.rng),
                _ => self.space.sample(&mut self.rng),
            };
            candidates.push(c);
        }

        let mut best_cand = 0usize;
        let mut best_ei = f64::NEG_INFINITY;
        for (i, cand) in candidates.iter().enumerate() {
            let feats = self.space.normalize(cand);
            let preds: Vec<f64> = forest.iter().map(|t| t.predict(&feats)).collect();
            let mu = preds.iter().sum::<f64>() / preds.len() as f64;
            let var = preds.iter().map(|p| (p - mu).powi(2)).sum::<f64>() / preds.len() as f64;
            let sigma = var.sqrt().max(1e-9);
            let ei = expected_improvement(mu, sigma, best_y);
            if ei > best_ei {
                best_ei = ei;
                best_cand = i;
            }
        }

        // Bookkeeping cost: forest fit + candidate scoring.
        let fit_ops = (self.n_trees * n * d) as f64 * (n as f64).log2().max(1.0) * 4.0;
        let score_ops = (self.n_candidates * self.n_trees * 8 * d) as f64;
        (
            candidates.swap_remove(best_cand),
            OpCounts::scalar(fit_ops + score_ops),
        )
    }
}

/// Expected improvement for maximisation.
fn expected_improvement(mu: f64, sigma: f64, best: f64) -> f64 {
    let z = (mu - best) / sigma;
    (mu - best) * normal_cdf(z) + sigma * normal_pdf(z)
}

fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Abramowitz–Stegun style erf-based CDF approximation.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Maximum error ~1.5e-7 (A&S 7.1.26).
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A small extra-trees-style regression tree over normalised features.
#[derive(Debug)]
enum RegTree {
    Leaf(f64),
    Split {
        dim: usize,
        thr: f64,
        left: Box<RegTree>,
        right: Box<RegTree>,
    },
}

impl RegTree {
    fn fit(
        xs: &[&[f64]],
        ys: &[f64],
        idx: &[usize],
        depth: usize,
        max_depth: usize,
        rng: &mut SplitMix64,
    ) -> RegTree {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len().max(1) as f64;
        if depth >= max_depth || idx.len() < 4 {
            return RegTree::Leaf(mean);
        }
        let d = xs[idx[0]].len();
        // Try a few random (dim, threshold) splits, keep the best by
        // variance reduction.
        let mut best: Option<(usize, f64, f64)> = None;
        for _ in 0..4 {
            let dim = rng.gen_range(0..d);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in idx {
                lo = lo.min(xs[i][dim]);
                hi = hi.max(xs[i][dim]);
            }
            if hi <= lo {
                continue;
            }
            let thr = rng.gen_range(lo..hi);
            let (mut sl, mut nl, mut sr, mut nr) = (0.0, 0.0, 0.0, 0.0);
            for &i in idx {
                if xs[i][dim] <= thr {
                    sl += ys[i];
                    nl += 1.0;
                } else {
                    sr += ys[i];
                    nr += 1.0;
                }
            }
            if nl < 1.0 || nr < 1.0 {
                continue;
            }
            // Negative weighted SSE proxy: maximise between-group spread.
            let gain = nl * (sl / nl - mean).powi(2) + nr * (sr / nr - mean).powi(2);
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((dim, thr, gain));
            }
        }
        let Some((dim, thr, _)) = best else {
            return RegTree::Leaf(mean);
        };
        let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| xs[i][dim] <= thr);
        if li.is_empty() || ri.is_empty() {
            return RegTree::Leaf(mean);
        }
        RegTree::Split {
            dim,
            thr,
            left: Box::new(RegTree::fit(xs, ys, &li, depth + 1, max_depth, rng)),
            right: Box::new(RegTree::fit(xs, ys, &ri, depth + 1, max_depth, rng)),
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            RegTree::Leaf(v) => *v,
            RegTree::Split {
                dim,
                thr,
                left,
                right,
            } => {
                if x[*dim] <= *thr {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSearch;

    /// A bumpy 2-D test function with maximum 1.0 at (0.3, 0.7).
    fn objective(c: &Config) -> f64 {
        let (x, y) = (c.float(0), c.float(1));
        let d2 = (x - 0.3).powi(2) + (y - 0.7).powi(2);
        (-4.0 * d2).exp() + 0.05 * (8.0 * x).sin()
    }

    fn space() -> ConfigSpace {
        ConfigSpace::new()
            .add_float("x", 0.0, 1.0, false)
            .add_float("y", 0.0, 1.0, false)
    }

    fn run_bo(budget: usize, seed: u64) -> f64 {
        let mut bo = BayesOpt::new(space(), seed);
        for _ in 0..budget {
            let (c, _) = bo.suggest();
            let s = objective(&c);
            bo.observe(c, s);
        }
        bo.best().unwrap().1
    }

    fn run_random(budget: usize, seed: u64) -> f64 {
        let mut rs = RandomSearch::new(space(), seed);
        (0..budget)
            .map(|_| objective(&rs.suggest()))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn bo_beats_random_on_average() {
        let budget = 60;
        let bo: f64 = (0..8).map(|s| run_bo(budget, s)).sum::<f64>() / 8.0;
        let rnd: f64 = (0..8).map(|s| run_random(budget, s)).sum::<f64>() / 8.0;
        assert!(
            bo >= rnd - 0.005,
            "BO mean {bo:.4} should not trail random {rnd:.4}"
        );
        assert!(bo > 0.9, "BO should get close to the optimum, got {bo:.4}");
    }

    #[test]
    fn initial_design_is_random_and_cheap() {
        let mut bo = BayesOpt::new(space(), 0);
        let (_, ops) = bo.suggest();
        assert!(ops.scalar_flops < 1e4, "init suggestions must be cheap");
    }

    #[test]
    fn surrogate_phase_costs_more_than_init() {
        let mut bo = BayesOpt::new(space(), 0);
        for _ in 0..12 {
            let (c, _) = bo.suggest();
            let s = objective(&c);
            bo.observe(c, s);
        }
        let (_, ops) = bo.suggest();
        assert!(
            ops.scalar_flops > 1e4,
            "surrogate bookkeeping should be charged, got {}",
            ops.scalar_flops
        );
    }

    #[test]
    fn best_tracks_maximum() {
        let mut bo = BayesOpt::new(space(), 0);
        bo.observe(Config::from_values(vec![0.1, 0.1]), 0.2);
        bo.observe(Config::from_values(vec![0.3, 0.7]), 0.9);
        bo.observe(Config::from_values(vec![0.9, 0.9]), 0.1);
        let (c, s) = bo.best().unwrap();
        assert_eq!(s, 0.9);
        assert_eq!(c.values(), &[0.3, 0.7]);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run_bo(30, 5).to_bits(), run_bo(30, 5).to_bits());
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_scores_rejected() {
        let mut bo = BayesOpt::new(space(), 0);
        bo.observe(Config::from_values(vec![0.0, 0.0]), f64::NAN);
    }
}
