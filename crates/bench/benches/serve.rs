#![allow(missing_docs)]
//! Criterion-style target replaying the serving experiment at smoke scale.
green_automl_bench::artifact_bench!("serve");
