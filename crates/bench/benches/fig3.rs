#![allow(missing_docs)]
//! Criterion target regenerating the paper's fig3 at smoke scale.
green_automl_bench::artifact_bench!("fig3");
