#![allow(missing_docs)]
//! Criterion target regenerating the paper's table7 at smoke scale.
green_automl_bench::artifact_bench!("table7");
