#![allow(missing_docs)]
//! The evaluation-cache perf baseline: times the multi-budget benchmark
//! grid cold (memoisation off), fresh (memoisation on, cache starts
//! empty), and warm (cache pre-populated by an identical pass), serial and
//! parallel, and writes the machine-readable `BENCH_grid.json` at the
//! workspace root — the committed perf-trajectory point CI compares
//! against (see `.github/workflows/ci.yml`).
//!
//! The grid's nested budgets repeat each system's deterministic trial
//! prefix, so the fresh pass already collapses real work; the warm pass is
//! the steady state a resumed or repeated protocol run sees. Results are
//! byte-identical in every mode — `tests/evalcache_equivalence.rs` proves
//! it — so this benchmark is purely a wall-clock story.

use green_automl_core::benchmark::{run_once_in, BenchmarkOptions};
use green_automl_core::{run_grid_checked, EvalCache};
use green_automl_dataset::{amlb39, DatasetMeta, MaterializeOptions};
use green_automl_systems::{all_systems, AutoMlSystem, FitContext, RunSpec};
use std::time::Instant;

const SEED: u64 = 0;
const BUDGETS: [f64; 3] = [10.0, 30.0, 60.0];
const N_DATASETS: usize = 2;
const RUNS: usize = 1;

fn opts(parallelism: usize, eval_cache: bool) -> BenchmarkOptions {
    BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: RUNS,
        test_frac: 0.34,
        parallelism,
        eval_cache,
    }
}

/// Wall-clock of one full grid, plus its cache counters.
fn time_grid(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    parallelism: usize,
    eval_cache: bool,
) -> (f64, u64, u64) {
    let spec = RunSpec::single_core(BUDGETS[0], SEED);
    let t0 = Instant::now();
    let run = run_grid_checked(
        systems,
        datasets,
        &BUDGETS,
        &spec,
        &opts(parallelism, eval_cache),
        None,
    )
    .expect("bench spec is valid");
    let wall = t0.elapsed().as_secs_f64();
    assert!(!run.points.is_empty());
    (wall, run.eval_cache_hits, run.eval_cache_misses)
}

/// Serial per-cell pass under an explicit shared cache; returns wall-clock.
/// Two calls with the same cache give the populate and warm passes.
fn time_cells(
    systems: &[Box<dyn AutoMlSystem>],
    datasets: &[DatasetMeta],
    cache: &EvalCache,
) -> f64 {
    let opts = opts(1, true);
    let ctx = FitContext::with_cache(cache);
    let t0 = Instant::now();
    for system in systems {
        for meta in datasets {
            for run in 0..RUNS {
                let seed = SEED ^ (run as u64 * 0x9e37) ^ (meta.openml_id as u64);
                let m_opts = MaterializeOptions {
                    seed,
                    ..opts.materialize
                };
                let ds = meta.materialize(&m_opts);
                if system.budget_free() {
                    let spec = RunSpec {
                        seed,
                        ..RunSpec::single_core(BUDGETS[0], seed)
                    };
                    run_once_in(system.as_ref(), meta, &ds, &spec, &opts, &ctx);
                } else {
                    for &b in &BUDGETS {
                        if b < system.min_budget_s() {
                            continue;
                        }
                        let spec = RunSpec {
                            seed,
                            ..RunSpec::single_core(b, seed)
                        };
                        run_once_in(system.as_ref(), meta, &ds, &spec, &opts, &ctx);
                    }
                }
            }
        }
    }
    t0.elapsed().as_secs_f64()
}

/// Best of `reps` timings of `f`.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let systems = all_systems();
    let datasets: Vec<DatasetMeta> = amlb39().into_iter().take(N_DATASETS).collect();

    // Untimed warm-up materializes every dataset so no mode pays it.
    time_grid(&systems, &datasets, 0, true);

    let reps = 3;
    let cold_serial = best_of(reps, || time_grid(&systems, &datasets, 1, false).0);
    let cold_parallel = best_of(reps, || time_grid(&systems, &datasets, 0, false).0);
    let mut hits = 0;
    let mut misses = 0;
    let fresh_serial = best_of(reps, || {
        let (w, h, m) = time_grid(&systems, &datasets, 1, true);
        (hits, misses) = (h, m);
        w
    });
    let fresh_parallel = best_of(reps, || time_grid(&systems, &datasets, 0, true).0);
    let warm_serial = best_of(reps, || {
        let cache = EvalCache::new();
        time_cells(&systems, &datasets, &cache); // populate (untimed role)
        time_cells(&systems, &datasets, &cache) // steady state
    });

    let fresh_speedup = cold_serial / fresh_serial;
    let warm_speedup = cold_serial / warm_serial;
    let json = format!(
        "{{\n  \"bench\": \"grid\",\n  \"config\": {{ \"systems\": {}, \"datasets\": {}, \
         \"runs\": {}, \"budgets\": [10, 30, 60] }},\n  \"wall_s\": {{\n    \
         \"cold_serial\": {cold_serial:.4},\n    \"fresh_serial\": {fresh_serial:.4},\n    \
         \"warm_serial\": {warm_serial:.4},\n    \"cold_parallel\": {cold_parallel:.4},\n    \
         \"fresh_parallel\": {fresh_parallel:.4}\n  }},\n  \"speedup\": {{\n    \
         \"fresh_vs_cold_serial\": {fresh_speedup:.3},\n    \
         \"warm_vs_cold_serial\": {warm_speedup:.3}\n  }},\n  \"cache\": {{ \"hits\": {hits}, \
         \"misses\": {misses} }}\n}}\n",
        systems.len(),
        datasets.len(),
        RUNS,
    );
    print!("{json}");
    println!(
        "grid: fresh {fresh_speedup:.2}x, warm {warm_speedup:.2}x vs cold ({hits} hits / {misses} misses)"
    );

    // CARGO_MANIFEST_DIR is crates/bench; the baseline lives at the
    // workspace root next to the other committed artefacts.
    let out = std::env::var("BENCH_GRID_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_grid.json",
            env!("CARGO_MANIFEST_DIR") // compile-time fallback for plain ./grid runs
        )
    });
    std::fs::write(&out, &json).expect("write BENCH_grid.json");
    println!("wrote {out}");
}
