#![allow(missing_docs)]
//! Criterion target regenerating the paper's table1 at smoke scale.
green_automl_bench::artifact_bench!("table1");
