#![allow(missing_docs)]
//! Criterion target regenerating the paper's table4 at smoke scale.
green_automl_bench::artifact_bench!("table4");
