#![allow(missing_docs)]
//! The kernel-layer perf baseline: microbenches the shared `ml::kernel`
//! primitives (cache-blocked matmul vs the naive reference), times the
//! rewritten model predict paths, and re-times the evaluation grid so the
//! raw-speed pass shows up in the committed perf trajectory. Writes the
//! machine-readable `BENCH_kernels.json` at the workspace root — the
//! committed point CI compares against (see `.github/workflows/ci.yml`).
//!
//! The `seed_*` constants are the grid timings measured on the reference
//! machine at the last commit *before* the kernel layer existed (same
//! best-of-3 protocol as `benches/grid.rs`); `grid_fresh_vs_seed_cold` is
//! the headline number — what a fresh memoised grid run costs today
//! relative to a cold pre-kernel run.
//!
//! Every kernel keeps the naive ascending summation order at any block
//! size, so this benchmark is purely a wall-clock story: predictions are
//! bitwise identical to the pre-kernel substrate (the `ml` unit tests and
//! the equivalence suites prove it).

use green_automl_core::{run_grid_checked, BenchmarkOptions};
use green_automl_dataset::{amlb39, DatasetMeta, MaterializeOptions, TaskSpec};
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, Device};
use green_automl_ml::{kernel, matrix, AttentionParams, KnnParams, Matrix, MlpParams};
use green_automl_systems::{all_systems, AutoMlSystem, RunSpec};
use std::time::Instant;

/// Grid cold-serial wall seconds on the reference machine at the seed
/// commit (pre-kernel substrate, best of 3).
const SEED_COLD_SERIAL: f64 = 0.5472;
/// Grid fresh-serial wall seconds on the reference machine at the seed
/// commit (pre-kernel substrate, best of 3).
const SEED_FRESH_SERIAL: f64 = 0.4204;

const SEED: u64 = 0;
const BUDGETS: [f64; 3] = [10.0, 30.0, 60.0];
const N_DATASETS: usize = 2;

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

// --- Matmul microbench ---------------------------------------------------

/// Time `reps` calls of `f` and return seconds per call.
fn per_call(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn random_matrix(rows: usize, cols: usize, rng: &mut SplitMix64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0..1.0f64);
    }
    m
}

/// Blocked-vs-naive matmul at an awkward (non-multiple-of-block) shape;
/// returns (blocked s/call, naive s/call, gflops of the blocked kernel).
fn bench_matmul() -> (f64, f64, f64) {
    let (m, k, n) = (176, 160, 144);
    let mut rng = SplitMix64::seed_from_u64(42);
    let a = random_matrix(m, k, &mut rng);
    let b = random_matrix(k, n, &mut rng);
    let mut out = Matrix::zeros(m, n);
    let reps = 40;
    let blocked = best_of(3, || per_call(reps, || kernel::matmul(&a, &b, &mut out)));
    let naive = best_of(3, || {
        per_call(reps, || kernel::matmul_naive(&a, &b, &mut out))
    });
    let gflops = 2.0 * (m * k * n) as f64 / blocked / 1e9;
    (blocked, naive, gflops)
}

// --- Model predict timings ----------------------------------------------

/// A synthetic task encoded once: 600 train rows, 200 query rows, 16 cols.
fn task() -> (Matrix, Vec<u32>, Matrix) {
    let ds = TaskSpec::new("kernel-bench", 800, 16, 3).generate();
    let mut t = tracker();
    let x = matrix::encode(&ds, &mut t);
    let train: Vec<usize> = (0..600).collect();
    let test: Vec<usize> = (600..800).collect();
    (
        x.take_rows(&train),
        train.iter().map(|&r| ds.labels[r]).collect(),
        x.take_rows(&test),
    )
}

fn tracker() -> CostTracker {
    CostTracker::new(Device::xeon_gold_6132(), 1)
}

/// Seconds per predict_proba batch over the 200-row query set.
fn bench_models() -> (f64, f64, f64) {
    let (x, y, xt) = task();
    let mut t = tracker();

    let attn = green_automl_ml::models::attention::InContextAttention::fit(
        &AttentionParams::default(),
        &x,
        &y,
        3,
        &mut t,
        SEED,
    );
    let attention_s = best_of(3, || {
        per_call(4, || {
            let _ = attn.predict_proba(&xt, &mut tracker());
        })
    });

    let knn =
        green_automl_ml::models::knn::Knn::fit(&KnnParams::default(), &x, &y, 3, &mut t, SEED);
    let knn_s = best_of(3, || {
        per_call(8, || {
            let _ = knn.predict_proba(&xt, &mut tracker());
        })
    });

    let mut rng = SplitMix64::seed_from_u64(SEED);
    let mlp = green_automl_ml::models::mlp::Mlp::fit(
        &MlpParams {
            hidden2: 24,
            ..Default::default()
        },
        &x,
        &y,
        3,
        &mut t,
        &mut rng,
    );
    let mlp_s = best_of(3, || {
        per_call(16, || {
            let _ = mlp.predict_proba(&xt, &mut tracker());
        })
    });

    (attention_s, knn_s, mlp_s)
}

// --- Grid re-timing ------------------------------------------------------

fn opts(eval_cache: bool) -> BenchmarkOptions {
    BenchmarkOptions {
        materialize: MaterializeOptions::tiny(),
        runs: 1,
        test_frac: 0.34,
        parallelism: 1,
        eval_cache,
    }
}

fn time_grid(systems: &[Box<dyn AutoMlSystem>], datasets: &[DatasetMeta], eval_cache: bool) -> f64 {
    let spec = RunSpec::single_core(BUDGETS[0], SEED);
    let t0 = Instant::now();
    let run = run_grid_checked(systems, datasets, &BUDGETS, &spec, &opts(eval_cache), None)
        .expect("bench spec is valid");
    let wall = t0.elapsed().as_secs_f64();
    assert!(!run.points.is_empty());
    wall
}

fn main() {
    let (matmul_blocked, matmul_naive, matmul_gflops) = bench_matmul();
    let matmul_speedup = matmul_naive / matmul_blocked;

    let (attention_s, knn_s, mlp_s) = bench_models();

    let systems = all_systems();
    let datasets: Vec<DatasetMeta> = amlb39().into_iter().take(N_DATASETS).collect();
    time_grid(&systems, &datasets, true); // untimed warm-up (materialization)
    let grid_cold = best_of(3, || time_grid(&systems, &datasets, false));
    let grid_fresh = best_of(3, || time_grid(&systems, &datasets, true));

    let fresh_vs_seed_cold = SEED_COLD_SERIAL / grid_fresh;
    let cold_vs_seed_cold = SEED_COLD_SERIAL / grid_cold;
    let fresh_vs_seed_fresh = SEED_FRESH_SERIAL / grid_fresh;

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"config\": {{ \"matmul\": [176, 160, 144], \
         \"task\": [800, 16, 3], \"grid_datasets\": {n_ds}, \"budgets\": [10, 30, 60] }},\n  \
         \"matmul\": {{\n    \"blocked_s\": {matmul_blocked:.6},\n    \
         \"naive_s\": {matmul_naive:.6},\n    \"speedup\": {matmul_speedup:.3},\n    \
         \"gflops\": {matmul_gflops:.2}\n  }},\n  \"predict_s\": {{\n    \
         \"attention\": {attention_s:.4},\n    \"knn\": {knn_s:.4},\n    \
         \"mlp\": {mlp_s:.4}\n  }},\n  \"grid_wall_s\": {{\n    \
         \"cold_serial\": {grid_cold:.4},\n    \"fresh_serial\": {grid_fresh:.4},\n    \
         \"seed_cold_serial\": {SEED_COLD_SERIAL:.4},\n    \
         \"seed_fresh_serial\": {SEED_FRESH_SERIAL:.4}\n  }},\n  \"speedup\": {{\n    \
         \"grid_fresh_vs_seed_cold\": {fresh_vs_seed_cold:.3},\n    \
         \"grid_cold_vs_seed_cold\": {cold_vs_seed_cold:.3},\n    \
         \"grid_fresh_vs_seed_fresh\": {fresh_vs_seed_fresh:.3}\n  }}\n}}\n",
        n_ds = datasets.len(),
    );
    print!("{json}");
    println!(
        "kernels: matmul {matmul_speedup:.2}x blocked-vs-naive ({matmul_gflops:.1} GFLOP/s), \
         grid fresh {fresh_vs_seed_cold:.2}x vs seed cold"
    );

    let out = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_kernels.json",
            env!("CARGO_MANIFEST_DIR") // compile-time fallback for plain runs
        )
    });
    std::fs::write(&out, &json).expect("write BENCH_kernels.json");
    println!("wrote {out}");
}
