#![allow(missing_docs)]
//! Substrate microbenches and design-decision ablations (DESIGN.md §4):
//!
//! * op-charging overhead of the virtual power meter;
//! * parallel-profile arithmetic;
//! * classifier training throughput (tree vs forest vs boosting);
//! * Caruana ensemble-selection scaling in the candidate count;
//! * Bayesian-optimisation suggestion cost as history grows;
//! * logical-size charging: materialised-size invariance of virtual cost.

use green_automl_bench::harness::Group;
use green_automl_dataset::TaskSpec;
use green_automl_energy::{CostTracker, Device, OpCounts, ParallelProfile};
use green_automl_ml::matrix::encode;
use green_automl_ml::{ForestParams, GbParams, ModelSpec, TreeParams};
use green_automl_optim::BayesOpt;
use green_automl_systems::ensemble::caruana_selection;
use std::hint::black_box;

fn bench_energy_meter() {
    let mut group = Group::new("energy-meter");
    let mut t = CostTracker::new(Device::xeon_gold_6132(), 4);
    group.bench("charge", || {
        t.charge(
            black_box(OpCounts::scalar(1e6) + OpCounts::tree(1e5)),
            ParallelProfile::model_training(),
        );
        t.now()
    });
    let p = ParallelProfile::embarrassing();
    group.bench("parallel-duration", || {
        black_box(p.duration_s(black_box(123.0), 8))
    });
}

fn bench_classifiers() {
    let ds = {
        let mut s = TaskSpec::new("bench", 300, 10, 2);
        s.cluster_sep = 2.0;
        s.generate()
    };
    let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
    let x = encode(&ds, &mut t);
    let mut group = Group::new("classifier-fit");
    for (name, spec) in [
        ("tree", ModelSpec::DecisionTree(TreeParams::default())),
        (
            "forest-16",
            ModelSpec::RandomForest(ForestParams {
                n_trees: 16,
                ..Default::default()
            }),
        ),
        (
            "gbm-10",
            ModelSpec::GradientBoosting(GbParams {
                n_rounds: 10,
                ..Default::default()
            }),
        ),
        ("nb", ModelSpec::GaussianNb),
    ] {
        group.bench(name, || {
            let mut tr = CostTracker::new(Device::xeon_gold_6132(), 1);
            black_box(spec.fit(&x, &ds.labels, 2, &mut tr, 0))
        });
    }
}

fn bench_caruana_scaling() {
    // Ablation: ensemble-selection cost grows linearly in the candidate
    // pool — the mechanism behind ASKL's budget overshoot.
    let n_val = 200;
    let labels: Vec<u32> = (0..n_val as u32).map(|i| i % 2).collect();
    let mut group = Group::new("caruana");
    for pool in [5usize, 20] {
        let candidates: Vec<green_automl_ml::Matrix> = (0..pool)
            .map(|k| {
                let mut m = green_automl_ml::Matrix::zeros(n_val, 2);
                for r in 0..n_val {
                    let p = 0.5 + 0.4 * (((r + k) % 2) as f64 - 0.5);
                    m.set(r, 0, p);
                    m.set(r, 1, 1.0 - p);
                }
                m
            })
            .collect();
        group.bench(&format!("pool-{pool}"), || {
            let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
            black_box(caruana_selection(&candidates, &labels, 2, 10, &mut t))
        });
    }
}

fn bench_bo_suggest() {
    let space = green_automl_optim::ConfigSpace::new()
        .add_float("x", 0.0, 1.0, false)
        .add_float("y", 0.0, 1.0, false)
        .add_int("n", 1, 100, true);
    let mut group = Group::new("bo-suggest");
    for history in [15usize, 60] {
        let mut bo = BayesOpt::new(space.clone(), 0);
        for i in 0..history {
            let (c, _) = bo.suggest();
            let s = (i as f64 * 0.37).sin();
            bo.observe(c, s);
        }
        group.bench(&format!("history-{history}"), || black_box(bo.suggest()));
    }
}

fn bench_logical_size_charging() {
    // Ablation: virtual cost scales with the charging factor while real
    // compute stays constant — the trick that makes the 28-compute-day
    // study run in minutes.
    let mut group = Group::new("logical-size");
    for scale in [1.0f64, 1000.0] {
        let ds = TaskSpec::new("scale", 200, 8, 2)
            .generate()
            .with_scales(scale, 1.0);
        group.bench(&format!("scale-{}", scale as u64), || {
            let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
            let x = encode(&ds, &mut t);
            let m =
                ModelSpec::DecisionTree(TreeParams::default()).fit(&x, &ds.labels, 2, &mut t, 0);
            black_box((m, t.now()))
        });
    }
}

fn main() {
    bench_energy_meter();
    bench_classifiers();
    bench_caruana_scaling();
    bench_bo_suggest();
    bench_logical_size_charging();
}
