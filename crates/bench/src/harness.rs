//! A minimal, dependency-free timing harness.
//!
//! Hermetic builds can't fetch Criterion, so benchmark binaries time
//! themselves with `std::time::Instant`: a short warm-up, then repeated
//! timed batches, reporting the median/min/max per-iteration wall clock.
//! Output is one line per benchmark, stable enough to eyeball regressions
//! in CI logs.

use std::time::{Duration, Instant};

/// How long each benchmark runs after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_secs(2);
/// Warm-up period before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(300);
/// Number of timed batches the budget splits into.
const BATCHES: usize = 10;

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`.
pub struct Group {
    name: String,
}

impl Group {
    /// Start a group; prints a header line.
    pub fn new(name: &str) -> Group {
        println!("group {name}");
        Group {
            name: name.to_string(),
        }
    }

    /// Time `f` and print `group/name  median  (min … max)` per iteration.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        // Warm-up: also calibrates how many iterations fit in one batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP_BUDGET.as_secs_f64() / warm_iters.max(1) as f64;
        let batch_iters =
            ((MEASURE_BUDGET.as_secs_f64() / BATCHES as f64 / per_iter).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let (min, max) = (samples[0], samples[samples.len() - 1]);
        println!(
            "  {}/{name}: {} (min {} … max {}) × {batch_iters}",
            self.name,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
        );
    }
}

fn fmt_duration(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale_by_magnitude() {
        assert_eq!(fmt_duration(2.5), "2.500 s");
        assert_eq!(fmt_duration(2.5e-3), "2.500 ms");
        assert_eq!(fmt_duration(2.5e-6), "2.500 µs");
        assert_eq!(fmt_duration(2.5e-9), "2.5 ns");
    }
}
