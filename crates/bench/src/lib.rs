//! # green-automl-bench
//!
//! Benchmark harness: one target per paper table/figure (each regenerates
//! its artefact at a reduced smoke scale per iteration) plus substrate
//! microbenches and ablations for the design decisions called out in
//! DESIGN.md.
//!
//! The harness is a small in-repo timer (see [`harness`]) rather than
//! Criterion, so `cargo bench` works in hermetic/offline builds with no
//! external registry dependencies.
//!
//! Run everything with `cargo bench --workspace`; individual artefacts with
//! e.g. `cargo bench -p green-automl-bench --bench fig3`.

use green_automl_experiments::{run_experiment, ExpConfig, SharedPoints};

pub mod harness;

/// The benchmark-scale experiment configuration (smoke profile: 2 datasets,
/// 1 run, one budget) — fast enough to iterate under the harness while still
/// exercising every code path of the artefact.
pub fn bench_config() -> ExpConfig {
    ExpConfig::smoke()
}

/// Run one experiment end-to-end and return the number of result rows
/// (returned so the timing loop observes a data dependency).
pub fn run_artifact(id: &str) -> usize {
    let cfg = bench_config();
    let mut shared = SharedPoints::default();
    let out = run_experiment(id, &cfg, &mut shared).unwrap_or_else(|| panic!("unknown id {id}"));
    out.tables.iter().map(|t| t.rows.len()).sum()
}

/// Declare a benchmark binary for one paper artefact.
#[macro_export]
macro_rules! artifact_bench {
    ($id:literal) => {
        fn main() {
            let mut group = $crate::harness::Group::new("paper");
            group.bench($id, || std::hint::black_box($crate::run_artifact($id)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_runner_produces_rows() {
        assert!(run_artifact("table1") >= 7);
        assert!(run_artifact("fig8") > 10);
    }

    #[test]
    #[should_panic(expected = "unknown id")]
    fn unknown_artifact_panics() {
        let _ = run_artifact("fig99");
    }
}
