//! # green-automl-bench
//!
//! Criterion benchmark harness: one target per paper table/figure (each
//! regenerates its artefact at a reduced smoke scale per iteration) plus
//! substrate microbenches and ablations for the design decisions called
//! out in DESIGN.md.
//!
//! Run everything with `cargo bench --workspace`; individual artefacts with
//! e.g. `cargo bench -p green-automl-bench --bench fig3`.

use green_automl_experiments::{run_experiment, ExpConfig, SharedPoints};

/// The benchmark-scale experiment configuration (smoke profile: 2 datasets,
/// 1 run, one budget) — fast enough to iterate under Criterion while still
/// exercising every code path of the artefact.
pub fn bench_config() -> ExpConfig {
    ExpConfig::smoke()
}

/// Run one experiment end-to-end and return the number of result rows
/// (returned so Criterion observes a data dependency).
pub fn run_artifact(id: &str) -> usize {
    let cfg = bench_config();
    let mut shared = SharedPoints::default();
    let out = run_experiment(id, &cfg, &mut shared).unwrap_or_else(|| panic!("unknown id {id}"));
    out.tables.iter().map(|t| t.rows.len()).sum()
}

/// Declare a Criterion benchmark binary for one paper artefact.
#[macro_export]
macro_rules! artifact_bench {
    ($id:literal) => {
        use criterion::{criterion_group, criterion_main, Criterion};

        fn bench(c: &mut Criterion) {
            let mut group = c.benchmark_group("paper");
            group
                .sample_size(10)
                .warm_up_time(std::time::Duration::from_millis(500))
                .measurement_time(std::time::Duration::from_secs(3));
            group.bench_function($id, |b| {
                b.iter(|| std::hint::black_box(green_automl_bench::run_artifact($id)))
            });
            group.finish();
        }
        criterion_group!(benches, bench);
        criterion_main!(benches);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_runner_produces_rows() {
        assert!(run_artifact("table1") >= 7);
        assert!(run_artifact("fig8") > 10);
    }

    #[test]
    #[should_panic(expected = "unknown id")]
    fn unknown_artifact_panics() {
        let _ = run_artifact("fig99");
    }
}
