//! The serving fleet: many models, many tenants, simulated grid regions.
//!
//! [`run_fleet`] scales the single-model scheduler up to a fleet: each
//! *tenant* deploys one model under a latency SLO and an energy budget;
//! each *region* hosts an elastic replica pool, a model registry with an
//! LRU residency cap, and a seeded time-varying carbon profile. A router
//! decides per batch which region executes it ([`RouterPolicy`]), and an
//! autoscaler grows and shrinks each region's pool under queue pressure
//! ([`AutoscalePolicy`]), with scale-ups charged as cold model loads and
//! refused when they would blow the triggering tenant's energy budget.
//!
//! ## Determinism argument
//!
//! The fleet preserves the scheduler's three-phase discipline:
//!
//! 1. **Batch formation** is per-tenant and pure in the trace: each
//!    tenant's requests coalesce under (`max_batch`, `max_delay_s`)
//!    exactly as in the single-model scheduler, and the per-tenant plans
//!    merge into one global dispatch order sorted by `(seal time,
//!    tenant)`.
//! 2. **Batch execution** fans out over host threads, one private
//!    [`CostTracker`] per batch. Every region runs the same [`Device`], so
//!    a batch's duration and Joules are known *before* any routing
//!    decision — execution never depends on phase 3, which is what lets it
//!    parallelise.
//! 3. **Dispatch** is strictly serial in merged order: queue-depth
//!    sampling, autoscale decisions, routing, registry fetches, fault
//!    injection (`(fault seed, batch index, attempt)` — the same pure
//!    crash sites as the scheduler), and every floating-point accumulation
//!    happen in one deterministic sequence.
//!
//! Consequently a [`FleetReport`] — predictions, per-tenant SLOs,
//! per-region Joules and kg CO₂, the autoscale event log, the span trace —
//! is byte-identical at every `host_parallelism`, clean or chaos-faulted.
//!
//! ## Carbon accounting
//!
//! Busy, wasted, and cold-load energy convert to CO₂ at the routed
//! region's mean intensity over the exact virtual interval the work
//! occupied ([`CarbonProfile::mean_intensity`] is closed-form, not
//! sampled). Replica idle energy uses the mean intensity over the
//! replica's powered interval — an approximation (idle moments are not
//! subtracted from busy moments inside the interval) that is still a pure
//! function of the schedule. Regions differ only in carbon profile,
//! replica counts, and registry capacity — never in device — so moving a
//! batch across regions moves its CO₂, not its Joules.

use green_automl_core::executor::{resolve_parallelism, run_indexed};
use green_automl_core::fault::{FaultInjector, FaultPlan};
use green_automl_dataset::Dataset;
use green_automl_energy::trace::span_id;
use green_automl_energy::{
    CarbonProfile, CostTracker, Device, EnergyBreakdown, FaultKind, Measurement, OpCounts,
    ParallelProfile, Span, SpanKind, Trace, EUR_PER_KWH,
};
use green_automl_systems::Predictor;

use crate::autoscale::{AutoscaleEvent, AutoscalePolicy, ScaleReason};
use crate::registry::ModelRegistry;
use crate::report::LatencyStats;
use crate::router::{route, RegionView, RouterPolicy};
use crate::traffic::FleetTrace;

/// Joules per kilowatt-hour.
const J_PER_KWH: f64 = 3.6e6;

/// One tenant's deployment: a model, a latency SLO, an energy budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant (and model) name; must be unique across the fleet.
    pub name: String,
    /// The deployed model.
    pub predictor: Predictor,
    /// p99 latency objective, seconds.
    pub p99_slo_s: f64,
    /// Attributed-energy budget; scale-ups on this tenant's behalf are
    /// denied once their attributed Joules would exceed it. Infinite by
    /// default.
    pub energy_budget_j: f64,
}

impl TenantSpec {
    /// A tenant with an unlimited energy budget.
    pub fn new(name: &str, predictor: Predictor, p99_slo_s: f64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            predictor,
            p99_slo_s,
            energy_budget_j: f64::INFINITY,
        }
    }

    /// The same tenant with a finite energy budget, Joules.
    pub fn with_budget_j(mut self, budget_j: f64) -> TenantSpec {
        self.energy_budget_j = budget_j;
        self
    }
}

/// One simulated grid region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSpec {
    /// Region name for reports.
    pub name: String,
    /// The region's (possibly time-varying) grid carbon intensity.
    pub carbon: CarbonProfile,
    /// Replicas active at t = 0.
    pub initial_replicas: usize,
    /// Residency cap of the region's model registry, bytes.
    pub registry_capacity_bytes: f64,
}

impl RegionSpec {
    /// A region with an unbounded model registry.
    pub fn new(name: &str, carbon: CarbonProfile, initial_replicas: usize) -> RegionSpec {
        assert!(initial_replicas >= 1, "a region needs at least one replica");
        RegionSpec {
            name: name.to_string(),
            carbon,
            initial_replicas,
            registry_capacity_bytes: f64::INFINITY,
        }
    }

    /// The same region with a finite registry residency cap.
    pub fn with_registry_capacity(mut self, bytes: f64) -> RegionSpec {
        self.registry_capacity_bytes = bytes;
        self
    }
}

/// The fleet deployment: regions, routing, autoscaling, batching, faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// The simulated regions.
    pub regions: Vec<RegionSpec>,
    /// How batches pick a region.
    pub router: RouterPolicy,
    /// How each region's replica pool scales.
    pub autoscale: AutoscalePolicy,
    /// A batch dispatches once it holds this many requests…
    pub max_batch: usize,
    /// …or once this much time has passed since its first arrival.
    pub max_delay_s: f64,
    /// Hardware model every replica in every region runs on (shared by
    /// design; see the module docs).
    pub device: Device,
    /// Cores per replica.
    pub cores_per_replica: usize,
    /// Host threads executing batch inference while *building* the report
    /// (`0` = one per core). Never changes the report.
    pub host_parallelism: usize,
    /// Seeded fault plan; `replica_crash_p` / `replica_restart_s` drive
    /// mid-batch crashes.
    pub fault: FaultPlan,
    /// Redispatch attempts after a crash before a batch counts as failed.
    pub max_retries: usize,
    /// First-retry backoff, doubling per attempt, virtual seconds.
    pub backoff_base_s: f64,
    /// Backoff cap, virtual seconds.
    pub backoff_cap_s: f64,
    /// Record a span trace (one `Replica` span per powered replica
    /// interval, one `Batch` span per dispatch attempt). Never changes a
    /// measured number.
    pub trace: bool,
}

impl FleetConfig {
    /// A fleet on the paper's CPU testbed: carbon-aware routing with 100ms
    /// slack, elastic pools of 1–8 replicas, the scheduler's default
    /// batching and retry knobs, faults off.
    pub fn cpu_testbed(regions: Vec<RegionSpec>) -> FleetConfig {
        FleetConfig {
            regions,
            router: RouterPolicy::CarbonAware {
                latency_slack_s: 0.1,
            },
            autoscale: AutoscalePolicy::elastic(1, 8),
            max_batch: 32,
            max_delay_s: 0.02,
            device: Device::xeon_gold_6132(),
            cores_per_replica: 1,
            host_parallelism: 0,
            fault: FaultPlan::disabled(),
            max_retries: 3,
            backoff_base_s: 0.05,
            backoff_cap_s: 1.0,
            trace: false,
        }
    }

    /// The same fleet under a different routing policy.
    pub fn with_router(mut self, router: RouterPolicy) -> FleetConfig {
        self.router = router;
        self
    }

    /// The same fleet under a different autoscaling policy.
    pub fn with_autoscale(mut self, autoscale: AutoscalePolicy) -> FleetConfig {
        self.autoscale = autoscale;
        self
    }

    /// The same fleet with a fault plan installed.
    pub fn with_fault(mut self, fault: FaultPlan) -> FleetConfig {
        self.fault = fault;
        self
    }

    /// The same fleet with span tracing on.
    pub fn with_trace(mut self) -> FleetConfig {
        self.trace = true;
        self
    }
}

/// Per-tenant outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant id (index into the spec slice).
    pub tenant: u32,
    /// Tenant name.
    pub name: String,
    /// Requests this tenant sent.
    pub n_requests: usize,
    /// Latency summary over the tenant's completed requests.
    pub latency: LatencyStats,
    /// The SLO the tenant asked for.
    pub p99_slo_s: f64,
    /// `true` when the observed p99 meets the SLO and nothing failed.
    pub slo_ok: bool,
    /// Energy attributed to the tenant: batch execution, crash waste,
    /// cold model loads, and scale-up loads on its behalf. Joules. Shared
    /// replica idle power is *not* attributed (it belongs to the fleet).
    pub attributed_j: f64,
    /// Requests that completed only after at least one crash.
    pub retried_requests: usize,
    /// Requests whose batch exhausted its retries.
    pub failed_requests: usize,
    /// Scale-ups denied because of this tenant's energy budget.
    pub budget_denials: usize,
}

/// Per-region outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// Region name.
    pub name: String,
    /// Batches that completed here.
    pub batches: usize,
    /// Energy spent computing completed batches, Joules.
    pub busy_j: f64,
    /// Static energy of powered replicas waiting for work, Joules.
    pub idle_j: f64,
    /// Energy thrown away by crashed attempts, Joules.
    pub wasted_j: f64,
    /// Energy spent paging model artefacts (registry cold loads, startup
    /// warming, autoscale cold loads), Joules.
    pub cold_load_j: f64,
    /// CO₂ of all the above under the region's time-varying intensity, kg.
    pub kg_co2: f64,
    /// Replica-seconds of powered capacity.
    pub replica_seconds: f64,
    /// Most replicas ever active at once.
    pub peak_replicas: usize,
    /// Replicas active when the run ended.
    pub final_replicas: usize,
    /// Registry cold loads (startup warming included).
    pub cold_loads: usize,
    /// Registry evictions.
    pub evictions: usize,
}

impl RegionReport {
    /// All of the region's energy, Joules.
    pub fn total_joules(&self) -> f64 {
        self.busy_j + self.idle_j + self.wasted_j + self.cold_load_j
    }
}

/// Everything one fleet run produced. `PartialEq` covers every field
/// (energies included) and [`FleetReport::to_text`] is a canonical
/// serialisation: the determinism suite asserts both across
/// `host_parallelism` counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Requests across all tenants.
    pub n_requests: usize,
    /// Micro-batches dispatched.
    pub n_batches: usize,
    /// Hard-label prediction per request in merged-trace order (failed
    /// requests keep a `0` placeholder).
    pub predictions: Vec<u32>,
    /// Virtual time from first arrival to last completion.
    pub makespan_s: f64,
    /// Mean queue depth sampled at batch seal instants.
    pub mean_queue_depth: f64,
    /// Deepest queue observed.
    pub max_queue_depth: usize,
    /// Per-tenant outcomes, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Per-region outcomes, in region order.
    pub regions: Vec<RegionReport>,
    /// The autoscale decision log, in decision order.
    pub events: Vec<AutoscaleEvent>,
    /// Span trace when [`FleetConfig::trace`] was on.
    pub trace: Option<Trace>,
}

impl FleetReport {
    /// Fleet-wide energy, Joules.
    pub fn total_joules(&self) -> f64 {
        self.regions.iter().map(RegionReport::total_joules).sum()
    }

    /// Fleet-wide energy, kWh.
    pub fn kwh(&self) -> f64 {
        self.total_joules() / J_PER_KWH
    }

    /// Fleet-wide emissions under each region's own grid, kg CO₂.
    pub fn kg_co2(&self) -> f64 {
        self.regions.iter().map(|r| r.kg_co2).sum()
    }

    /// Electricity cost at the paper's flat tariff, €.
    pub fn cost_eur(&self) -> f64 {
        self.kwh() * EUR_PER_KWH
    }

    /// Tenants whose SLO held.
    pub fn slo_compliant_tenants(&self) -> usize {
        self.tenants.iter().filter(|t| t.slo_ok).count()
    }

    /// Canonical plain-text serialisation. Floats render via Rust's
    /// shortest-round-trip formatting, so two reports are byte-identical
    /// iff they are bit-identical; predictions compress to an FNV-1a
    /// digest to keep the text bounded.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("fleet-report v1\n");
        out.push_str(&format!(
            "requests={} batches={} makespan_s={:?} mean_queue={:?} max_queue={}\n",
            self.n_requests,
            self.n_batches,
            self.makespan_s,
            self.mean_queue_depth,
            self.max_queue_depth
        ));
        out.push_str(&format!(
            "predictions=fnv1a:{:016x}\n",
            fnv1a(self.predictions.iter().flat_map(|p| p.to_le_bytes()))
        ));
        for t in &self.tenants {
            out.push_str(&format!(
                "tenant {} name={} requests={} p50_s={:?} p99_s={:?} slo={} attributed_j={:?} retried={} failed={} denials={}\n",
                t.tenant,
                t.name,
                t.n_requests,
                t.latency.p50_s,
                t.latency.p99_s,
                if t.slo_ok { "pass" } else { "FAIL" },
                t.attributed_j,
                t.retried_requests,
                t.failed_requests,
                t.budget_denials
            ));
        }
        for (ri, r) in self.regions.iter().enumerate() {
            out.push_str(&format!(
                "region {} name={} batches={} busy_j={:?} idle_j={:?} wasted_j={:?} cold_load_j={:?} kg_co2={:?} replica_s={:?} peak={} final={} cold_loads={} evictions={}\n",
                ri,
                r.name,
                r.batches,
                r.busy_j,
                r.idle_j,
                r.wasted_j,
                r.cold_load_j,
                r.kg_co2,
                r.replica_seconds,
                r.peak_replicas,
                r.final_replicas,
                r.cold_loads,
                r.evictions
            ));
        }
        out.push_str(&format!("events {}\n", self.events.len()));
        for e in &self.events {
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "total_j={:?} kwh={:?} kg_co2={:?} eur={:?}\n",
            self.total_joules(),
            self.kwh(),
            self.kg_co2(),
            self.cost_eur()
        ));
        out
    }
}

/// FNV-1a over a byte stream; used to digest predictions in `to_text`.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A planned micro-batch of one tenant's requests. `first`/`len` index the
/// tenant's own request-index list, not the merged trace.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FleetBatch {
    tenant: usize,
    first: usize,
    len: usize,
    close_s: f64,
}

/// Phase 1: per-tenant batch formation, merged by `(seal time, tenant)`.
fn form_fleet_batches(
    trace: &FleetTrace,
    tenant_reqs: &[Vec<usize>],
    max_batch: usize,
    max_delay_s: f64,
) -> Vec<FleetBatch> {
    assert!(max_batch >= 1, "max_batch must be at least 1");
    assert!(
        max_delay_s >= 0.0 && max_delay_s.is_finite(),
        "max_delay_s must be finite and non-negative"
    );
    let mut merged = Vec::new();
    for (tenant, idxs) in tenant_reqs.iter().enumerate() {
        let arrival = |i: usize| trace.requests[idxs[i]].arrival_s;
        let mut first = 0usize;
        while first < idxs.len() {
            let deadline = arrival(first) + max_delay_s;
            let mut len = 1usize;
            while len < max_batch && first + len < idxs.len() && arrival(first + len) <= deadline {
                len += 1;
            }
            let close_s = if len == max_batch {
                arrival(first + len - 1)
            } else {
                deadline
            };
            merged.push(FleetBatch {
                tenant,
                first,
                len,
                close_s,
            });
            first += len;
        }
    }
    // Per-tenant close times are strictly ordered, so (close_s, tenant) is
    // a total deterministic order across the fleet.
    merged.sort_by(|a, b| {
        a.close_s
            .partial_cmp(&b.close_s)
            .expect("finite seal times")
            .then(a.tenant.cmp(&b.tenant))
    });
    merged
}

/// A replica's powered interval: `[start_s, end_s)` of one activation.
struct Interval {
    region: usize,
    slot: usize,
    seq: u64,
    start_s: f64,
    end_s: f64, // NaN while the replica is still powered
    busy_s: f64,
}

/// One replica slot in a region's pool.
struct Slot {
    active: bool,
    free_s: f64,
    interval: usize, // index of the current (or last) powered interval
}

/// Serve a multi-tenant [`FleetTrace`] across the configured regions.
///
/// Tenant ids in the trace index `tenants`; every tenant's model is
/// registered (and warmed) in every region's registry at startup, priced
/// as cold loads at t = 0.
///
/// # Panics
/// Panics if the trace references unknown tenants or rows outside `pool`,
/// if tenant names collide, or if the config is degenerate (no regions,
/// zero replicas).
pub fn run_fleet(
    tenants: &[TenantSpec],
    pool: &Dataset,
    trace: &FleetTrace,
    cfg: &FleetConfig,
) -> FleetReport {
    assert!(!tenants.is_empty(), "need at least one tenant");
    assert!(!cfg.regions.is_empty(), "need at least one region");
    assert!(cfg.autoscale.min_replicas >= 1, "min_replicas must be >= 1");
    for (i, a) in tenants.iter().enumerate() {
        assert!(
            tenants[i + 1..].iter().all(|b| b.name != a.name),
            "tenant name {:?} appears twice",
            a.name
        );
    }
    assert!(
        trace
            .requests
            .iter()
            .all(|r| (r.tenant as usize) < tenants.len()),
        "trace references a tenant outside the spec slice"
    );
    assert!(
        trace.pool_rows <= pool.n_rows(),
        "trace was generated for a larger row pool ({} > {})",
        trace.pool_rows,
        pool.n_rows()
    );
    let n_regions = cfg.regions.len();

    // Cold-load price of each tenant's artefact (used for scale-up charges
    // and budget checks) — a pure function of the model and the device.
    let load_cost_j: Vec<f64> = tenants
        .iter()
        .map(|t| {
            let mut probe = CostTracker::new(cfg.device, cfg.cores_per_replica);
            probe.charge(
                OpCounts::mem(t.predictor.memory_bytes()),
                ParallelProfile::serial(),
            );
            probe.measurement().energy.total_joules()
        })
        .collect();

    // Phase 1: per-tenant plans merged into the global dispatch order.
    let tenant_reqs: Vec<Vec<usize>> = (0..tenants.len())
        .map(|t| trace.tenant_requests(t as u32))
        .collect();
    let batches = form_fleet_batches(trace, &tenant_reqs, cfg.max_batch, cfg.max_delay_s);

    // Phase 2: host-parallel execution; regions share one device, so
    // durations and Joules are routing-independent.
    let workers = resolve_parallelism(cfg.host_parallelism);
    let executed: Vec<(Vec<u32>, Measurement)> = run_indexed(batches.len(), workers, |bi| {
        let b = &batches[bi];
        let rows: Vec<usize> = tenant_reqs[b.tenant][b.first..b.first + b.len]
            .iter()
            .map(|&ri| trace.requests[ri].row)
            .collect();
        let mut ds = pool.take_rows(&rows);
        ds.row_scale = 1.0;
        let mut tracker = CostTracker::new(cfg.device, cfg.cores_per_replica);
        let preds = tenants[b.tenant].predictor.predict_batch(&ds, &mut tracker);
        (preds, tracker.measurement())
    });

    // Phase 3 state. Everything below runs serially in merged batch order.
    let injector = (cfg.fault.replica_crash_p > 0.0).then(|| FaultInjector::new(cfg.fault));
    let trace_seed = cfg.fault.seed ^ 0x666c_6574; // "flet"
    let mut span_seq: u64 = 0;
    let mut batch_spans: Vec<Span> = Vec::new();

    let mut intervals: Vec<Interval> = Vec::new();
    let mut slots: Vec<Vec<Slot>> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    let mut peak: Vec<usize> = Vec::new();
    let mut last_event_s: Vec<f64> = vec![f64::NEG_INFINITY; n_regions];
    for (ri, spec) in cfg.regions.iter().enumerate() {
        let mut pool = Vec::new();
        for slot in 0..spec.initial_replicas {
            intervals.push(Interval {
                region: ri,
                slot,
                seq: span_seq,
                start_s: 0.0,
                end_s: f64::NAN,
                busy_s: 0.0,
            });
            span_seq += 1;
            pool.push(Slot {
                active: true,
                free_s: 0.0,
                interval: intervals.len() - 1,
            });
        }
        slots.push(pool);
        active.push(spec.initial_replicas);
        peak.push(spec.initial_replicas);
    }

    // Per-region accumulators (summed serially for bit-stable totals).
    let mut region_busy_j = vec![0.0f64; n_regions];
    let mut region_wasted_j = vec![0.0f64; n_regions];
    let mut region_cold_j = vec![0.0f64; n_regions];
    let mut region_co2 = vec![0.0f64; n_regions];
    let mut region_batches = vec![0usize; n_regions];
    let mut attributed = vec![0.0f64; tenants.len()];
    let mut denials = vec![0usize; tenants.len()];
    let mut tenant_retried = vec![0usize; tenants.len()];
    let mut tenant_failed = vec![0usize; tenants.len()];
    let mut events: Vec<AutoscaleEvent> = Vec::new();

    // Every region registers and warms every tenant's model at startup:
    // residency starts from one deterministic access event (see
    // `ModelRegistry::warm_all`), priced at the t = 0 grid intensity.
    let mut registries: Vec<ModelRegistry> = Vec::new();
    for spec in &cfg.regions {
        let mut reg = ModelRegistry::with_capacity_bytes(spec.registry_capacity_bytes);
        for (t, ts) in tenants.iter().enumerate() {
            reg.register_for_tenant(&ts.name, t as u32, ts.predictor.clone());
        }
        registries.push(reg);
    }
    for ri in 0..n_regions {
        let mut warm = CostTracker::new(cfg.device, cfg.cores_per_replica);
        registries[ri].warm_all(&mut warm);
        let e = warm.measurement().energy.total_joules();
        region_cold_j[ri] += e;
        region_co2[ri] += cfg.regions[ri].carbon.kg_co2(e / J_PER_KWH, 0.0, 0.0);
        // Warming loads each artefact exactly once, so the region's warm
        // energy splits across tenants at their per-model load price.
        for (t, &cost) in load_cost_j.iter().enumerate() {
            attributed[t] += cost;
        }
    }

    let n = trace.len();
    let mut latencies = vec![f64::NAN; n];
    let mut predictions = vec![0u32; n];
    let mut arrived = 0usize;
    let mut dispatched = 0usize;
    let mut depth_sum = 0usize;
    let mut max_depth = 0usize;
    let mut makespan = 0.0f64;

    for (bi, (b, (preds, meas))) in batches.iter().zip(&executed).enumerate() {
        let t_seal = b.close_s;

        // Queue depth is sampled at the seal instant — seal times are
        // sorted, so one arrivals pointer suffices and the sample never
        // depends on routing.
        while arrived < n && trace.requests[arrived].arrival_s <= t_seal {
            arrived += 1;
        }
        let depth = arrived - dispatched;
        depth_sum += depth;
        max_depth = max_depth.max(depth);
        dispatched += b.len;

        // Housekeeping: at most one idle scale-down per region per seal
        // instant, cooldown permitting. The victim is the longest-idle
        // active replica (ties by slot index).
        for ri in 0..n_regions {
            if t_seal - last_event_s[ri] < cfg.autoscale.cooldown_s {
                continue;
            }
            let victim = slots[ri]
                .iter()
                .enumerate()
                .filter(|(_, s)| s.active)
                .min_by(|(i, a), (j, b)| {
                    a.free_s
                        .partial_cmp(&b.free_s)
                        .expect("finite free times")
                        .then(i.cmp(j))
                })
                .map(|(i, _)| i);
            if let Some(si) = victim {
                let idle_s = t_seal - slots[ri][si].free_s;
                if cfg.autoscale.wants_down(idle_s, active[ri]) {
                    let iv = slots[ri][si].interval;
                    intervals[iv].end_s = t_seal;
                    slots[ri][si].active = false;
                    active[ri] -= 1;
                    events.push(AutoscaleEvent {
                        t_s: t_seal,
                        region: ri,
                        tenant: None,
                        from: active[ri] + 1,
                        to: active[ri],
                        reason: ScaleReason::IdleDown,
                    });
                    last_event_s[ri] = t_seal;
                }
            }
        }

        let mut runnable = t_seal;
        let mut crashed_attempts = 0usize;
        let mut completed = false;
        for attempt in 0..=cfg.max_retries {
            // Route: each region is viewed as (earliest free replica,
            // intensity at the would-be start).
            let views: Vec<RegionView> = (0..n_regions)
                .map(|ri| {
                    let ef = slots[ri]
                        .iter()
                        .filter(|s| s.active)
                        .map(|s| s.free_s)
                        .fold(f64::INFINITY, f64::min);
                    RegionView {
                        earliest_free_s: ef,
                        intensity: cfg.regions[ri].carbon.intensity_at(runnable.max(ef)),
                    }
                })
                .collect();
            let ri = route(&cfg.router, runnable, meas.duration_s, &views);

            // Autoscaling reacts to the queue sampled at the seal — once
            // per batch, on the routed region, budget permitting.
            if attempt == 0
                && cfg.autoscale.wants_up(depth, active[ri])
                && t_seal - last_event_s[ri] >= cfg.autoscale.cooldown_s
            {
                let t_id = b.tenant;
                if attributed[t_id] + load_cost_j[t_id] <= tenants[t_id].energy_budget_j {
                    // Reuse the lowest inactive slot or grow the pool; the
                    // fresh replica cold-loads the triggering tenant's
                    // artefact at the current intensity.
                    let si = match slots[ri].iter().position(|s| !s.active) {
                        Some(si) => si,
                        None => {
                            slots[ri].push(Slot {
                                active: false,
                                free_s: t_seal,
                                interval: usize::MAX,
                            });
                            slots[ri].len() - 1
                        }
                    };
                    intervals.push(Interval {
                        region: ri,
                        slot: si,
                        seq: span_seq,
                        start_s: t_seal,
                        end_s: f64::NAN,
                        busy_s: 0.0,
                    });
                    span_seq += 1;
                    slots[ri][si] = Slot {
                        active: true,
                        free_s: t_seal,
                        interval: intervals.len() - 1,
                    };
                    active[ri] += 1;
                    peak[ri] = peak[ri].max(active[ri]);
                    region_cold_j[ri] += load_cost_j[t_id];
                    attributed[t_id] += load_cost_j[t_id];
                    region_co2[ri] += cfg.regions[ri].carbon.kg_co2(
                        load_cost_j[t_id] / J_PER_KWH,
                        t_seal,
                        t_seal,
                    );
                    events.push(AutoscaleEvent {
                        t_s: t_seal,
                        region: ri,
                        tenant: Some(t_id as u32),
                        from: active[ri] - 1,
                        to: active[ri],
                        reason: ScaleReason::QueueDepthUp,
                    });
                } else {
                    denials[t_id] += 1;
                    events.push(AutoscaleEvent {
                        t_s: t_seal,
                        region: ri,
                        tenant: Some(t_id as u32),
                        from: active[ri],
                        to: active[ri],
                        reason: ScaleReason::BudgetDenied,
                    });
                }
                last_event_s[ri] = t_seal;
            }

            // Pick the replica that starts the batch soonest; among
            // replicas that tie on start (all already free), prefer the
            // most recently used. Packing work onto warm replicas is what
            // lets cold ones accumulate idle time for the autoscaler to
            // reclaim — earliest-free round-robin would keep every replica
            // lukewarm forever. Final ties break by slot index.
            let si = slots[ri]
                .iter()
                .enumerate()
                .filter(|(_, s)| s.active)
                .min_by(|(i, a), (j, b)| {
                    let sa = runnable.max(a.free_s);
                    let sb = runnable.max(b.free_s);
                    sa.partial_cmp(&sb)
                        .expect("finite free times")
                        .then(b.free_s.partial_cmp(&a.free_s).expect("finite free times"))
                        .then(i.cmp(j))
                })
                .map(|(i, _)| i)
                .expect("min_replicas >= 1 keeps every region non-empty");
            let start = runnable.max(slots[ri][si].free_s);

            // Serving fetches the tenant's model from the region registry;
            // a non-resident artefact (capacity thrash) pages back in here.
            let mut fetch = CostTracker::new(cfg.device, cfg.cores_per_replica);
            registries[ri]
                .fetch(&tenants[b.tenant].name, &mut fetch)
                .expect("every tenant model is registered in every region");
            let fetch_j = fetch.measurement().energy.total_joules();
            if fetch_j > 0.0 {
                region_cold_j[ri] += fetch_j;
                attributed[b.tenant] += fetch_j;
                region_co2[ri] += cfg.regions[ri]
                    .carbon
                    .kg_co2(fetch_j / J_PER_KWH, start, start);
            }

            let iv = slots[ri][si].interval;
            match injector
                .as_ref()
                .and_then(|inj| inj.replica_crash(cfg.fault.seed, bi as u64, attempt as u64))
            {
                Some(done_frac) => {
                    let crash_s = start + done_frac * meas.duration_s;
                    intervals[iv].busy_s += done_frac * meas.duration_s;
                    slots[ri][si].free_s = crash_s + cfg.fault.replica_restart_s;
                    makespan = makespan.max(slots[ri][si].free_s);
                    let wj = done_frac * meas.energy.total_joules();
                    region_wasted_j[ri] += wj;
                    attributed[b.tenant] += wj;
                    region_co2[ri] += cfg.regions[ri]
                        .carbon
                        .kg_co2(wj / J_PER_KWH, start, crash_s);
                    if cfg.trace {
                        batch_spans.push(Span {
                            id: span_id(trace_seed, span_seq),
                            parent: Some(span_id(trace_seed, intervals[iv].seq)),
                            kind: SpanKind::Batch,
                            label: format!(
                                "batch {bi} tenant {} attempt {attempt}",
                                tenants[b.tenant].name
                            ),
                            track: ((ri as u32) << 16) | si as u32,
                            start_s: start,
                            end_s: crash_s,
                            energy: EnergyBreakdown {
                                package_j: done_frac * meas.energy.package_j,
                                dram_j: done_frac * meas.energy.dram_j,
                                gpu_j: done_frac * meas.energy.gpu_j,
                            },
                            ops: OpCounts::ZERO,
                            fault: Some(FaultKind::Crash),
                        });
                        span_seq += 1;
                    }
                    let backoff = (cfg.backoff_base_s * (1u64 << attempt.min(32)) as f64)
                        .min(cfg.backoff_cap_s);
                    runnable = crash_s + backoff;
                    crashed_attempts += 1;
                }
                None => {
                    let complete = start + meas.duration_s;
                    intervals[iv].busy_s += meas.duration_s;
                    slots[ri][si].free_s = complete;
                    makespan = makespan.max(complete);
                    for (offset, &req_idx) in tenant_reqs[b.tenant][b.first..b.first + b.len]
                        .iter()
                        .enumerate()
                    {
                        let req = &trace.requests[req_idx];
                        latencies[req.id] = complete - req.arrival_s;
                        predictions[req.id] = preds[offset];
                    }
                    let ej = meas.energy.total_joules();
                    region_busy_j[ri] += ej;
                    attributed[b.tenant] += ej;
                    region_co2[ri] +=
                        cfg.regions[ri]
                            .carbon
                            .kg_co2(ej / J_PER_KWH, start, complete);
                    region_batches[ri] += 1;
                    if cfg.trace {
                        batch_spans.push(Span {
                            id: span_id(trace_seed, span_seq),
                            parent: Some(span_id(trace_seed, intervals[iv].seq)),
                            kind: SpanKind::Batch,
                            label: format!(
                                "batch {bi} tenant {} ({} rows)",
                                tenants[b.tenant].name, b.len
                            ),
                            track: ((ri as u32) << 16) | si as u32,
                            start_s: start,
                            end_s: complete,
                            energy: meas.energy,
                            ops: meas.ops,
                            fault: None,
                        });
                        span_seq += 1;
                    }
                    completed = true;
                    break;
                }
            }
        }
        if completed {
            if crashed_attempts > 0 {
                tenant_retried[b.tenant] += b.len;
            }
        } else if crashed_attempts > 0 {
            tenant_failed[b.tenant] += b.len;
        }
    }

    // Close still-powered intervals at the makespan, then price idleness:
    // a replica's powered time minus its busy time burns static power at
    // the mean intensity of its powered interval.
    let mut region_idle_j = vec![0.0f64; n_regions];
    let mut region_replica_s = vec![0.0f64; n_regions];
    let mut replica_spans: Vec<Span> = Vec::new();
    for iv in &mut intervals {
        if iv.end_s.is_nan() {
            iv.end_s = makespan;
        }
        let powered_s = (iv.end_s - iv.start_s).max(0.0);
        region_replica_s[iv.region] += powered_s;
        let idle_s = (powered_s - iv.busy_s).max(0.0);
        let mut idle_energy = EnergyBreakdown::default();
        if idle_s > 0.0 {
            let mut idle = CostTracker::new(cfg.device, cfg.cores_per_replica);
            idle.idle_for(idle_s);
            idle_energy = idle.measurement().energy;
            region_idle_j[iv.region] += idle_energy.total_joules();
            region_co2[iv.region] += cfg.regions[iv.region].carbon.kg_co2(
                idle_energy.total_joules() / J_PER_KWH,
                iv.start_s,
                iv.end_s,
            );
        }
        if cfg.trace {
            replica_spans.push(Span {
                id: span_id(trace_seed, iv.seq),
                parent: None,
                kind: SpanKind::Replica,
                label: format!("{} replica {}", cfg.regions[iv.region].name, iv.slot),
                track: ((iv.region as u32) << 16) | iv.slot as u32,
                start_s: iv.start_s,
                end_s: iv.end_s,
                energy: idle_energy,
                ops: OpCounts::ZERO,
                fault: None,
            });
        }
    }

    // Aggregate per tenant.
    let tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            let lats: Vec<f64> = tenant_reqs[t]
                .iter()
                .map(|&i| latencies[trace.requests[i].id])
                .filter(|l| !l.is_nan())
                .collect();
            let latency = if lats.is_empty() {
                LatencyStats::empty()
            } else {
                LatencyStats::from_latencies(&lats)
            };
            TenantReport {
                tenant: t as u32,
                name: spec.name.clone(),
                n_requests: tenant_reqs[t].len(),
                latency,
                p99_slo_s: spec.p99_slo_s,
                slo_ok: latency.p99_s <= spec.p99_slo_s && tenant_failed[t] == 0,
                attributed_j: attributed[t],
                retried_requests: tenant_retried[t],
                failed_requests: tenant_failed[t],
                budget_denials: denials[t],
            }
        })
        .collect();

    let region_reports: Vec<RegionReport> = cfg
        .regions
        .iter()
        .enumerate()
        .map(|(ri, spec)| {
            let stats = registries[ri].stats();
            RegionReport {
                name: spec.name.clone(),
                batches: region_batches[ri],
                busy_j: region_busy_j[ri],
                idle_j: region_idle_j[ri],
                wasted_j: region_wasted_j[ri],
                cold_load_j: region_cold_j[ri],
                kg_co2: region_co2[ri],
                replica_seconds: region_replica_s[ri],
                peak_replicas: peak[ri],
                final_replicas: active[ri],
                cold_loads: stats.cold_loads,
                evictions: stats.evictions,
            }
        })
        .collect();

    FleetReport {
        n_requests: n,
        n_batches: batches.len(),
        predictions,
        makespan_s: makespan,
        mean_queue_depth: if batches.is_empty() {
            0.0
        } else {
            depth_sum as f64 / batches.len() as f64
        },
        max_queue_depth: max_depth,
        tenants: tenant_reports,
        regions: region_reports,
        events,
        trace: cfg.trace.then(|| {
            replica_spans.extend(batch_spans);
            Trace {
                spans: replica_spans,
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{FleetTrafficConfig, Shape, TenantTraffic};
    use green_automl_energy::GridIntensity;

    fn two_tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(
                "alpha",
                Predictor::Constant {
                    class: 0,
                    n_classes: 2,
                },
                0.5,
            ),
            TenantSpec::new(
                "beta",
                Predictor::Constant {
                    class: 1,
                    n_classes: 2,
                },
                0.5,
            ),
        ]
    }

    fn two_regions() -> Vec<RegionSpec> {
        vec![
            RegionSpec::new("sweden", CarbonProfile::flat(GridIntensity::SWEDEN), 2),
            RegionSpec::new("poland", CarbonProfile::flat(GridIntensity::POLAND), 2),
        ]
    }

    fn mix(n_each: usize, rps: f64) -> FleetTrafficConfig {
        FleetTrafficConfig {
            tenants: vec![
                TenantTraffic {
                    tenant: 0,
                    rps,
                    shapes: vec![],
                    n_requests: n_each,
                    seed: 1,
                },
                TenantTraffic {
                    tenant: 1,
                    rps,
                    shapes: vec![],
                    n_requests: n_each,
                    seed: 2,
                },
            ],
        }
    }

    #[test]
    fn every_request_gets_its_tenants_answer() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = mix(150, 100.0).generate(pool.n_rows());
        let cfg = FleetConfig::cpu_testbed(two_regions());
        let report = run_fleet(&two_tenants(), &pool, &trace, &cfg);
        assert_eq!(report.n_requests, 300);
        for r in &trace.requests {
            assert_eq!(report.predictions[r.id], r.tenant, "tenant {}", r.tenant);
        }
        assert_eq!(report.slo_compliant_tenants(), 2);
        assert!(report.total_joules() > 0.0);
        assert!(report.kg_co2() > 0.0);
        assert!(report.makespan_s > 0.0);
        // Busy work landed somewhere; idle power burned everywhere.
        assert!(report.regions.iter().map(|r| r.batches).sum::<usize>() > 0);
        assert!(report.regions.iter().all(|r| r.replica_seconds > 0.0));
        // Startup warming cold-loaded both models in both regions.
        assert!(report.regions.iter().all(|r| r.cold_loads >= 2));
    }

    #[test]
    fn reports_are_identical_across_host_parallelism() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = mix(120, 200.0).generate(pool.n_rows());
        let mut cfg = FleetConfig::cpu_testbed(two_regions()).with_trace();
        cfg.host_parallelism = 1;
        let one = run_fleet(&two_tenants(), &pool, &trace, &cfg);
        cfg.host_parallelism = 3;
        let three = run_fleet(&two_tenants(), &pool, &trace, &cfg);
        assert_eq!(one, three);
        assert_eq!(one.to_text(), three.to_text());
    }

    #[test]
    fn carbon_aware_routing_cuts_co2_without_breaking_the_slo() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        // Constant predictors execute a 32-row batch in ~16ns of virtual
        // time, so genuine replica contention needs arrival rates on the
        // same scale: at 2.5e8 rps per tenant the single Swedish replica
        // is busy at ~25% of dispatch instants. The blind router spills
        // those batches into dirty Poland; the aware one happily waits
        // (the backlog is nanoseconds against 100ms of slack).
        let trace = mix(400, 2.5e8).generate(pool.n_rows());
        let tenants = two_tenants();
        let regions = vec![
            RegionSpec::new("sweden", CarbonProfile::flat(GridIntensity::SWEDEN), 1),
            RegionSpec::new("poland", CarbonProfile::flat(GridIntensity::POLAND), 1),
        ];
        let base = FleetConfig::cpu_testbed(regions).with_autoscale(AutoscalePolicy::pinned());
        let blind = run_fleet(
            &tenants,
            &pool,
            &trace,
            &base.clone().with_router(RouterPolicy::CarbonBlind),
        );
        let aware = run_fleet(
            &tenants,
            &pool,
            &trace,
            &base.with_router(RouterPolicy::CarbonAware {
                latency_slack_s: 0.1,
            }),
        );
        assert!(
            aware.kg_co2() < blind.kg_co2(),
            "aware {} vs blind {}",
            aware.kg_co2(),
            blind.kg_co2()
        );
        assert_eq!(aware.slo_compliant_tenants(), blind.slo_compliant_tenants());
        // The aware router shifts batches toward the clean region.
        assert!(aware.regions[0].batches > blind.regions[0].batches);
        // Moving batches moves CO₂, not Joules: busy totals match bitwise.
        let busy = |r: &FleetReport| r.regions.iter().fold(0.0, |a, x| a + x.busy_j);
        assert!((busy(&aware) - busy(&blind)).abs() < 1e-9);
    }

    #[test]
    fn queue_pressure_scales_up_and_idleness_scales_back_down() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        // A flash crowd on tenant 0 forces a deep queue, then silence.
        let trace = FleetTrafficConfig {
            tenants: vec![TenantTraffic {
                tenant: 0,
                rps: 100.0,
                // A short, sharp crowd: ~half the requests land in its
                // ~0.3s window, the rest trickle out over seconds of
                // post-crowd tail so idleness is actually observable.
                shapes: vec![Shape::FlashCrowd {
                    at_s: 0.5,
                    ramp_s: 0.1,
                    peak_factor: 40.0,
                    decay_s: 0.1,
                }],
                n_requests: 1_200,
                seed: 3,
            }],
        }
        .generate(pool.n_rows());
        let tenants = vec![two_tenants().swap_remove(0)];
        let regions = vec![RegionSpec::new(
            "sweden",
            CarbonProfile::flat(GridIntensity::SWEDEN),
            1,
        )];
        let mut autoscale = AutoscalePolicy::elastic(1, 6);
        autoscale.idle_s_down = 0.2;
        let cfg = FleetConfig::cpu_testbed(regions).with_autoscale(autoscale);
        let report = run_fleet(&tenants, &pool, &trace, &cfg);
        assert!(
            report
                .events
                .iter()
                .any(|e| e.reason == ScaleReason::QueueDepthUp),
            "flash crowd must trigger scale-up: {:?}",
            report.events
        );
        assert!(report.regions[0].peak_replicas > 1);
        assert!(
            report
                .events
                .iter()
                .any(|e| e.reason == ScaleReason::IdleDown),
            "post-crowd idleness must scale back down"
        );
        assert!(report.regions[0].final_replicas < report.regions[0].peak_replicas);
    }

    #[test]
    fn an_exhausted_energy_budget_denies_scale_up() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = FleetTrafficConfig {
            tenants: vec![TenantTraffic {
                tenant: 0,
                rps: 5_000.0,
                shapes: vec![],
                n_requests: 800,
                seed: 4,
            }],
        }
        .generate(pool.n_rows());
        // A budget of zero can never afford a scale-up cold load.
        let tenants = vec![TenantSpec::new(
            "starved",
            Predictor::Constant {
                class: 0,
                n_classes: 2,
            },
            10.0,
        )
        .with_budget_j(0.0)];
        let regions = vec![RegionSpec::new(
            "germany",
            CarbonProfile::flat(GridIntensity::GERMANY),
            1,
        )];
        let cfg = FleetConfig::cpu_testbed(regions).with_autoscale(AutoscalePolicy::elastic(1, 8));
        let report = run_fleet(&tenants, &pool, &trace, &cfg);
        assert!(report.tenants[0].budget_denials > 0);
        assert!(report
            .events
            .iter()
            .all(|e| e.reason != ScaleReason::QueueDepthUp));
        assert_eq!(report.regions[0].peak_replicas, 1);
    }

    #[test]
    fn chaos_faults_degrade_gracefully_and_only_add_energy() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = mix(200, 300.0).generate(pool.n_rows());
        let tenants = two_tenants();
        let base =
            FleetConfig::cpu_testbed(two_regions()).with_autoscale(AutoscalePolicy::pinned());
        let clean = run_fleet(&tenants, &pool, &trace, &base);
        let chaotic = run_fleet(
            &tenants,
            &pool,
            &trace,
            &base.with_fault(FaultPlan::chaos(21)),
        );
        assert!(chaotic.regions.iter().any(|r| r.wasted_j > 0.0));
        assert!(chaotic.tenants.iter().any(|t| t.retried_requests > 0));
        assert_eq!(
            chaotic
                .tenants
                .iter()
                .map(|t| t.failed_requests)
                .sum::<usize>(),
            0
        );
        assert_eq!(chaotic.predictions, clean.predictions);
        assert!(chaotic.total_joules() > clean.total_joules());
    }

    #[test]
    fn an_empty_trace_still_reports_the_warmed_deployment() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 10, 4, 2).generate();
        let trace = FleetTrafficConfig {
            tenants: vec![TenantTraffic {
                tenant: 0,
                rps: 0.0,
                shapes: vec![],
                n_requests: 0,
                seed: 0,
            }],
        }
        .generate(pool.n_rows());
        let tenants = vec![two_tenants().swap_remove(0)];
        let cfg = FleetConfig::cpu_testbed(two_regions());
        let report = run_fleet(&tenants, &pool, &trace, &cfg);
        assert_eq!(report.n_requests, 0);
        assert_eq!(report.n_batches, 0);
        assert_eq!(report.makespan_s, 0.0);
        // Startup warming still happened (it is part of the deployment).
        assert!(report.regions.iter().all(|r| r.cold_load_j > 0.0));
        assert!(report.events.is_empty());
    }

    #[test]
    fn registry_thrash_under_a_tight_cap_shows_up_as_cold_loads() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = mix(150, 400.0).generate(pool.n_rows());
        let tenants = two_tenants();
        let probe = tenants[0].predictor.memory_bytes();
        // Each region fits exactly ONE model: alternating tenants thrash.
        let regions =
            vec![
                RegionSpec::new("tight", CarbonProfile::flat(GridIntensity::GERMANY), 2)
                    .with_registry_capacity(1.5 * probe),
            ];
        let cfg = FleetConfig::cpu_testbed(regions).with_autoscale(AutoscalePolicy::pinned());
        let report = run_fleet(&tenants, &pool, &trace, &cfg);
        assert!(report.regions[0].evictions > 0, "one-model cap must thrash");
        assert!(report.regions[0].cold_loads > 2);
        assert!(report.regions[0].cold_load_j > 0.0);
    }
}
