//! Replica autoscaling policy and event log.
//!
//! Each fleet region owns a pool of replica slots that grows under queue
//! pressure and shrinks when replicas sit idle. The policy here is
//! deliberately simple hysteresis — a queue-depth-per-replica trigger for
//! scale-up, an idle-time trigger for scale-down, and a per-region
//! cooldown between events so the two triggers cannot flap against each
//! other — because the point is not a clever controller but a
//! *deterministic, energy-metered* one:
//!
//! * scale-up is charged as a cold model load (the new replica pages the
//!   triggering tenant's artefact into memory) through the region's
//!   [`CostTracker`](green_automl_energy::CostTracker);
//! * scale-up is *denied* when the triggering tenant's attributed energy
//!   would exceed its budget — the denial is logged, so "who was refused
//!   capacity and when" is part of the deterministic record;
//! * every decision happens at a batch-seal instant inside the serial
//!   dispatch phase, so the event log is a pure function of the trace and
//!   the deployment, never of `host_parallelism`.

/// Hysteresis knobs for the per-region replica pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// A region never drops below this many active replicas.
    pub min_replicas: usize,
    /// …and never grows above this many.
    pub max_replicas: usize,
    /// Scale up when the queue at a seal instant is deeper than
    /// `queue_per_replica_up × active_replicas` in the routed region.
    pub queue_per_replica_up: usize,
    /// Scale down a replica that has been idle longer than this, virtual
    /// seconds.
    pub idle_s_down: f64,
    /// Minimum virtual time between scale events (including denials) in
    /// one region.
    pub cooldown_s: f64,
}

impl AutoscalePolicy {
    /// No elasticity: regions keep their initial replica counts forever.
    pub fn pinned() -> AutoscalePolicy {
        AutoscalePolicy {
            min_replicas: 1,
            max_replicas: usize::MAX,
            queue_per_replica_up: usize::MAX,
            idle_s_down: f64::INFINITY,
            cooldown_s: 0.0,
        }
    }

    /// An elastic pool between `min` and `max` replicas with moderate
    /// hysteresis: scale up past 16 queued requests per active replica
    /// (queue depth is sampled at batch seal instants and includes the
    /// sealing batch, so a single full 32-row batch clears the first
    /// threshold), scale down after a second of idleness, half-second
    /// cooldown.
    pub fn elastic(min: usize, max: usize) -> AutoscalePolicy {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        AutoscalePolicy {
            min_replicas: min,
            max_replicas: max,
            queue_per_replica_up: 16,
            idle_s_down: 1.0,
            cooldown_s: 0.5,
        }
    }

    /// `true` when queue depth justifies another replica.
    pub fn wants_up(&self, queue_depth: usize, active: usize) -> bool {
        active < self.max_replicas && queue_depth > self.queue_per_replica_up.saturating_mul(active)
    }

    /// `true` when a replica idle for `idle_s` should power down.
    pub fn wants_down(&self, idle_s: f64, active: usize) -> bool {
        active > self.min_replicas && idle_s > self.idle_s_down
    }
}

/// Why a scale event happened (or was refused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleReason {
    /// Queue depth crossed the scale-up threshold.
    QueueDepthUp,
    /// A replica sat idle past the scale-down threshold.
    IdleDown,
    /// Scale-up was justified but the triggering tenant's energy budget
    /// refused the cold load; the pool is unchanged.
    BudgetDenied,
}

impl ScaleReason {
    /// Stable lower-case label for logs and artefacts.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScaleReason::QueueDepthUp => "queue-depth-up",
            ScaleReason::IdleDown => "idle-down",
            ScaleReason::BudgetDenied => "budget-denied",
        }
    }
}

/// One entry in the fleet's autoscale log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleEvent {
    /// Virtual instant of the decision, seconds.
    pub t_s: f64,
    /// Region the decision applied to.
    pub region: usize,
    /// Tenant that triggered it (`None` for idle scale-downs, which are
    /// pool-wide housekeeping).
    pub tenant: Option<u32>,
    /// Active replicas before.
    pub from: usize,
    /// Active replicas after (equal to `from` for denials).
    pub to: usize,
    /// What drove the decision.
    pub reason: ScaleReason,
}

impl AutoscaleEvent {
    /// Canonical single-line rendering used by `FleetReport::to_text`.
    pub fn to_line(&self) -> String {
        let tenant = match self.tenant {
            Some(t) => t.to_string(),
            None => "-".to_string(),
        };
        format!(
            "t={:?} region={} tenant={} {}: {} -> {}",
            self.t_s,
            self.region,
            tenant,
            self.reason.as_str(),
            self.from,
            self.to
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_policy_never_scales() {
        let p = AutoscalePolicy::pinned();
        assert!(!p.wants_up(1_000_000, 1));
        assert!(!p.wants_down(1e12, 8));
    }

    #[test]
    fn elastic_policy_reacts_to_queue_and_idleness() {
        let p = AutoscalePolicy::elastic(1, 4);
        assert!(p.wants_up(33, 2), "33 queued > 16×2");
        assert!(!p.wants_up(32, 2), "32 queued is exactly the threshold");
        assert!(!p.wants_up(100, 4), "at max");
        assert!(p.wants_down(1.5, 2));
        assert!(!p.wants_down(0.5, 2));
        assert!(!p.wants_down(10.0, 1), "at min");
    }

    #[test]
    fn event_lines_are_stable() {
        let up = AutoscaleEvent {
            t_s: 1.5,
            region: 2,
            tenant: Some(1),
            from: 2,
            to: 3,
            reason: ScaleReason::QueueDepthUp,
        };
        assert_eq!(
            up.to_line(),
            "t=1.5 region=2 tenant=1 queue-depth-up: 2 -> 3"
        );
        let down = AutoscaleEvent {
            t_s: 4.0,
            region: 0,
            tenant: None,
            from: 3,
            to: 2,
            reason: ScaleReason::IdleDown,
        };
        assert_eq!(down.to_line(), "t=4.0 region=0 tenant=- idle-down: 3 -> 2");
    }
}
