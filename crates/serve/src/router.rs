//! Carbon-aware regional dispatch.
//!
//! A fleet spans simulated grid regions whose carbon intensity varies over
//! the day ([`CarbonProfile`](green_automl_energy::CarbonProfile)). The
//! router decides, per sealed batch, which region executes it. The
//! carbon-blind baseline ignores the grid entirely and picks the region
//! that completes the batch earliest; the carbon-aware policy considers
//! every region whose completion lands within `latency_slack_s` of the
//! best and picks the one whose grid is cleanest *at the moment the batch
//! would start there* — trading a bounded amount of latency for CO₂.
//!
//! Routing is a pure function of its inputs (policy, runnable time,
//! execution time, per-region views), so fleet dispatch stays
//! byte-identical at every host parallelism: the views are built serially
//! in fleet phase 3 and contain no wall-clock state.

/// How dispatch chooses a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouterPolicy {
    /// Ignore the grid: earliest completion wins, ties by region index.
    CarbonBlind,
    /// Among regions completing within `latency_slack_s` of the best,
    /// pick the lowest instantaneous carbon intensity; ties by earlier
    /// completion, then region index.
    CarbonAware {
        /// How much extra completion delay the router may trade for a
        /// cleaner grid, virtual seconds.
        latency_slack_s: f64,
    },
}

impl RouterPolicy {
    /// Short policy name for reports and artefacts.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::CarbonBlind => "carbon-blind",
            RouterPolicy::CarbonAware { .. } => "carbon-aware",
        }
    }
}

/// A region as the router sees it at one dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionView {
    /// When the region's earliest-free active replica becomes available.
    pub earliest_free_s: f64,
    /// The region's grid intensity (kg CO₂/kWh) at the instant the batch
    /// would start there.
    pub intensity: f64,
}

/// Pick the region a batch runnable at `runnable_s` (taking `exec_s` to
/// execute) dispatches to. Returns the region index.
///
/// # Panics
/// Panics if `regions` is empty or any view is non-finite.
pub fn route(policy: &RouterPolicy, runnable_s: f64, exec_s: f64, regions: &[RegionView]) -> usize {
    assert!(!regions.is_empty(), "cannot route without regions");
    let completion = |v: &RegionView| {
        let c = runnable_s.max(v.earliest_free_s) + exec_s;
        assert!(c.is_finite(), "non-finite completion estimate");
        c
    };
    match *policy {
        RouterPolicy::CarbonBlind => {
            // min_by keeps the first minimum, so iteration order is the
            // region-index tie-break.
            regions
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    completion(a)
                        .partial_cmp(&completion(b))
                        .expect("finite completions")
                })
                .map(|(i, _)| i)
                .expect("non-empty regions")
        }
        RouterPolicy::CarbonAware { latency_slack_s } => {
            assert!(
                latency_slack_s.is_finite() && latency_slack_s >= 0.0,
                "latency slack must be finite and non-negative"
            );
            let best = regions.iter().map(completion).fold(f64::INFINITY, f64::min);
            regions
                .iter()
                .enumerate()
                .filter(|(_, v)| completion(v) <= best + latency_slack_s)
                .min_by(|(_, a), (_, b)| {
                    (a.intensity, completion(a))
                        .partial_cmp(&(b.intensity, completion(b)))
                        .expect("finite intensities")
                })
                .map(|(i, _)| i)
                .expect("the best-completion region is always feasible")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(v: &[(f64, f64)]) -> Vec<RegionView> {
        v.iter()
            .map(|&(earliest_free_s, intensity)| RegionView {
                earliest_free_s,
                intensity,
            })
            .collect()
    }

    #[test]
    fn blind_routing_takes_the_earliest_completion() {
        let r = views(&[(2.0, 0.01), (0.5, 0.9), (1.0, 0.5)]);
        assert_eq!(route(&RouterPolicy::CarbonBlind, 0.0, 0.1, &r), 1);
        // A late runnable time flattens the difference: all free before
        // the batch is runnable → completion ties → lowest index wins.
        assert_eq!(route(&RouterPolicy::CarbonBlind, 5.0, 0.1, &r), 0);
    }

    #[test]
    fn aware_routing_trades_slack_for_a_cleaner_grid() {
        // Region 1 completes first but is dirty; region 0 is clean and
        // 0.3s behind. With 0.5s slack the clean region wins; with 0.1s
        // it is infeasible and the dirty one keeps the batch.
        let r = views(&[(0.8, 0.05), (0.5, 0.7)]);
        let wide = RouterPolicy::CarbonAware {
            latency_slack_s: 0.5,
        };
        let tight = RouterPolicy::CarbonAware {
            latency_slack_s: 0.1,
        };
        assert_eq!(route(&wide, 0.0, 0.1, &r), 0);
        assert_eq!(route(&tight, 0.0, 0.1, &r), 1);
    }

    #[test]
    fn zero_slack_aware_still_prefers_clean_on_exact_ties() {
        let r = views(&[(1.0, 0.9), (1.0, 0.1)]);
        let p = RouterPolicy::CarbonAware {
            latency_slack_s: 0.0,
        };
        assert_eq!(route(&p, 0.0, 0.2, &r), 1);
    }

    #[test]
    fn aware_ties_on_intensity_break_by_completion_then_index() {
        let same = views(&[(2.0, 0.3), (1.0, 0.3), (1.0, 0.3)]);
        let p = RouterPolicy::CarbonAware {
            latency_slack_s: 10.0,
        };
        assert_eq!(route(&p, 0.0, 0.1, &same), 1);
    }

    #[test]
    #[should_panic(expected = "cannot route")]
    fn empty_region_set_panics() {
        let _ = route(&RouterPolicy::CarbonBlind, 0.0, 0.1, &[]);
    }
}
