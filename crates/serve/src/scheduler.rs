//! The micro-batching request scheduler.
//!
//! Serving runs in three deterministic phases:
//!
//! 1. **Batch formation** from arrival times alone: consecutive requests
//!    coalesce until the batch holds `max_batch` rows or `max_delay_s` has
//!    passed since its first arrival. Because formation never looks at
//!    service times, the batch plan is a pure function of the trace.
//! 2. **Batch execution**: every batch owns a private
//!    [`CostTracker`], so the expensive inference work can fan out over
//!    host threads with `green_automl_core::executor::run_indexed` — the
//!    same ownership discipline as the benchmark grid — and the resulting
//!    predictions, durations, and Joules are byte-identical at every host
//!    worker count.
//! 3. **Queueing simulation**: closed batches are dispatched FIFO onto
//!    `replicas` simulated serving replicas (earliest-free wins, ties by
//!    index). Batch start/completion times give per-request latency and
//!    queue depth; replica idle time burns static power, so an
//!    over-provisioned pool is visible in the energy report.

use green_automl_core::executor::{resolve_parallelism, run_indexed};
use green_automl_core::fault::{FaultInjector, FaultPlan};
use green_automl_dataset::Dataset;
use green_automl_energy::trace::span_id;
use green_automl_energy::{
    CostTracker, Device, EnergyBreakdown, FaultKind, Measurement, OpCounts, Span, SpanKind, Trace,
};
use green_automl_systems::Predictor;

use crate::report::{LatencyStats, ServingReport};
use crate::traffic::TrafficTrace;

/// How the serving layer batches and executes requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// A batch dispatches as soon as it holds this many requests.
    pub max_batch: usize,
    /// …or as soon as this much virtual time has passed since the batch's
    /// first arrival, whichever comes first.
    pub max_delay_s: f64,
    /// Simulated serving replicas executing batches concurrently. More
    /// replicas cut queueing latency but burn more idle power — changing
    /// this changes the report (it is part of the deployment), unlike
    /// `host_parallelism`.
    pub replicas: usize,
    /// Cores allocated to each replica.
    pub cores_per_replica: usize,
    /// Hardware model the replicas run on.
    pub device: Device,
    /// Host threads used to execute batch inference while *building* the
    /// report (`0` = one per available core). Purely an execution detail:
    /// the report is byte-identical at every setting.
    pub host_parallelism: usize,
    /// Seeded fault plan; its `replica_crash_p` / `replica_restart_s`
    /// drive mid-batch replica crashes (the trial probabilities are
    /// ignored here). Disabled by default.
    pub fault: FaultPlan,
    /// Redispatch attempts after a replica crash before the batch's
    /// requests count as failed.
    pub max_retries: usize,
    /// First retry waits this long after the crash; each further retry
    /// doubles it (capped by `backoff_cap_s`). Virtual seconds.
    pub backoff_base_s: f64,
    /// Upper bound on the exponential backoff, virtual seconds.
    pub backoff_cap_s: f64,
    /// Shed a whole batch at dispatch when the queue is deeper than this
    /// (`0` = never shed). Shed requests are never executed and cost no
    /// energy.
    pub shed_queue_depth: usize,
    /// Record a span trace of the run: one `Replica` span per replica
    /// and one `Batch` span per dispatch attempt. Like
    /// `host_parallelism`, this never changes any measured number — it
    /// only adds the `trace` field to the report.
    pub trace: bool,
}

impl ServeConfig {
    /// A single-core-replica deployment on the paper's CPU testbed with the
    /// given replica count. Fault injection off, three retries, no
    /// load shedding.
    pub fn cpu_testbed(replicas: usize) -> ServeConfig {
        ServeConfig {
            max_batch: 32,
            max_delay_s: 0.02,
            replicas,
            cores_per_replica: 1,
            device: Device::xeon_gold_6132(),
            host_parallelism: 0,
            fault: FaultPlan::disabled(),
            max_retries: 3,
            backoff_base_s: 0.05,
            backoff_cap_s: 1.0,
            shed_queue_depth: 0,
            trace: false,
        }
    }

    /// The same deployment with a fault plan installed.
    pub fn with_fault(mut self, fault: FaultPlan) -> ServeConfig {
        self.fault = fault;
        self
    }

    /// The same deployment with span tracing on.
    pub fn with_trace(mut self) -> ServeConfig {
        self.trace = true;
        self
    }
}

/// A planned micro-batch: `len` consecutive requests starting at trace
/// index `first`, sealed at `close_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Batch {
    first: usize,
    len: usize,
    close_s: f64,
}

/// Phase 1: coalesce the trace into batches. Pure in the trace and the two
/// batching knobs.
fn form_batches(trace: &TrafficTrace, max_batch: usize, max_delay_s: f64) -> Vec<Batch> {
    assert!(max_batch >= 1, "max_batch must be at least 1");
    assert!(
        max_delay_s >= 0.0 && max_delay_s.is_finite(),
        "max_delay_s must be finite and non-negative"
    );
    let reqs = &trace.requests;
    let mut batches = Vec::new();
    let mut first = 0usize;
    while first < reqs.len() {
        let deadline = reqs[first].arrival_s + max_delay_s;
        let mut len = 1usize;
        while len < max_batch && first + len < reqs.len() && reqs[first + len].arrival_s <= deadline
        {
            len += 1;
        }
        // A full batch seals the instant its last request arrives; an
        // underfull one waits out the delay timer (the scheduler cannot
        // know no further request is coming).
        let close_s = if len == max_batch {
            reqs[first + len - 1].arrival_s
        } else {
            deadline
        };
        batches.push(Batch {
            first,
            len,
            close_s,
        });
        first += len;
    }
    batches
}

/// Replay `trace` against `predictor`, drawing request feature rows from
/// `pool`, and aggregate the run into a [`ServingReport`].
///
/// Determinism: the report — predictions, latencies, histogram, Joules —
/// is byte-identical for every `cfg.host_parallelism`, every run, **with
/// or without fault injection**: crash decisions are pure functions of
/// `(fault seed, batch index, attempt index)`. The *deployment* knobs
/// (`replicas`, `max_batch`, `max_delay_s`, device, fault plan)
/// legitimately change it.
///
/// Degradation under faults is graceful, never fatal: a crashed batch is
/// retried with capped exponential backoff and counts as failed only when
/// its retries run out; an over-deep queue sheds whole batches when
/// `shed_queue_depth` is set. An empty trace (e.g. a zero-rate
/// [`TrafficConfig`](crate::traffic::TrafficConfig)) yields an all-zero
/// report.
///
/// # Panics
/// Panics if the trace references rows outside `pool`.
pub fn serve(
    predictor: &Predictor,
    pool: &Dataset,
    trace: &TrafficTrace,
    cfg: &ServeConfig,
) -> ServingReport {
    if trace.is_empty() {
        return ServingReport {
            n_requests: 0,
            n_batches: 0,
            predictions: Vec::new(),
            latency: LatencyStats::empty(),
            batch_sizes: std::collections::BTreeMap::new(),
            mean_queue_depth: 0.0,
            max_queue_depth: 0,
            busy_j: 0.0,
            idle_j: 0.0,
            makespan_s: 0.0,
            ops: OpCounts::ZERO,
            retried_requests: 0,
            shed_requests: 0,
            failed_requests: 0,
            wasted_j: 0.0,
            trace: cfg.trace.then(Trace::empty),
        };
    }
    assert!(
        trace.pool_rows <= pool.n_rows(),
        "trace was generated for a larger row pool ({} > {})",
        trace.pool_rows,
        pool.n_rows()
    );
    assert!(cfg.replicas >= 1, "need at least one replica");
    let batches = form_batches(trace, cfg.max_batch, cfg.max_delay_s);

    // Phase 2: execute every batch on its own tracker; host-parallel, with
    // results reassembled in batch order.
    let workers = resolve_parallelism(cfg.host_parallelism);
    let executed: Vec<(Vec<u32>, Measurement)> = run_indexed(batches.len(), workers, |bi| {
        let b = &batches[bi];
        let rows: Vec<usize> = trace.requests[b.first..b.first + b.len]
            .iter()
            .map(|r| r.row)
            .collect();
        let mut ds = pool.take_rows(&rows);
        // The pool may carry a `row_scale` from benchmark materialisation;
        // a served batch is exactly `len` real rows.
        ds.row_scale = 1.0;
        let mut tracker = CostTracker::new(cfg.device, cfg.cores_per_replica);
        let preds = predictor.predict_batch(&ds, &mut tracker);
        (preds, tracker.measurement())
    });

    // Phase 3: FIFO dispatch onto the replica pool. First-attempt batch
    // starts are non-decreasing (close times are sorted and the earliest-
    // free replica only moves forward), so a single pointer suffices for
    // arrival counts; retries start later but never sample queue depth.
    let injector = (cfg.fault.replica_crash_p > 0.0).then(|| FaultInjector::new(cfg.fault));
    let n = trace.len();
    let mut replica_free = vec![0.0f64; cfg.replicas];
    let mut replica_busy = vec![0.0f64; cfg.replicas];
    let mut latencies = vec![f64::NAN; n]; // NaN = not completed
    let mut predictions = vec![0u32; n];
    let mut batch_sizes = std::collections::BTreeMap::new();
    let mut depth_sum = 0usize;
    let mut max_depth = 0usize;
    let mut arrived = 0usize; // requests with arrival_s <= current start
    let mut dispatched = 0usize; // requests in batches started or shed so far
    let mut makespan = 0.0f64;
    let mut busy_j = 0.0f64;
    let mut wasted_j = 0.0f64;
    let mut retried_requests = 0usize;
    let mut shed_requests = 0usize;
    let mut failed_requests = 0usize;
    let mut total_ops = OpCounts::ZERO;

    // Span ids derive from the fault seed and a fixed tag ("serv"), with
    // the first `replicas` sequence numbers reserved for the replica
    // spans. Phase 3 is serial, so the batch-attempt sequence counter is a
    // pure function of the trace and the deployment — never of
    // `host_parallelism`.
    let trace_seed = cfg.fault.seed ^ 0x7365_7276;
    let mut batch_spans: Vec<Span> = Vec::new();
    let mut span_seq = cfg.replicas as u64;

    for (bi, (b, (preds, meas))) in batches.iter().zip(&executed).enumerate() {
        // The batch becomes runnable when it seals; a crash pushes this
        // forward by the backoff before the next attempt queues.
        let mut runnable_s = b.close_s;
        let mut crashed_attempts = 0usize;
        let mut completed = false;
        for attempt in 0..=cfg.max_retries {
            let replica = (0..cfg.replicas)
                .min_by(|&a, &z| {
                    replica_free[a]
                        .partial_cmp(&replica_free[z])
                        .expect("finite times")
                })
                .expect("at least one replica");
            let start = runnable_s.max(replica_free[replica]);

            if attempt == 0 {
                while arrived < n && trace.requests[arrived].arrival_s <= start {
                    arrived += 1;
                }
                let depth = arrived - dispatched;
                depth_sum += depth;
                max_depth = max_depth.max(depth);
                dispatched += b.len;
                // Load shedding: refuse the whole batch while the queue is
                // over the threshold — it never executes, costs nothing.
                if cfg.shed_queue_depth > 0 && depth > cfg.shed_queue_depth {
                    shed_requests += b.len;
                    break;
                }
            }

            match injector
                .as_ref()
                .and_then(|inj| inj.replica_crash(cfg.fault.seed, bi as u64, attempt as u64))
            {
                Some(done_frac) => {
                    // The replica dies `done_frac` of the way through: the
                    // partial execution is wasted energy, the replica is
                    // unavailable while it restarts, and the batch backs
                    // off exponentially before redispatch.
                    let crash_s = start + done_frac * meas.duration_s;
                    replica_busy[replica] += done_frac * meas.duration_s;
                    replica_free[replica] = crash_s + cfg.fault.replica_restart_s;
                    makespan = makespan.max(replica_free[replica]);
                    wasted_j += done_frac * meas.energy.total_joules();
                    crashed_attempts += 1;
                    if cfg.trace {
                        batch_spans.push(Span {
                            id: span_id(trace_seed, span_seq),
                            parent: Some(span_id(trace_seed, replica as u64)),
                            kind: SpanKind::Batch,
                            label: format!("batch {bi} attempt {attempt}"),
                            track: replica as u32,
                            start_s: start,
                            end_s: crash_s,
                            energy: EnergyBreakdown {
                                package_j: done_frac * meas.energy.package_j,
                                dram_j: done_frac * meas.energy.dram_j,
                                gpu_j: done_frac * meas.energy.gpu_j,
                            },
                            ops: OpCounts::ZERO,
                            fault: Some(FaultKind::Crash),
                        });
                        span_seq += 1;
                    }
                    let backoff = (cfg.backoff_base_s * (1u64 << attempt.min(32)) as f64)
                        .min(cfg.backoff_cap_s);
                    runnable_s = crash_s + backoff;
                }
                None => {
                    let complete = start + meas.duration_s;
                    replica_free[replica] = complete;
                    replica_busy[replica] += meas.duration_s;
                    makespan = makespan.max(complete);
                    for (offset, req) in trace.requests[b.first..b.first + b.len].iter().enumerate()
                    {
                        latencies[req.id] = complete - req.arrival_s;
                        predictions[req.id] = preds[offset];
                    }
                    *batch_sizes.entry(b.len).or_insert(0usize) += 1;
                    busy_j += meas.energy.total_joules();
                    total_ops += meas.ops;
                    if cfg.trace {
                        batch_spans.push(Span {
                            id: span_id(trace_seed, span_seq),
                            parent: Some(span_id(trace_seed, replica as u64)),
                            kind: SpanKind::Batch,
                            label: format!("batch {bi} ({} rows)", b.len),
                            track: replica as u32,
                            start_s: start,
                            end_s: complete,
                            energy: meas.energy,
                            ops: meas.ops,
                            fault: None,
                        });
                        span_seq += 1;
                    }
                    completed = true;
                    break;
                }
            }
        }
        if completed {
            if crashed_attempts > 0 {
                retried_requests += b.len;
            }
        } else if crashed_attempts > 0 {
            failed_requests += b.len;
        }
    }

    // Replicas are powered for the whole makespan; time not spent computing
    // burns static power. Summed in replica order for bit-stable totals.
    let mut idle_j = 0.0f64;
    let mut replica_spans: Vec<Span> = Vec::new();
    for r in 0..cfg.replicas {
        let idle_s = makespan - replica_busy[r];
        let mut idle_energy = EnergyBreakdown::default();
        if idle_s > 0.0 {
            let mut idle = CostTracker::new(cfg.device, cfg.cores_per_replica);
            idle.idle_for(idle_s);
            idle_energy = idle.measurement().energy;
            idle_j += idle_energy.total_joules();
        }
        if cfg.trace {
            // The replica span covers the whole makespan; its energy is
            // the replica's *idle* draw — the busy energy lives on the
            // child `Batch` spans, so the tree sums without double
            // counting.
            replica_spans.push(Span {
                id: span_id(trace_seed, r as u64),
                parent: None,
                kind: SpanKind::Replica,
                label: format!("replica {r}"),
                track: r as u32,
                start_s: 0.0,
                end_s: makespan,
                energy: idle_energy,
                ops: OpCounts::ZERO,
                fault: None,
            });
        }
    }

    // Failed and shed requests have no completion time; the latency
    // summary covers completed requests only.
    let completed_latencies: Vec<f64> = latencies.iter().copied().filter(|l| !l.is_nan()).collect();
    let latency = if completed_latencies.is_empty() {
        LatencyStats::empty()
    } else {
        LatencyStats::from_latencies(&completed_latencies)
    };

    ServingReport {
        n_requests: n,
        n_batches: batches.len(),
        predictions,
        latency,
        batch_sizes,
        mean_queue_depth: depth_sum as f64 / batches.len() as f64,
        max_queue_depth: max_depth,
        busy_j,
        idle_j,
        makespan_s: makespan,
        ops: total_ops,
        retried_requests,
        shed_requests,
        failed_requests,
        wasted_j,
        trace: cfg.trace.then(|| {
            replica_spans.extend(batch_spans);
            Trace {
                spans: replica_spans,
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{Request, TrafficConfig};

    fn trace_at(arrivals: &[f64]) -> TrafficTrace {
        TrafficTrace {
            requests: arrivals
                .iter()
                .enumerate()
                .map(|(id, &arrival_s)| Request {
                    id,
                    arrival_s,
                    row: 0,
                })
                .collect(),
            pool_rows: 1,
        }
    }

    #[test]
    fn full_batches_seal_on_arrival_and_stragglers_wait_out_the_timer() {
        let trace = trace_at(&[0.0, 0.001, 0.002, 0.5]);
        let b = form_batches(&trace, 3, 0.01);
        assert_eq!(
            b,
            vec![
                Batch {
                    first: 0,
                    len: 3,
                    close_s: 0.002
                },
                Batch {
                    first: 3,
                    len: 1,
                    close_s: 0.51
                },
            ]
        );
    }

    #[test]
    fn zero_delay_degenerates_to_row_at_a_time() {
        let trace = trace_at(&[0.0, 0.1, 0.2]);
        let b = form_batches(&trace, 32, 0.0);
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|x| x.len == 1));
    }

    #[test]
    fn serving_a_constant_predictor_reports_sane_numbers() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 100.0,
            n_requests: 200,
            seed: 5,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 1,
            n_classes: 2,
        };
        let report = serve(&p, &pool, &trace, &ServeConfig::cpu_testbed(2));
        assert_eq!(report.n_requests, 200);
        assert_eq!(report.predictions, vec![1u32; 200]);
        assert!(report.busy_j > 0.0);
        assert!(report.idle_j > 0.0, "two replicas at 100 rps must idle");
        assert!(report.latency.p50_s > 0.0);
        assert!(report.latency.p99_s >= report.latency.p50_s);
        assert!(report.makespan_s >= trace.requests.last().unwrap().arrival_s);
        let batched: usize = report.batch_sizes.iter().map(|(s, c)| s * c).sum();
        assert_eq!(batched, 200);
    }

    #[test]
    fn an_empty_trace_serves_to_an_all_zero_report() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 10, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 0.0,
            n_requests: 50,
            seed: 3,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 0,
            n_classes: 2,
        };
        let report = serve(&p, &pool, &trace, &ServeConfig::cpu_testbed(2));
        assert_eq!(report.n_requests, 0);
        assert_eq!(report.n_batches, 0);
        assert!(report.predictions.is_empty());
        assert_eq!(report.total_joules(), 0.0);
        assert_eq!(report.makespan_s, 0.0);
        assert_eq!(report.latency, crate::report::LatencyStats::empty());
        assert_eq!(report.joules_per_request(), 0.0);
        assert_eq!(report.throughput_rps(), 0.0);
    }

    #[test]
    fn replica_crashes_waste_energy_but_requests_still_complete() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 300.0,
            n_requests: 400,
            seed: 11,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 1,
            n_classes: 2,
        };
        let clean = serve(&p, &pool, &trace, &ServeConfig::cpu_testbed(3));
        let faulty_cfg =
            ServeConfig::cpu_testbed(3).with_fault(green_automl_core::fault::FaultPlan::chaos(21));
        let faulty = serve(&p, &pool, &trace, &faulty_cfg);

        assert!(faulty.wasted_j > 0.0, "chaos plan must crash something");
        assert!(faulty.retried_requests > 0);
        assert_eq!(faulty.failed_requests, 0, "3 retries ride out 5% crashes");
        assert_eq!(faulty.shed_requests, 0, "shedding is off by default");
        // Every request still gets the same answer as the clean run…
        assert_eq!(faulty.predictions, clean.predictions);
        // …every batch eventually executes exactly once, so the productive
        // energy is bitwise the work of the clean run; crashes only add.
        assert_eq!(faulty.busy_j.to_bits(), clean.busy_j.to_bits());
        assert!(faulty.total_joules() > clean.total_joules());
        assert!(faulty.latency.p99_s >= clean.latency.p99_s);
    }

    #[test]
    fn certain_crashes_exhaust_retries_into_failed_requests() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 20, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 100.0,
            n_requests: 60,
            seed: 4,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 0,
            n_classes: 2,
        };
        let mut cfg = ServeConfig::cpu_testbed(2);
        cfg.fault = green_automl_core::fault::FaultPlan {
            seed: 9,
            replica_crash_p: 1.0,
            replica_restart_s: 0.1,
            ..green_automl_core::fault::FaultPlan::disabled()
        };
        let report = serve(&p, &pool, &trace, &cfg);
        assert_eq!(report.failed_requests, 60, "every attempt crashes");
        assert_eq!(report.retried_requests, 0);
        assert_eq!(report.busy_j, 0.0, "nothing ever completed");
        assert!(report.wasted_j > 0.0);
        assert_eq!(report.latency, crate::report::LatencyStats::empty());
    }

    #[test]
    fn deep_queues_shed_whole_batches_without_energy() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 30, 4, 2).generate();
        // A single replica at a very high arrival rate builds a deep queue.
        let trace = TrafficConfig {
            rps: 100_000.0,
            n_requests: 600,
            seed: 8,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 0,
            n_classes: 2,
        };
        let unshed = serve(&p, &pool, &trace, &ServeConfig::cpu_testbed(1));
        assert!(unshed.max_queue_depth > 4, "need real queueing to shed");
        let mut cfg = ServeConfig::cpu_testbed(1);
        cfg.shed_queue_depth = 4;
        let shed = serve(&p, &pool, &trace, &cfg);
        assert!(shed.shed_requests > 0);
        assert_eq!(shed.failed_requests, 0);
        assert!(
            shed.busy_j < unshed.busy_j,
            "shed batches must not burn compute"
        );
        let answered: usize = shed.batch_sizes.iter().map(|(s, c)| s * c).sum();
        assert_eq!(answered + shed.shed_requests, 600);
    }

    #[test]
    fn traces_are_deterministic_and_reconcile_with_the_report() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 300.0,
            n_requests: 200,
            seed: 7,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 1,
            n_classes: 2,
        };
        let base = ServeConfig::cpu_testbed(2);
        assert!(serve(&p, &pool, &trace, &base).trace.is_none());

        let traced_cfg = base.with_trace();
        let report = serve(&p, &pool, &trace, &traced_cfg);
        // Tracing never changes a measured number.
        let untraced = serve(&p, &pool, &trace, &base);
        assert_eq!(report.busy_j.to_bits(), untraced.busy_j.to_bits());
        assert_eq!(report.predictions, untraced.predictions);

        // The serialized trace is byte-identical at every host worker count.
        let mut wide = traced_cfg;
        wide.host_parallelism = 7;
        let wide_report = serve(&p, &pool, &trace, &wide);
        let t = report.trace.expect("tracing was on");
        assert_eq!(
            t.to_jsonl(),
            wide_report.trace.expect("tracing was on").to_jsonl()
        );

        // One Replica root per replica; batch spans sum bitwise to busy_j
        // and replica (idle) spans to idle_j — same accumulation order.
        assert_eq!(t.roots().count(), 2);
        let span_busy = t
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Batch && s.fault.is_none())
            .fold(0.0f64, |acc, s| acc + s.energy.total_joules());
        assert_eq!(span_busy.to_bits(), report.busy_j.to_bits());
        let span_idle = t
            .roots()
            .fold(0.0f64, |acc, s| acc + s.energy.total_joules());
        assert_eq!(span_idle.to_bits(), report.idle_j.to_bits());
    }

    #[test]
    fn crashed_attempts_appear_as_fault_tagged_batch_spans() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 40, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 300.0,
            n_requests: 400,
            seed: 11,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 1,
            n_classes: 2,
        };
        let cfg = ServeConfig::cpu_testbed(3)
            .with_fault(green_automl_core::fault::FaultPlan::chaos(21))
            .with_trace();
        let report = serve(&p, &pool, &trace, &cfg);
        assert!(report.wasted_j > 0.0);
        let t = report.trace.expect("tracing was on");
        let crashed: Vec<&Span> = t
            .spans
            .iter()
            .filter(|s| s.fault == Some(FaultKind::Crash))
            .collect();
        assert!(!crashed.is_empty(), "chaos must tag crashed attempts");
        assert!(crashed.iter().all(|s| s.kind == SpanKind::Batch));
        // Crashed attempts cost energy but never report completed ops.
        assert!(crashed.iter().all(|s| s.energy.total_joules() > 0.0));
        assert!(crashed.iter().all(|s| s.ops == OpCounts::ZERO));
        // Every span hangs off a replica root, and ids are unique.
        let roots: Vec<u64> = t.roots().map(|s| s.id).collect();
        assert_eq!(roots.len(), 3);
        assert!(t
            .spans
            .iter()
            .all(|s| s.parent.is_none() || roots.contains(&s.parent.unwrap())));
        let mut ids: Vec<u64> = t.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), t.len());
    }

    #[test]
    fn more_replicas_trade_idle_energy_for_latency() {
        let pool = green_automl_dataset::TaskSpec::new("pool", 30, 4, 2).generate();
        let trace = TrafficConfig {
            rps: 2000.0,
            n_requests: 400,
            seed: 9,
        }
        .generate(pool.n_rows());
        let p = Predictor::Constant {
            class: 0,
            n_classes: 2,
        };
        let one = serve(&p, &pool, &trace, &ServeConfig::cpu_testbed(1));
        let eight = serve(&p, &pool, &trace, &ServeConfig::cpu_testbed(8));
        assert!(eight.latency.p99_s <= one.latency.p99_s);
        // Busy energy is the same work either way.
        assert!((one.busy_j - eight.busy_j).abs() < 1e-9);
    }
}
