//! A model registry with memory-residency accounting.
//!
//! Deployed predictors are not free to keep warm: an AutoGluon stack is
//! dozens of serialised fold models, and a fleet that hosts many of them
//! pages artefacts in and out of memory. The registry models exactly that —
//! every registered [`Predictor`] has a byte footprint
//! ([`Predictor::memory_bytes`]); at most `capacity_bytes` of models are
//! resident at once, evicted least-recently-used; fetching a non-resident
//! model is a *cold load* that charges its full footprint as `mem_bytes`
//! through the caller's [`CostTracker`], so registry thrash shows up in the
//! energy report like any other work.
//!
//! ## Multi-tenant determinism
//!
//! A fleet region's registry hosts one model per tenant, and eviction order
//! is part of the deterministic record: which tenant's model gets paged out
//! decides who pays the next cold load. Eviction is therefore a **pure
//! function of (access sequence, tenant id)**: the victim is the resident
//! entry with the smallest `(last_used, tenant, name)` triple. `last_used`
//! ticks are unique for individual [`ModelRegistry::fetch`]es, but
//! [`ModelRegistry::warm_all`] deliberately stamps every model with the
//! *same* access tick (warming is one access event), so ties are real —
//! they break by tenant id (lowest evicts first), then name, never by
//! registration order or any other incidental state.

use std::sync::Arc;

use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};
use green_automl_systems::Predictor;

struct Entry {
    name: String,
    tenant: u32,
    predictor: Arc<Predictor>,
    bytes: f64,
    resident: bool,
    last_used: u64,
}

/// Cumulative registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Fetches answered from resident memory.
    pub hits: usize,
    /// Fetches that had to (re-)load the artefact, charging `mem_bytes`.
    pub cold_loads: usize,
    /// Models evicted to stay under the residency cap.
    pub evictions: usize,
}

/// An LRU-capped store of deployed predictors.
pub struct ModelRegistry {
    capacity_bytes: f64,
    entries: Vec<Entry>,
    tick: u64,
    stats: RegistryStats,
}

impl ModelRegistry {
    /// A registry that keeps at most `capacity_bytes` of models resident.
    ///
    /// A single model larger than the cap is still served: it becomes the
    /// only resident model and every *other* model's next fetch is cold.
    pub fn with_capacity_bytes(capacity_bytes: f64) -> ModelRegistry {
        assert!(
            !capacity_bytes.is_nan() && capacity_bytes > 0.0,
            "capacity must be positive"
        );
        ModelRegistry {
            capacity_bytes,
            entries: Vec::new(),
            tick: 0,
            stats: RegistryStats::default(),
        }
    }

    /// A registry with effectively unlimited residency (every model is cold
    /// exactly once).
    pub fn unbounded() -> ModelRegistry {
        ModelRegistry::with_capacity_bytes(f64::INFINITY)
    }

    /// Register a predictor under `name` for tenant 0, returning its byte
    /// footprint. Registration stores the artefact but does not make it
    /// resident — the first fetch pays the cold load.
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn register(&mut self, name: &str, predictor: Predictor) -> f64 {
        self.register_for_tenant(name, 0, predictor)
    }

    /// Register a predictor under `name` owned by `tenant`. The tenant id
    /// participates in the deterministic eviction order (see the module
    /// docs) and in per-tenant residency accounting.
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn register_for_tenant(&mut self, name: &str, tenant: u32, predictor: Predictor) -> f64 {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "model {name:?} already registered"
        );
        let bytes = predictor.memory_bytes();
        self.entries.push(Entry {
            name: name.to_string(),
            tenant,
            predictor: Arc::new(predictor),
            bytes,
            resident: false,
            last_used: 0,
        });
        bytes
    }

    /// Fetch a model for serving. A resident model is a hit; otherwise the
    /// artefact's full footprint is charged to `tracker` as a memory
    /// transfer and least-recently-used models are evicted until the cap
    /// holds again.
    ///
    /// Returns `None` for an unknown name.
    pub fn fetch(&mut self, name: &str, tracker: &mut CostTracker) -> Option<Arc<Predictor>> {
        let idx = self.entries.iter().position(|e| e.name == name)?;
        self.tick += 1;
        if self.entries[idx].resident {
            self.stats.hits += 1;
        } else {
            self.stats.cold_loads += 1;
            tracker.charge(
                OpCounts::mem(self.entries[idx].bytes),
                ParallelProfile::serial(),
            );
            self.entries[idx].resident = true;
        }
        self.entries[idx].last_used = self.tick;
        self.evict_over_cap(idx);
        Some(Arc::clone(&self.entries[idx].predictor))
    }

    /// Warm every registered model in one access event: each non-resident
    /// model cold-loads (charged to `tracker`), every entry is stamped with
    /// the **same** access tick, and the cap is enforced afterwards in
    /// registration order. Deliberately creating `last_used` ties is what
    /// makes the tenant-id tie-break observable — a fleet region warms its
    /// tenants' models at startup and the subsequent eviction order must
    /// not depend on incidental registration state.
    pub fn warm_all(&mut self, tracker: &mut CostTracker) {
        self.tick += 1;
        let tick = self.tick;
        for idx in 0..self.entries.len() {
            if !self.entries[idx].resident {
                self.stats.cold_loads += 1;
                tracker.charge(
                    OpCounts::mem(self.entries[idx].bytes),
                    ParallelProfile::serial(),
                );
                self.entries[idx].resident = true;
            }
            self.entries[idx].last_used = tick;
            self.evict_over_cap(idx);
        }
    }

    /// Evict residents (never the just-touched `keep`) until the cap
    /// holds. The victim is the resident entry minimising
    /// `(last_used, tenant, name)` — a pure function of the access
    /// sequence and the tenant ids, so multi-tenant residency is
    /// deterministic even when accesses tie on `last_used` (which
    /// [`ModelRegistry::warm_all`] makes routine).
    fn evict_over_cap(&mut self, keep: usize) {
        while self.resident_bytes() > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(i, e)| *i != keep && e.resident)
                .min_by_key(|(_, e)| (e.last_used, e.tenant, e.name.as_str()))
                .map(|(i, _)| i);
            match victim {
                Some(v) => {
                    self.entries[v].resident = false;
                    self.stats.evictions += 1;
                }
                // Only the pinned model is left; an over-cap single model
                // stays resident (documented in `with_capacity_bytes`).
                None => break,
            }
        }
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.resident)
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes currently resident for one tenant.
    pub fn resident_bytes_for(&self, tenant: u32) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.resident && e.tenant == tenant)
            .map(|e| e.bytes)
            .sum()
    }

    /// `true` if `name` is registered and currently resident.
    pub fn is_resident(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name && e.resident)
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative hit/cold-load/eviction counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::Device;

    fn constant() -> Predictor {
        Predictor::Constant {
            class: 0,
            n_classes: 2,
        }
    }

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    #[test]
    fn cold_load_charges_bytes_then_hits_are_free() {
        let mut reg = ModelRegistry::unbounded();
        let bytes = reg.register("m", constant());
        assert!(bytes > 0.0);
        let mut t = tracker();
        let _ = reg.fetch("m", &mut t).expect("registered");
        assert!((t.measurement().ops.mem_bytes - bytes).abs() < 1e-9);
        let before = t.measurement();
        let _ = reg.fetch("m", &mut t).expect("registered");
        assert_eq!(t.measurement().ops.mem_bytes, before.ops.mem_bytes);
        assert_eq!(
            reg.stats(),
            RegistryStats {
                hits: 1,
                cold_loads: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_evicts_the_stalest_model() {
        // Capacity fits exactly two constant predictors.
        let probe = constant().memory_bytes();
        let mut reg = ModelRegistry::with_capacity_bytes(2.0 * probe);
        for name in ["a", "b", "c"] {
            reg.register(name, constant());
        }
        let mut t = tracker();
        let _ = reg.fetch("a", &mut t);
        let _ = reg.fetch("b", &mut t);
        // Touch "a" so "b" is stalest, then load "c" → "b" evicted.
        let _ = reg.fetch("a", &mut t);
        let _ = reg.fetch("c", &mut t);
        assert_eq!(reg.stats().evictions, 1);
        let mem_before = t.measurement().ops.mem_bytes;
        let _ = reg.fetch("a", &mut t); // still resident → hit
        assert_eq!(t.measurement().ops.mem_bytes, mem_before);
        let _ = reg.fetch("b", &mut t); // evicted → cold again
        assert!(t.measurement().ops.mem_bytes > mem_before);
    }

    #[test]
    fn eviction_ties_break_by_tenant_id_then_name() {
        // Regression for the multi-tenant eviction-tie case: warm_all
        // stamps every model with the same access tick, so the next
        // over-cap fetch must pick its victim by tenant id — not by
        // registration order, which here is deliberately adversarial
        // (highest tenant registered first).
        let probe = constant().memory_bytes();
        let mut reg = ModelRegistry::with_capacity_bytes(2.0 * probe);
        reg.register_for_tenant("m2", 2, constant());
        reg.register_for_tenant("m1", 1, constant());
        reg.register_for_tenant("m0", 0, constant());
        let mut t = tracker();
        // Warming enforces the cap in registration order with tied ticks:
        // loading m1 evicts nothing (2 fit), loading m0 ties m2 vs m1 →
        // the lower tenant id (1) evicts.
        reg.warm_all(&mut t);
        assert!(reg.is_resident("m2"));
        assert!(!reg.is_resident("m1"));
        assert!(reg.is_resident("m0"));
        // Next over-cap load ties m2 vs m0 at the warm tick → tenant 0
        // evicts, even though m2 was registered first.
        let _ = reg.fetch("m1", &mut t);
        assert!(reg.is_resident("m2"));
        assert!(reg.is_resident("m1"));
        assert!(!reg.is_resident("m0"));
        assert_eq!(reg.stats().evictions, 2);
        // Per-tenant residency accounting follows.
        assert_eq!(reg.resident_bytes_for(0), 0.0);
        assert!((reg.resident_bytes_for(1) - probe).abs() < 1e-9);
        assert!((reg.resident_bytes_for(2) - probe).abs() < 1e-9);
    }

    #[test]
    fn tied_tenants_break_by_name() {
        let probe = constant().memory_bytes();
        let mut reg = ModelRegistry::with_capacity_bytes(2.0 * probe);
        // Same tenant everywhere: the (last_used, tenant, name) order
        // falls through to the name.
        reg.register_for_tenant("zz", 7, constant());
        reg.register_for_tenant("aa", 7, constant());
        reg.register_for_tenant("mm", 7, constant());
        let mut t = tracker();
        reg.warm_all(&mut t);
        // Warming: zz, aa resident; loading mm ties zz vs aa → "aa"
        // (lexicographically least) evicts.
        assert!(reg.is_resident("zz"));
        assert!(!reg.is_resident("aa"));
        assert!(reg.is_resident("mm"));
    }

    #[test]
    fn warm_all_is_one_access_event_and_idempotent_on_energy() {
        let mut reg = ModelRegistry::unbounded();
        reg.register_for_tenant("a", 0, constant());
        reg.register_for_tenant("b", 1, constant());
        let mut t = tracker();
        reg.warm_all(&mut t);
        assert_eq!(reg.stats().cold_loads, 2);
        let after_first = t.measurement().ops.mem_bytes;
        // Everything already resident: a second warm charges nothing.
        reg.warm_all(&mut t);
        assert_eq!(reg.stats().cold_loads, 2);
        assert_eq!(t.measurement().ops.mem_bytes, after_first);
    }

    #[test]
    fn unknown_model_is_none() {
        let mut reg = ModelRegistry::unbounded();
        let mut t = tracker();
        assert!(reg.fetch("nope", &mut t).is_none());
    }
}
