//! A model registry with memory-residency accounting.
//!
//! Deployed predictors are not free to keep warm: an AutoGluon stack is
//! dozens of serialised fold models, and a fleet that hosts many of them
//! pages artefacts in and out of memory. The registry models exactly that —
//! every registered [`Predictor`] has a byte footprint
//! ([`Predictor::memory_bytes`]); at most `capacity_bytes` of models are
//! resident at once, evicted least-recently-used; fetching a non-resident
//! model is a *cold load* that charges its full footprint as `mem_bytes`
//! through the caller's [`CostTracker`], so registry thrash shows up in the
//! energy report like any other work.

use std::sync::Arc;

use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};
use green_automl_systems::Predictor;

struct Entry {
    name: String,
    predictor: Arc<Predictor>,
    bytes: f64,
    resident: bool,
    last_used: u64,
}

/// Cumulative registry counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Fetches answered from resident memory.
    pub hits: usize,
    /// Fetches that had to (re-)load the artefact, charging `mem_bytes`.
    pub cold_loads: usize,
    /// Models evicted to stay under the residency cap.
    pub evictions: usize,
}

/// An LRU-capped store of deployed predictors.
pub struct ModelRegistry {
    capacity_bytes: f64,
    entries: Vec<Entry>,
    tick: u64,
    stats: RegistryStats,
}

impl ModelRegistry {
    /// A registry that keeps at most `capacity_bytes` of models resident.
    ///
    /// A single model larger than the cap is still served: it becomes the
    /// only resident model and every *other* model's next fetch is cold.
    pub fn with_capacity_bytes(capacity_bytes: f64) -> ModelRegistry {
        assert!(
            !capacity_bytes.is_nan() && capacity_bytes > 0.0,
            "capacity must be positive"
        );
        ModelRegistry {
            capacity_bytes,
            entries: Vec::new(),
            tick: 0,
            stats: RegistryStats::default(),
        }
    }

    /// A registry with effectively unlimited residency (every model is cold
    /// exactly once).
    pub fn unbounded() -> ModelRegistry {
        ModelRegistry::with_capacity_bytes(f64::INFINITY)
    }

    /// Register a predictor under `name`, returning its byte footprint.
    /// Registration stores the artefact but does not make it resident —
    /// the first fetch pays the cold load.
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn register(&mut self, name: &str, predictor: Predictor) -> f64 {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "model {name:?} already registered"
        );
        let bytes = predictor.memory_bytes();
        self.entries.push(Entry {
            name: name.to_string(),
            predictor: Arc::new(predictor),
            bytes,
            resident: false,
            last_used: 0,
        });
        bytes
    }

    /// Fetch a model for serving. A resident model is a hit; otherwise the
    /// artefact's full footprint is charged to `tracker` as a memory
    /// transfer and least-recently-used models are evicted until the cap
    /// holds again.
    ///
    /// Returns `None` for an unknown name.
    pub fn fetch(&mut self, name: &str, tracker: &mut CostTracker) -> Option<Arc<Predictor>> {
        let idx = self.entries.iter().position(|e| e.name == name)?;
        self.tick += 1;
        if self.entries[idx].resident {
            self.stats.hits += 1;
        } else {
            self.stats.cold_loads += 1;
            tracker.charge(
                OpCounts::mem(self.entries[idx].bytes),
                ParallelProfile::serial(),
            );
            self.entries[idx].resident = true;
        }
        self.entries[idx].last_used = self.tick;
        self.evict_over_cap(idx);
        Some(Arc::clone(&self.entries[idx].predictor))
    }

    /// Evict LRU residents (never the just-fetched `keep`) until the cap
    /// holds. Ties cannot occur: `last_used` ticks are unique.
    fn evict_over_cap(&mut self, keep: usize) {
        while self.resident_bytes() > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(i, e)| *i != keep && e.resident)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(v) => {
                    self.entries[v].resident = false;
                    self.stats.evictions += 1;
                }
                // Only the pinned model is left; an over-cap single model
                // stays resident (documented in `with_capacity_bytes`).
                None => break,
            }
        }
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.resident)
            .map(|e| e.bytes)
            .sum()
    }

    /// Registered model names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative hit/cold-load/eviction counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::Device;

    fn constant() -> Predictor {
        Predictor::Constant {
            class: 0,
            n_classes: 2,
        }
    }

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    #[test]
    fn cold_load_charges_bytes_then_hits_are_free() {
        let mut reg = ModelRegistry::unbounded();
        let bytes = reg.register("m", constant());
        assert!(bytes > 0.0);
        let mut t = tracker();
        let _ = reg.fetch("m", &mut t).expect("registered");
        assert!((t.measurement().ops.mem_bytes - bytes).abs() < 1e-9);
        let before = t.measurement();
        let _ = reg.fetch("m", &mut t).expect("registered");
        assert_eq!(t.measurement().ops.mem_bytes, before.ops.mem_bytes);
        assert_eq!(
            reg.stats(),
            RegistryStats {
                hits: 1,
                cold_loads: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_evicts_the_stalest_model() {
        // Capacity fits exactly two constant predictors.
        let probe = constant().memory_bytes();
        let mut reg = ModelRegistry::with_capacity_bytes(2.0 * probe);
        for name in ["a", "b", "c"] {
            reg.register(name, constant());
        }
        let mut t = tracker();
        let _ = reg.fetch("a", &mut t);
        let _ = reg.fetch("b", &mut t);
        // Touch "a" so "b" is stalest, then load "c" → "b" evicted.
        let _ = reg.fetch("a", &mut t);
        let _ = reg.fetch("c", &mut t);
        assert_eq!(reg.stats().evictions, 1);
        let mem_before = t.measurement().ops.mem_bytes;
        let _ = reg.fetch("a", &mut t); // still resident → hit
        assert_eq!(t.measurement().ops.mem_bytes, mem_before);
        let _ = reg.fetch("b", &mut t); // evicted → cold again
        assert!(t.measurement().ops.mem_bytes > mem_before);
    }

    #[test]
    fn unknown_model_is_none() {
        let mut reg = ModelRegistry::unbounded();
        let mut t = tracker();
        assert!(reg.fetch("nope", &mut t).is_none());
    }
}
