//! Energy-metered inference serving on the virtual clock.
//!
//! The paper's sharpest findings are inference-stage findings — ensembling
//! costs ≥10× per prediction (Observation O1), TabPFN's total-energy
//! crossover sits at ~26k predictions (Fig. 4), and Table 4 prices 10¹²
//! predictions in kWh/CO₂/€ — yet those numbers only bind once a trained
//! model actually *serves* traffic. This crate turns any deployed
//! [`Predictor`](green_automl_systems::Predictor) into a metered prediction
//! service:
//!
//! * [`registry`] — a model registry with per-model memory accounting and an
//!   LRU residency cap; cold loads charge `mem_bytes` through the
//!   [`CostTracker`](green_automl_energy::CostTracker).
//! * [`traffic`] — a seeded open-loop generator: Poisson-like interarrivals
//!   from the in-tree SplitMix64, feature rows drawn from a held-out split.
//! * [`scheduler`] — adaptive micro-batching (`max_batch` / `max_delay`) on
//!   a simulated replica pool; the expensive per-batch inference fans out
//!   over host threads with the same ownership discipline as
//!   `green_automl_core::executor`, so reports are byte-identical at every
//!   host worker count.
//! * [`report`] — per-request latency percentiles, batch-size histogram,
//!   queue depth, Joules per request, and an SLO check with a carbon budget
//!   via `green_automl_energy::carbon`.
//!
//! The **fleet layer** scales this to many models, many tenants, and
//! simulated grid regions:
//!
//! * [`fleet`] — [`run_fleet`](fleet::run_fleet) serves a multi-tenant
//!   trace across regions with per-region registries, elastic replica
//!   pools, and time-varying carbon intensity, producing a byte-stable
//!   [`FleetReport`](fleet::FleetReport).
//! * [`router`] — carbon-blind vs. carbon-aware regional dispatch.
//! * [`autoscale`] — queue-depth/idle-time hysteresis with energy-budget
//!   denials, all logged deterministically.

pub mod autoscale;
pub mod fleet;
pub mod registry;
pub mod report;
pub mod router;
pub mod scheduler;
pub mod traffic;

pub use autoscale::{AutoscaleEvent, AutoscalePolicy, ScaleReason};
pub use fleet::{
    run_fleet, FleetConfig, FleetReport, RegionReport, RegionSpec, TenantReport, TenantSpec,
};
pub use registry::{ModelRegistry, RegistryStats};
pub use report::{LatencyStats, ServingReport, SloPolicy, SloReport};
pub use router::{route, RegionView, RouterPolicy};
pub use scheduler::{serve, ServeConfig};
pub use traffic::{
    FleetRequest, FleetTrace, FleetTrafficConfig, Request, Shape, TenantTraffic, TrafficConfig,
    TrafficTrace,
};
