//! Seeded traffic generation: open-loop single-tenant traces and
//! composable multi-tenant fleet mixes.
//!
//! Serving experiments need load that is (a) open-loop — arrivals do not
//! wait for responses, which is what makes queueing visible — and (b)
//! exactly reproducible, so the same trace can be replayed against every
//! system under comparison. The base process is Poisson: interarrival gaps
//! are exponential draws from the in-tree [`SplitMix64`]; each request
//! carries the index of a feature row in a held-out split.
//!
//! Beyond the constant-rate [`TrafficConfig`], the fleet layer composes
//! **seeded rate shapes** on top of the Poisson base via thinning
//! (Lewis–Shedler): candidates are drawn at the shape's peak rate and each
//! is accepted with probability `rate(t) / peak`, so a diurnal cycle, a
//! burst window, or a flash crowd modulates arrivals while remaining a
//! pure function of `(seed, shape parameters)`. Per-tenant streams
//! generate independently and merge into one [`FleetTrace`] ordered by
//! `(arrival, tenant)` — byte-identical on every host.

use green_automl_energy::SplitMix64;

/// One inference request in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Position in the trace (0-based; also the prediction's output slot).
    pub id: usize,
    /// Arrival time on the virtual clock, seconds.
    pub arrival_s: f64,
    /// Row index into the held-out pool this request asks about.
    pub row: usize,
}

/// Parameters of an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Mean arrival rate, requests per virtual second.
    pub rps: f64,
    /// Total requests in the trace.
    pub n_requests: usize,
    /// PRNG seed: same seed + same pool size → identical trace.
    pub seed: u64,
}

impl TrafficConfig {
    /// Draw the trace: exponential interarrivals at `rps`, rows sampled
    /// uniformly from `0..pool_rows`.
    ///
    /// A rate of zero means no traffic ever arrives: the trace is empty
    /// (but still well-formed, and [`serve`](crate::scheduler::serve)
    /// accepts it, reporting zeros across the board).
    ///
    /// # Panics
    /// Panics if `rps` is negative or non-finite, or `pool_rows` is zero.
    pub fn generate(&self, pool_rows: usize) -> TrafficTrace {
        assert!(
            self.rps.is_finite() && self.rps >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        assert!(pool_rows > 0, "need a non-empty row pool");
        if self.rps == 0.0 {
            return TrafficTrace {
                requests: Vec::new(),
                pool_rows,
            };
        }
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        let requests = (0..self.n_requests)
            .map(|id| {
                // Inverse-CDF exponential draw; next_f64 ∈ [0, 1) keeps the
                // argument of ln strictly positive.
                t += -(1.0 - rng.next_f64()).ln() / self.rps;
                Request {
                    id,
                    arrival_s: t,
                    row: rng.gen_range(0..pool_rows),
                }
            })
            .collect();
        TrafficTrace {
            requests,
            pool_rows,
        }
    }
}

/// A fully materialised request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    /// Requests in arrival order (`arrival_s` is non-decreasing).
    pub requests: Vec<Request>,
    /// Size of the row pool the trace draws from.
    pub pool_rows: usize,
}

impl TrafficTrace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Empirical arrival rate over the trace, requests per second.
    pub fn observed_rps(&self) -> f64 {
        match self.requests.last() {
            Some(last) if last.arrival_s > 0.0 => self.requests.len() as f64 / last.arrival_s,
            _ => 0.0,
        }
    }
}

/// A multiplicative modulation of a tenant's base arrival rate. Shapes
/// compose: the instantaneous rate is `base_rps · Π factor_at(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// A day/night cycle: `1 + amplitude · cos(2π (t − peak_s)/period_s)`.
    /// `amplitude` must be in `[0, 1)` so the rate stays positive.
    Diurnal {
        /// Cycle length, seconds.
        period_s: f64,
        /// Relative swing, `[0, 1)`.
        amplitude: f64,
        /// Instant of peak rate within the cycle, seconds.
        peak_s: f64,
    },
    /// A sustained burst: rate multiplies by `factor` (≥ 0) inside
    /// `[start_s, start_s + duration_s)`, 1 outside.
    Burst {
        /// Burst onset, seconds.
        start_s: f64,
        /// Burst length, seconds.
        duration_s: f64,
        /// Rate multiplier inside the window.
        factor: f64,
    },
    /// A flash crowd: rate ramps linearly from 1 to `peak_factor` over
    /// `ramp_s` starting at `at_s`, then decays exponentially back toward
    /// 1 with time constant `decay_s`.
    FlashCrowd {
        /// Onset of the ramp, seconds.
        at_s: f64,
        /// Ramp duration, seconds.
        ramp_s: f64,
        /// Multiplier at the crest.
        peak_factor: f64,
        /// Exponential decay constant after the crest, seconds.
        decay_s: f64,
    },
}

impl Shape {
    /// The rate multiplier at virtual instant `t` (always ≥ 0).
    pub fn factor_at(&self, t: f64) -> f64 {
        match *self {
            Shape::Diurnal {
                period_s,
                amplitude,
                peak_s,
            } => {
                let phase = 2.0 * std::f64::consts::PI * (t - peak_s) / period_s;
                1.0 + amplitude * phase.cos()
            }
            Shape::Burst {
                start_s,
                duration_s,
                factor,
            } => {
                if t >= start_s && t < start_s + duration_s {
                    factor
                } else {
                    1.0
                }
            }
            Shape::FlashCrowd {
                at_s,
                ramp_s,
                peak_factor,
                decay_s,
            } => {
                if t < at_s {
                    1.0
                } else if t < at_s + ramp_s {
                    1.0 + (peak_factor - 1.0) * (t - at_s) / ramp_s
                } else {
                    1.0 + (peak_factor - 1.0) * (-(t - at_s - ramp_s) / decay_s).exp()
                }
            }
        }
    }

    /// An upper bound on [`Shape::factor_at`] over all `t` — the thinning
    /// envelope.
    pub fn peak_factor(&self) -> f64 {
        match *self {
            Shape::Diurnal { amplitude, .. } => 1.0 + amplitude,
            Shape::Burst { factor, .. } => factor.max(1.0),
            Shape::FlashCrowd { peak_factor, .. } => peak_factor.max(1.0),
        }
    }

    /// Check the shape's parameters are finite and within their documented
    /// domains.
    pub fn validate(&self) -> Result<(), &'static str> {
        let fin = |v: f64| v.is_finite();
        match *self {
            Shape::Diurnal {
                period_s,
                amplitude,
                peak_s,
            } => {
                if !(fin(period_s) && period_s > 0.0) {
                    return Err("Diurnal period_s must be positive and finite");
                }
                if !(fin(amplitude) && (0.0..1.0).contains(&amplitude)) {
                    return Err("Diurnal amplitude must be in [0, 1)");
                }
                if !fin(peak_s) {
                    return Err("Diurnal peak_s must be finite");
                }
            }
            Shape::Burst {
                start_s,
                duration_s,
                factor,
            } => {
                if !(fin(start_s) && start_s >= 0.0) {
                    return Err("Burst start_s must be non-negative and finite");
                }
                if !(fin(duration_s) && duration_s > 0.0) {
                    return Err("Burst duration_s must be positive and finite");
                }
                if !(fin(factor) && factor >= 0.0) {
                    return Err("Burst factor must be non-negative and finite");
                }
            }
            Shape::FlashCrowd {
                at_s,
                ramp_s,
                peak_factor,
                decay_s,
            } => {
                if !(fin(at_s) && at_s >= 0.0) {
                    return Err("FlashCrowd at_s must be non-negative and finite");
                }
                if !(fin(ramp_s) && ramp_s > 0.0) {
                    return Err("FlashCrowd ramp_s must be positive and finite");
                }
                if !(fin(peak_factor) && peak_factor >= 1.0) {
                    return Err("FlashCrowd peak_factor must be at least 1");
                }
                if !(fin(decay_s) && decay_s > 0.0) {
                    return Err("FlashCrowd decay_s must be positive and finite");
                }
            }
        }
        Ok(())
    }
}

/// One tenant's traffic stream: a base Poisson rate modulated by zero or
/// more composed [`Shape`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTraffic {
    /// Tenant id (dense, small; indexes the fleet's tenant table).
    pub tenant: u32,
    /// Base arrival rate before modulation, requests per virtual second.
    pub rps: f64,
    /// Composed rate shapes (multiplicative).
    pub shapes: Vec<Shape>,
    /// Requests this tenant contributes to the mix.
    pub n_requests: usize,
    /// Per-tenant stream seed.
    pub seed: u64,
}

impl TenantTraffic {
    /// Instantaneous arrival rate at `t`, requests per second.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.shapes.iter().fold(self.rps, |r, s| r * s.factor_at(t))
    }

    /// Draw this tenant's stream by thinning: candidates arrive at the
    /// peak envelope rate, and each is accepted with probability
    /// `rate(t) / peak` — a non-homogeneous Poisson process that is a
    /// pure function of the seed and the shape parameters.
    fn generate(&self, pool_rows: usize) -> Vec<(f64, usize)> {
        assert!(
            self.rps.is_finite() && self.rps >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        for shape in &self.shapes {
            if let Err(e) = shape.validate() {
                panic!("invalid traffic shape for tenant {}: {e}", self.tenant);
            }
        }
        if self.rps == 0.0 || self.n_requests == 0 {
            return Vec::new();
        }
        let peak: f64 = self
            .shapes
            .iter()
            .fold(self.rps, |r, s| r * s.peak_factor());
        assert!(peak > 0.0, "peak envelope rate must be positive");
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.n_requests);
        let mut t = 0.0f64;
        while out.len() < self.n_requests {
            t += -(1.0 - rng.next_f64()).ln() / peak;
            if rng.next_f64() * peak < self.rate_at(t) {
                out.push((t, rng.gen_range(0..pool_rows)));
            }
        }
        out
    }
}

/// One request in a multi-tenant fleet trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetRequest {
    /// Position in the merged trace (0-based; also the prediction slot).
    pub id: usize,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// Arrival time on the virtual clock, seconds.
    pub arrival_s: f64,
    /// Row index into the held-out pool.
    pub row: usize,
}

/// A multi-tenant traffic mix: independent seeded tenant streams merged
/// into one arrival-ordered trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrafficConfig {
    /// The tenant streams to mix.
    pub tenants: Vec<TenantTraffic>,
}

impl FleetTrafficConfig {
    /// Generate and merge every tenant stream. The merge orders by
    /// `(arrival_s, tenant)` — ties across tenants (possible only through
    /// seed coincidence) break deterministically by tenant id.
    ///
    /// # Panics
    /// Panics if `pool_rows` is zero, a tenant id repeats, or any shape
    /// fails validation.
    pub fn generate(&self, pool_rows: usize) -> FleetTrace {
        assert!(pool_rows > 0, "need a non-empty row pool");
        for (i, a) in self.tenants.iter().enumerate() {
            assert!(
                self.tenants[i + 1..].iter().all(|b| b.tenant != a.tenant),
                "tenant id {} appears twice",
                a.tenant
            );
        }
        let mut merged: Vec<FleetRequest> = Vec::new();
        for spec in &self.tenants {
            for (arrival_s, row) in spec.generate(pool_rows) {
                merged.push(FleetRequest {
                    id: 0, // assigned after the merge
                    tenant: spec.tenant,
                    arrival_s,
                    row,
                });
            }
        }
        merged.sort_by(|a, b| {
            a.arrival_s
                .partial_cmp(&b.arrival_s)
                .expect("finite arrivals")
                .then(a.tenant.cmp(&b.tenant))
        });
        for (id, r) in merged.iter_mut().enumerate() {
            r.id = id;
        }
        FleetTrace {
            requests: merged,
            pool_rows,
        }
    }
}

/// A fully materialised multi-tenant trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrace {
    /// Requests in `(arrival, tenant)` order.
    pub requests: Vec<FleetRequest>,
    /// Size of the row pool the trace draws from.
    pub pool_rows: usize,
}

impl FleetTrace {
    /// Number of requests across all tenants.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if no tenant contributed any request.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Requests belonging to `tenant`, as indices into `requests`.
    pub fn tenant_requests(&self, tenant: u32) -> Vec<usize> {
        self.requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.tenant == tenant)
            .map(|(i, _)| i)
            .collect()
    }

    /// Tenant ids present, ascending.
    pub fn tenant_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.requests.iter().map(|r| r.tenant).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_reproducible_and_ordered() {
        let cfg = TrafficConfig {
            rps: 100.0,
            n_requests: 500,
            seed: 7,
        };
        let a = cfg.generate(50);
        let b = cfg.generate(50);
        assert_eq!(a, b);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.requests.iter().all(|r| r.row < 50));
    }

    #[test]
    fn observed_rate_tracks_the_requested_rate() {
        let cfg = TrafficConfig {
            rps: 200.0,
            n_requests: 4000,
            seed: 3,
        };
        let trace = cfg.generate(10);
        let obs = trace.observed_rps();
        assert!(
            (obs / 200.0 - 1.0).abs() < 0.1,
            "observed {obs} vs requested 200"
        );
    }

    #[test]
    fn zero_rate_means_an_empty_trace() {
        let trace = TrafficConfig {
            rps: 0.0,
            n_requests: 100,
            seed: 1,
        }
        .generate(10);
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
        assert_eq!(trace.pool_rows, 10);
        assert_eq!(trace.observed_rps(), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TrafficConfig {
            rps: 50.0,
            n_requests: 100,
            seed: 1,
        }
        .generate(10);
        let b = TrafficConfig {
            rps: 50.0,
            n_requests: 100,
            seed: 2,
        }
        .generate(10);
        assert_ne!(a, b);
    }

    #[test]
    fn shape_factors_match_their_envelopes() {
        let shapes = [
            Shape::Diurnal {
                period_s: 86_400.0,
                amplitude: 0.6,
                peak_s: 3_600.0,
            },
            Shape::Burst {
                start_s: 10.0,
                duration_s: 5.0,
                factor: 4.0,
            },
            Shape::FlashCrowd {
                at_s: 50.0,
                ramp_s: 2.0,
                peak_factor: 8.0,
                decay_s: 20.0,
            },
        ];
        let mut rng = SplitMix64::seed_from_u64(0x5a7e);
        for shape in &shapes {
            assert!(shape.validate().is_ok());
            let peak = shape.peak_factor();
            for _ in 0..500 {
                let t = rng.gen_range(0.0..100_000.0f64);
                let f = shape.factor_at(t);
                assert!(f >= 0.0, "{shape:?} at {t}: factor {f} negative");
                assert!(
                    f <= peak + 1e-12,
                    "{shape:?} at {t}: factor {f} > peak {peak}"
                );
            }
        }
    }

    #[test]
    fn burst_window_boosts_local_rate() {
        let spec = TenantTraffic {
            tenant: 0,
            rps: 50.0,
            shapes: vec![Shape::Burst {
                start_s: 20.0,
                duration_s: 10.0,
                factor: 6.0,
            }],
            n_requests: 4_000,
            seed: 5,
        };
        let arrivals = spec.generate(10);
        let in_burst = arrivals
            .iter()
            .filter(|(t, _)| (20.0..30.0).contains(t))
            .count();
        let before = arrivals
            .iter()
            .filter(|(t, _)| (5.0..15.0).contains(t))
            .count();
        assert!(
            in_burst as f64 > 3.0 * before as f64,
            "burst {in_burst} vs baseline {before}"
        );
    }

    #[test]
    fn diurnal_peak_hour_carries_more_traffic_than_the_trough() {
        let spec = TenantTraffic {
            tenant: 0,
            rps: 20.0,
            shapes: vec![Shape::Diurnal {
                period_s: 200.0,
                amplitude: 0.8,
                peak_s: 50.0,
            }],
            n_requests: 6_000,
            seed: 11,
        };
        let arrivals = spec.generate(10);
        // Count arrivals near the peak (t ≡ 50 mod 200) vs the trough
        // (t ≡ 150 mod 200) over many cycles.
        let near = |t: f64, centre: f64| {
            let phase = ((t % 200.0) + 200.0) % 200.0;
            (phase - centre).abs() < 25.0
        };
        let peak = arrivals.iter().filter(|(t, _)| near(*t, 50.0)).count();
        let trough = arrivals.iter().filter(|(t, _)| near(*t, 150.0)).count();
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn fleet_mix_is_merged_ordered_and_reproducible() {
        let cfg = FleetTrafficConfig {
            tenants: vec![
                TenantTraffic {
                    tenant: 0,
                    rps: 100.0,
                    shapes: vec![],
                    n_requests: 300,
                    seed: 1,
                },
                TenantTraffic {
                    tenant: 1,
                    rps: 40.0,
                    shapes: vec![Shape::FlashCrowd {
                        at_s: 1.0,
                        ramp_s: 0.5,
                        peak_factor: 5.0,
                        decay_s: 2.0,
                    }],
                    n_requests: 200,
                    seed: 2,
                },
            ],
        };
        let a = cfg.generate(25);
        let b = cfg.generate(25);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.requests.iter().enumerate().all(|(i, r)| r.id == i));
        assert!(a.requests.iter().all(|r| r.row < 25));
        assert_eq!(a.tenant_ids(), vec![0, 1]);
        assert_eq!(a.tenant_requests(0).len(), 300);
        assert_eq!(a.tenant_requests(1).len(), 200);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_tenant_ids_panic() {
        let spec = TenantTraffic {
            tenant: 3,
            rps: 10.0,
            shapes: vec![],
            n_requests: 10,
            seed: 0,
        };
        let _ = FleetTrafficConfig {
            tenants: vec![spec.clone(), spec],
        }
        .generate(5);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_shape_is_rejected_at_generation() {
        let _ = TenantTraffic {
            tenant: 0,
            rps: 10.0,
            shapes: vec![Shape::Diurnal {
                period_s: 100.0,
                amplitude: 1.5,
                peak_s: 0.0,
            }],
            n_requests: 10,
            seed: 0,
        }
        .generate(5);
    }

    #[test]
    fn thinning_preserves_the_mean_rate_of_a_flat_mix() {
        // A shapeless TenantTraffic is a plain Poisson stream: its
        // empirical rate must track rps just like TrafficConfig's.
        let arrivals = TenantTraffic {
            tenant: 0,
            rps: 150.0,
            shapes: vec![],
            n_requests: 3_000,
            seed: 9,
        }
        .generate(10);
        let last = arrivals.last().unwrap().0;
        let obs = arrivals.len() as f64 / last;
        assert!((obs / 150.0 - 1.0).abs() < 0.1, "observed {obs}");
    }
}
