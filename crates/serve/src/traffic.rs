//! Seeded open-loop traffic generation.
//!
//! Serving experiments need load that is (a) open-loop — arrivals do not
//! wait for responses, which is what makes queueing visible — and (b)
//! exactly reproducible, so the same trace can be replayed against every
//! system under comparison. Interarrival gaps are exponential draws from
//! the in-tree [`SplitMix64`], i.e. a Poisson process of the requested
//! rate; each request carries the index of a feature row in a held-out
//! split.

use green_automl_energy::SplitMix64;

/// One inference request in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Position in the trace (0-based; also the prediction's output slot).
    pub id: usize,
    /// Arrival time on the virtual clock, seconds.
    pub arrival_s: f64,
    /// Row index into the held-out pool this request asks about.
    pub row: usize,
}

/// Parameters of an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Mean arrival rate, requests per virtual second.
    pub rps: f64,
    /// Total requests in the trace.
    pub n_requests: usize,
    /// PRNG seed: same seed + same pool size → identical trace.
    pub seed: u64,
}

impl TrafficConfig {
    /// Draw the trace: exponential interarrivals at `rps`, rows sampled
    /// uniformly from `0..pool_rows`.
    ///
    /// A rate of zero means no traffic ever arrives: the trace is empty
    /// (but still well-formed, and [`serve`](crate::scheduler::serve)
    /// accepts it, reporting zeros across the board).
    ///
    /// # Panics
    /// Panics if `rps` is negative or non-finite, or `pool_rows` is zero.
    pub fn generate(&self, pool_rows: usize) -> TrafficTrace {
        assert!(
            self.rps.is_finite() && self.rps >= 0.0,
            "arrival rate must be finite and non-negative"
        );
        assert!(pool_rows > 0, "need a non-empty row pool");
        if self.rps == 0.0 {
            return TrafficTrace {
                requests: Vec::new(),
                pool_rows,
            };
        }
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut t = 0.0f64;
        let requests = (0..self.n_requests)
            .map(|id| {
                // Inverse-CDF exponential draw; next_f64 ∈ [0, 1) keeps the
                // argument of ln strictly positive.
                t += -(1.0 - rng.next_f64()).ln() / self.rps;
                Request {
                    id,
                    arrival_s: t,
                    row: rng.gen_range(0..pool_rows),
                }
            })
            .collect();
        TrafficTrace {
            requests,
            pool_rows,
        }
    }
}

/// A fully materialised request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    /// Requests in arrival order (`arrival_s` is non-decreasing).
    pub requests: Vec<Request>,
    /// Size of the row pool the trace draws from.
    pub pool_rows: usize,
}

impl TrafficTrace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Empirical arrival rate over the trace, requests per second.
    pub fn observed_rps(&self) -> f64 {
        match self.requests.last() {
            Some(last) if last.arrival_s > 0.0 => self.requests.len() as f64 / last.arrival_s,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_reproducible_and_ordered() {
        let cfg = TrafficConfig {
            rps: 100.0,
            n_requests: 500,
            seed: 7,
        };
        let a = cfg.generate(50);
        let b = cfg.generate(50);
        assert_eq!(a, b);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.requests.iter().all(|r| r.row < 50));
    }

    #[test]
    fn observed_rate_tracks_the_requested_rate() {
        let cfg = TrafficConfig {
            rps: 200.0,
            n_requests: 4000,
            seed: 3,
        };
        let trace = cfg.generate(10);
        let obs = trace.observed_rps();
        assert!(
            (obs / 200.0 - 1.0).abs() < 0.1,
            "observed {obs} vs requested 200"
        );
    }

    #[test]
    fn zero_rate_means_an_empty_trace() {
        let trace = TrafficConfig {
            rps: 0.0,
            n_requests: 100,
            seed: 1,
        }
        .generate(10);
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
        assert_eq!(trace.pool_rows, 10);
        assert_eq!(trace.observed_rps(), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TrafficConfig {
            rps: 50.0,
            n_requests: 100,
            seed: 1,
        }
        .generate(10);
        let b = TrafficConfig {
            rps: 50.0,
            n_requests: 100,
            seed: 2,
        }
        .generate(10);
        assert_ne!(a, b);
    }
}
