//! Per-request accounting: latency percentiles, batch shapes, queue depth,
//! energy per request, and SLO verdicts with a carbon budget.

use std::collections::BTreeMap;

use green_automl_energy::{EmissionsEstimate, GridIntensity, OpCounts, Trace};

/// Joules per kilowatt-hour.
const J_PER_KWH: f64 = 3.6e6;

/// Virtual-clock latency summary over a served trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median request latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_s: f64,
    /// 99th-percentile latency, seconds.
    pub p99_s: f64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Worst request, seconds.
    pub max_s: f64,
}

impl LatencyStats {
    /// Summarise per-request latencies (arrival → completion, seconds).
    /// Percentiles use the nearest-rank method on a sorted copy.
    ///
    /// # Panics
    /// Panics if `latencies` is empty or contains non-finite values.
    pub fn from_latencies(latencies: &[f64]) -> LatencyStats {
        assert!(!latencies.is_empty(), "no latencies to summarise");
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite latency"));
        let rank = |p: f64| {
            let idx = ((p * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        LatencyStats {
            p50_s: rank(0.50),
            p95_s: rank(0.95),
            p99_s: rank(0.99),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_s: *sorted.last().expect("non-empty"),
        }
    }

    /// The all-zero summary of a run that completed no requests (an empty
    /// trace, or every batch shed or failed).
    pub fn empty() -> LatencyStats {
        LatencyStats {
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            mean_s: 0.0,
            max_s: 0.0,
        }
    }
}

/// Everything one serving run produced, aggregated. Two runs of the same
/// trace through the same deployment are expected to compare equal — the
/// serving determinism test relies on `PartialEq` covering every field,
/// energies included.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests served.
    pub n_requests: usize,
    /// Micro-batches executed.
    pub n_batches: usize,
    /// Hard-label prediction per request, in request order. Shed and
    /// failed requests keep a `0` placeholder (they were never answered;
    /// `shed_requests` / `failed_requests` count them).
    pub predictions: Vec<u32>,
    /// Latency summary.
    pub latency: LatencyStats,
    /// Histogram: batch size → number of batches of that size.
    pub batch_sizes: BTreeMap<usize, usize>,
    /// Mean queue depth observed at batch dispatch.
    pub mean_queue_depth: f64,
    /// Deepest queue observed at batch dispatch.
    pub max_queue_depth: usize,
    /// Energy spent computing predictions (and cold model loads), Joules.
    pub busy_j: f64,
    /// Static energy of replicas waiting for work over the makespan, Joules.
    pub idle_j: f64,
    /// Virtual time from first arrival to last completion, seconds.
    pub makespan_s: f64,
    /// Total operations charged while serving.
    pub ops: OpCounts,
    /// Requests that completed only after at least one replica crash.
    pub retried_requests: usize,
    /// Requests shed at dispatch because the queue was over the shedding
    /// threshold — never executed, so they cost no energy.
    pub shed_requests: usize,
    /// Requests whose batch exhausted its retries without completing.
    pub failed_requests: usize,
    /// Energy burnt by batch executions a replica crash threw away, Joules.
    pub wasted_j: f64,
    /// Span trace of the run when [`ServeConfig::trace`] was on: one
    /// `Replica` span per replica plus one `Batch` span per dispatch
    /// attempt (crashed attempts carry a fault tag). `None` when tracing
    /// was off.
    ///
    /// [`ServeConfig::trace`]: crate::scheduler::ServeConfig::trace
    pub trace: Option<Trace>,
}

impl ServingReport {
    /// Busy + idle + crash-wasted energy, Joules.
    pub fn total_joules(&self) -> f64 {
        self.busy_j + self.idle_j + self.wasted_j
    }

    /// Total energy, kWh.
    pub fn kwh(&self) -> f64 {
        self.total_joules() / J_PER_KWH
    }

    /// Total energy attributed per request, Joules (idle included — an
    /// over-provisioned replica pool shows up here).
    pub fn joules_per_request(&self) -> f64 {
        if self.n_requests == 0 {
            0.0
        } else {
            self.total_joules() / self.n_requests as f64
        }
    }

    /// Busy energy per request, Joules — the marginal cost of one
    /// prediction, which is what the paper's O1 ensemble-vs-refit gap is
    /// about.
    pub fn busy_joules_per_request(&self) -> f64 {
        if self.n_requests == 0 {
            0.0
        } else {
            self.busy_j / self.n_requests as f64
        }
    }

    /// Sustained throughput over the makespan, requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.n_requests as f64 / self.makespan_s
        } else {
            0.0
        }
    }

    /// Mean rows per executed batch.
    pub fn mean_batch_rows(&self) -> f64 {
        if self.n_batches == 0 {
            0.0
        } else {
            self.n_requests as f64 / self.n_batches as f64
        }
    }

    /// CO₂ / € footprint of the run under `grid`.
    pub fn emissions(&self, grid: GridIntensity) -> EmissionsEstimate {
        EmissionsEstimate::from_kwh(self.kwh(), grid)
    }

    /// Check this run against an SLO policy.
    pub fn check(&self, slo: &SloPolicy) -> SloReport {
        let emissions = self.emissions(slo.grid);
        SloReport {
            latency_ok: self.latency.p99_s <= slo.p99_latency_s,
            energy_ok: slo.energy_budget_kwh.is_none_or(|cap| self.kwh() <= cap),
            carbon_ok: slo
                .carbon_budget_kg
                .is_none_or(|cap| emissions.kg_co2 <= cap),
            emissions,
        }
    }
}

/// A service-level objective: a latency bound plus optional energy and
/// carbon budgets for the whole trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// p99 request latency must not exceed this, seconds.
    pub p99_latency_s: f64,
    /// Total energy budget for the trace, kWh (`None` = unbounded).
    pub energy_budget_kwh: Option<f64>,
    /// Total emissions budget for the trace, kg CO₂ (`None` = unbounded).
    pub carbon_budget_kg: Option<f64>,
    /// Grid used for the carbon conversion.
    pub grid: GridIntensity,
}

impl SloPolicy {
    /// A latency-only SLO on the paper's German grid.
    pub fn latency_only(p99_latency_s: f64) -> SloPolicy {
        SloPolicy {
            p99_latency_s,
            energy_budget_kwh: None,
            carbon_budget_kg: None,
            grid: GridIntensity::GERMANY,
        }
    }
}

/// The verdict of [`ServingReport::check`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// p99 latency within bound.
    pub latency_ok: bool,
    /// Energy within budget.
    pub energy_ok: bool,
    /// Emissions within budget.
    pub carbon_ok: bool,
    /// The footprint the carbon verdict was computed from.
    pub emissions: EmissionsEstimate,
}

impl SloReport {
    /// `true` if every objective holds.
    pub fn passed(&self) -> bool {
        self.latency_ok && self.energy_ok && self.carbon_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_latencies(&lat);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencyStats::from_latencies(&[0.25]);
        assert_eq!(s.p50_s, 0.25);
        assert_eq!(s.p99_s, 0.25);
    }

    fn report() -> ServingReport {
        ServingReport {
            n_requests: 1000,
            n_batches: 100,
            predictions: vec![0; 1000],
            latency: LatencyStats::from_latencies(&[0.01, 0.02, 0.03]),
            batch_sizes: BTreeMap::from([(10, 100)]),
            mean_queue_depth: 2.0,
            max_queue_depth: 5,
            busy_j: 1800.0,
            idle_j: 1800.0,
            makespan_s: 10.0,
            ops: OpCounts::ZERO,
            retried_requests: 0,
            shed_requests: 0,
            failed_requests: 0,
            wasted_j: 0.0,
            trace: None,
        }
    }

    #[test]
    fn empty_latency_stats_are_all_zero() {
        let s = LatencyStats::empty();
        assert_eq!(s.p50_s, 0.0);
        assert_eq!(s.p99_s, 0.0);
        assert_eq!(s.mean_s, 0.0);
        assert_eq!(s.max_s, 0.0);
    }

    #[test]
    fn wasted_energy_counts_toward_the_total() {
        let r = ServingReport {
            wasted_j: 400.0,
            ..report()
        };
        assert_eq!(r.total_joules(), 4000.0);
    }

    #[test]
    fn energy_accounting_adds_up() {
        let r = report();
        assert_eq!(r.total_joules(), 3600.0);
        assert!((r.kwh() - 0.001).abs() < 1e-12);
        assert!((r.joules_per_request() - 3.6).abs() < 1e-12);
        assert!((r.busy_joules_per_request() - 1.8).abs() < 1e-12);
        assert!((r.throughput_rps() - 100.0).abs() < 1e-12);
        assert!((r.mean_batch_rows() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn slo_check_covers_all_three_axes() {
        let r = report();
        let pass = r.check(&SloPolicy {
            p99_latency_s: 0.05,
            energy_budget_kwh: Some(0.01),
            carbon_budget_kg: Some(1.0),
            grid: GridIntensity::GERMANY,
        });
        assert!(pass.passed());
        let tight_latency = r.check(&SloPolicy::latency_only(0.02));
        assert!(!tight_latency.latency_ok && !tight_latency.passed());
        let tight_energy = r.check(&SloPolicy {
            p99_latency_s: 0.05,
            energy_budget_kwh: Some(1e-6),
            carbon_budget_kg: None,
            grid: GridIntensity::GERMANY,
        });
        assert!(!tight_energy.energy_ok);
        let tight_carbon = r.check(&SloPolicy {
            p99_latency_s: 0.05,
            energy_budget_kwh: None,
            carbon_budget_kg: Some(1e-9),
            grid: GridIntensity::GERMANY,
        });
        assert!(!tight_carbon.carbon_ok);
        // Emissions use the requested grid.
        assert_eq!(
            tight_carbon.emissions.kg_co2,
            r.kwh() * GridIntensity::GERMANY.kg_co2_per_kwh
        );
    }
}
