//! Shared compute kernels for the model substrate.
//!
//! Every hot numeric loop in the model zoo funnels through this module:
//! a cache-blocked, autovectorizable matmul (plain and B-transposed), fused
//! dot/axpy/softmax-row primitives, and a thread-local scratch arena that
//! lets inner loops stop allocating across folds and batch-predict calls.
//!
//! ## Determinism contract
//!
//! Kernels are *bitwise deterministic*: for every output element the
//! floating-point summation order is fixed — ascending along the shared
//! (`k`) dimension — at **every** block size. Blocking tiles only the
//! output-space loops (`i`, and the `k` loop in ascending block order), so
//! [`matmul`] is bitwise identical to the naive three-loop reference
//! [`matmul_naive`] no matter how `BLOCK_ROWS` / `BLOCK_K` are chosen, and
//! the grid/trace/serving byte-identity invariants hold unchanged at every
//! worker count. No kernel reads uninitialised or stale memory: scratch
//! buffers are zero-filled on checkout.
//!
//! ## Scratch lifetime rules
//!
//! [`take_vec`]/[`give_vec`] check buffers out of (and back into) a
//! bounded thread-local pool. Checkout *moves* the `Vec` to the caller, so
//! two live buffers can never alias; a buffer handed back is reused by
//! later checkouts on the same thread — across rows, folds, and
//! batch-predict calls. [`ScratchBuf`] is the RAII variant that returns
//! its buffer on drop.

use crate::matrix::Matrix;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::StableHasher;
use std::cell::RefCell;

/// Row-block size for [`matmul`] (output rows processed per tile).
pub const BLOCK_ROWS: usize = 32;
/// Shared-dimension block size for [`matmul`].
pub const BLOCK_K: usize = 128;
/// Column-block size for [`matmul_transb`] (B rows kept hot per tile).
pub const BLOCK_COLS: usize = 32;

/// `out = a · b` — cache-blocked, autovectorizable matrix product.
///
/// Uses the `i-k-j` loop order: the inner loop is an axpy over a row of
/// `b`, which is contiguous in memory and vectorizes, while each output
/// element still accumulates its `k` contributions in strictly ascending
/// order. Bitwise identical to [`matmul_naive`] at every block size.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, kd) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(kd, b.rows(), "matmul inner dimension mismatch");
    assert_eq!(out.rows(), m, "matmul output row mismatch");
    assert_eq!(out.cols(), n, "matmul output col mismatch");
    out.as_mut_slice().fill(0.0);
    let mut ii = 0;
    while ii < m {
        let i_end = (ii + BLOCK_ROWS).min(m);
        // k blocks ascend, and k ascends within a block, so each output
        // element sees its addends in the naive order.
        let mut kk = 0;
        while kk < kd {
            let k_end = (kk + BLOCK_K).min(kd);
            for i in ii..i_end {
                let arow = a.row(i);
                let orow = out.row_mut(i);
                for k in kk..k_end {
                    let aik = arow[k];
                    let brow = b.row(k);
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += aik * bv;
                    }
                }
            }
            kk = k_end;
        }
        ii = i_end;
    }
}

/// Naive `i-j-k` reference product (column-strided access to `b`).
///
/// Kept as the bitwise-equivalence oracle for [`matmul`] and as the
/// "before" side of the kernel microbenches.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_naive(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, kd) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(kd, b.rows(), "matmul inner dimension mismatch");
    assert_eq!(out.rows(), m, "matmul output row mismatch");
    assert_eq!(out.cols(), n, "matmul output col mismatch");
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc = 0.0;
            for (k, &av) in arow.iter().enumerate() {
                acc += av * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
}

/// `out[i][j] = dot(a.row(i), b.row(j))` — product against a transposed
/// `b` stored row-major (`b` is `n x k`), blocked so a tile of `b` rows
/// stays cache-hot across a tile of `a` rows.
///
/// This is the natural GEMM shape for dense layers whose weights are
/// stored `(out x in)`: both operands stream row-major. Each dot
/// accumulates in ascending `k` order (zero-seeded), matching a scalar
/// `iter().zip().map().sum()`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_transb(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, kd) = (a.rows(), a.cols());
    let n = b.rows();
    assert_eq!(kd, b.cols(), "matmul_transb inner dimension mismatch");
    assert_eq!(out.rows(), m, "matmul_transb output row mismatch");
    assert_eq!(out.cols(), n, "matmul_transb output col mismatch");
    let mut jj = 0;
    while jj < n {
        let j_end = (jj + BLOCK_COLS).min(n);
        for i in 0..m {
            let arow = a.row(i);
            let orow = out.row_mut(i);
            for j in jj..j_end {
                orow[j] = dot(arow, b.row(j));
            }
        }
        jj = j_end;
    }
}

/// Fused dot product, zero-seeded, ascending order — bitwise identical to
/// `x.iter().zip(y).map(|(a, b)| a * b).sum::<f64>()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Matrix-vector product `out[o] = dot(w.row(o), x)` with `w` stored
/// `out x in` (the transposed-B convention of [`matmul_transb`]).
///
/// Rows are processed four at a time sharing one pass over `x`: each
/// output keeps its own zero-seeded ascending-`k` accumulator, so every
/// `out[o]` is bitwise identical to [`dot`] — the four independent
/// dependency chains only hide FP-add latency. This is the per-sample
/// hot loop of SGD training (a latency-bound place where the blocked
/// [`matmul`] has no batch dimension to work with).
#[inline]
pub fn gemv_t(w: &Matrix, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(w.cols(), x.len());
    debug_assert_eq!(w.rows(), out.len());
    let mut o = 0;
    while o + 4 <= out.len() {
        let (r0, r1, r2, r3) = (w.row(o), w.row(o + 1), w.row(o + 2), w.row(o + 3));
        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
        for ((((&xv, &w0), &w1), &w2), &w3) in x.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
            a0 += w0 * xv;
            a1 += w1 * xv;
            a2 += w2 * xv;
            a3 += w3 * xv;
        }
        out[o] = a0;
        out[o + 1] = a1;
        out[o + 2] = a2;
        out[o + 3] = a3;
        o += 4;
    }
    for (v, r) in out[o..].iter_mut().zip(o..) {
        *v = dot(w.row(r), x);
    }
}

/// `y += alpha * x`, element-wise (vectorizable: independent lanes).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Squared Euclidean distance, fused single pass, ascending order.
#[inline]
pub fn sq_dist(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// Numerically stable in-place softmax over one row: fused max / exp /
/// normalise. An all-`-inf` (or empty-sum) row degrades to uniform.
#[inline]
pub fn softmax_row(v: &mut [f64]) {
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
}

// --- Scratch arena -------------------------------------------------------

/// Pool-size cap: buffers beyond this are dropped instead of retained, so
/// a burst of large checkouts cannot pin memory forever.
const POOL_MAX: usize = 32;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Check a zero-filled `f64` buffer of length `len` out of the
/// thread-local pool (allocating only if the pool has nothing suitable).
/// Pair with [`give_vec`] to enable reuse, or let it drop to release.
pub fn take_vec(len: usize) -> Vec<f64> {
    let mut buf = POOL
        .with(|p| {
            let mut pool = p.borrow_mut();
            // Prefer the smallest retained buffer that already fits.
            let mut best: Option<usize> = None;
            for (i, b) in pool.iter().enumerate() {
                if b.capacity() >= len && best.is_none_or(|j| b.capacity() < pool[j].capacity()) {
                    best = Some(i);
                }
            }
            best.map(|i| pool.swap_remove(i))
        })
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    buf
}

/// Return a buffer to the thread-local pool for later [`take_vec`] reuse.
pub fn give_vec(buf: Vec<f64>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_MAX {
            pool.push(buf);
        }
    });
}

/// RAII scratch buffer: zero-filled on checkout, returned to the pool on
/// drop. Derefs to `[f64]`.
pub struct ScratchBuf {
    buf: Vec<f64>,
}

/// Check out an RAII scratch buffer of length `len` (see [`take_vec`]).
pub fn scratch(len: usize) -> ScratchBuf {
    ScratchBuf { buf: take_vec(len) }
}

impl std::ops::Deref for ScratchBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        give_vec(std::mem::take(&mut self.buf));
    }
}

/// Check a zero-filled pooled matrix of shape `rows x cols` out of the
/// scratch arena. Recycle it with [`give_matrix`].
pub fn take_matrix(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(take_vec(rows * cols), rows, cols)
}

/// Return a matrix's buffer to the scratch arena.
pub fn give_matrix(m: Matrix) {
    give_vec(m.into_vec());
}

// --- Seeded subsampling --------------------------------------------------

/// Domain tag for subsample-seed derivation words.
const TAG_SUBSAMPLE: u64 = 0x5ab5_a31e_0f00_b1a5;

/// Derive the RNG seed for a row subsample, keyed — like split ids — by
/// the exact derivation words: model seed, population size, sample size.
pub fn subsample_seed(seed: u64, n_rows: usize, keep: usize) -> u64 {
    let mut h = StableHasher::new(TAG_SUBSAMPLE);
    h.write_u64(seed);
    h.write_usize(n_rows);
    h.write_usize(keep);
    h.finish()
}

/// A seeded uniform row subsample: `keep` distinct indices drawn without
/// replacement from `0..n_rows` (partial Fisher–Yates over SplitMix64),
/// returned in ascending order so downstream iteration stays row-major.
///
/// When `keep >= n_rows` this is the identity — callers that previously
/// took an unshuffled prefix keep bitwise-identical behaviour whenever no
/// subsampling happens.
pub fn subsample_rows(n_rows: usize, keep: usize, seed: u64) -> Vec<usize> {
    if keep >= n_rows {
        return (0..n_rows).collect();
    }
    let mut idx: Vec<usize> = (0..n_rows).collect();
    let mut rng = SplitMix64::seed_from_u64(seed);
    for i in 0..keep {
        let j = i + rng.bounded_u64((n_rows - i) as u64) as usize;
        idx.swap(i, j);
    }
    idx.truncate(keep);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-2.0..2.0f64);
        }
        m
    }

    #[test]
    fn blocked_matmul_is_bitwise_naive_at_awkward_sizes() {
        // Sizes straddle the block boundaries (smaller, equal, larger,
        // non-multiples) so every tiling edge case is exercised.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (BLOCK_ROWS, BLOCK_K, 7),
            (BLOCK_ROWS + 1, BLOCK_K + 3, BLOCK_COLS + 5),
            (70, 257, 33),
        ] {
            let a = random_matrix(m, k, 11 + m as u64);
            let b = random_matrix(k, n, 97 + n as u64);
            let mut blocked = Matrix::zeros(m, n);
            let mut naive = Matrix::zeros(m, n);
            matmul(&a, &b, &mut blocked);
            matmul_naive(&a, &b, &mut naive);
            for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} diverged");
            }
        }
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = random_matrix(17, 9, 5);
        let bt = random_matrix(13, 9, 6); // stored (n x k)
        let mut b = Matrix::zeros(9, 13);
        for r in 0..13 {
            for c in 0..9 {
                b.set(c, r, bt.get(r, c));
            }
        }
        let mut via_transb = Matrix::zeros(17, 13);
        let mut via_naive = Matrix::zeros(17, 13);
        matmul_transb(&a, &bt, &mut via_transb);
        matmul_naive(&a, &b, &mut via_naive);
        for (x, y) in via_transb.as_slice().iter().zip(via_naive.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn dot_matches_iterator_sum_bitwise() {
        let a = random_matrix(1, 301, 7);
        let b = random_matrix(1, 301, 8);
        let expect: f64 = a.row(0).iter().zip(b.row(0)).map(|(x, y)| x * y).sum();
        assert_eq!(dot(a.row(0), b.row(0)).to_bits(), expect.to_bits());
    }

    #[test]
    fn gemv_t_matches_per_row_dot_bitwise() {
        // Both a 4-multiple and a remainder-tail row count.
        for rows in [8usize, 7, 3, 1] {
            let w = random_matrix(rows, 33, 21);
            let x = random_matrix(1, 33, 22);
            let mut out = vec![0.0; rows];
            gemv_t(&w, x.row(0), &mut out);
            for (r, &got) in out.iter().enumerate() {
                assert_eq!(got.to_bits(), dot(w.row(r), x.row(0)).to_bits());
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn sq_dist_is_squared_euclidean() {
        assert_eq!(sq_dist(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
        assert_eq!(sq_dist(&[], &[]), 0.0);
    }

    #[test]
    fn softmax_row_matches_models_softmax_contract() {
        let mut v = vec![1000.0, 1001.0, 999.0];
        softmax_row(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[1] > v[0] && v[0] > v[2]);
        let mut z = vec![f64::NEG_INFINITY; 4];
        softmax_row(&mut z);
        assert!(z.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn scratch_checkouts_never_alias() {
        // Ownership makes aliasing impossible; this documents the contract
        // by writing through two live checkouts and checking independence.
        let mut a = scratch(64);
        let mut b = scratch(64);
        a.fill(1.0);
        b.fill(2.0);
        assert!(a.iter().all(|&v| v == 1.0));
        assert!(b.iter().all(|&v| v == 2.0));
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn scratch_is_zeroed_on_reuse() {
        {
            let mut a = scratch(16);
            a.fill(9.0);
        } // returned to pool dirty
        let b = scratch(16);
        assert!(b.iter().all(|&v| v == 0.0), "stale scratch leaked");
    }

    #[test]
    fn pool_reuses_returned_buffers() {
        let a = take_vec(1024);
        let ptr = a.as_ptr();
        give_vec(a);
        let b = take_vec(512); // fits in the retained capacity
        assert_eq!(b.as_ptr(), ptr, "pool should hand back the same buffer");
        give_vec(b);
    }

    #[test]
    fn pooled_matrix_round_trips() {
        let m = take_matrix(4, 3);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        give_matrix(m);
    }

    #[test]
    fn subsample_is_uniformish_distinct_and_sorted() {
        let s = subsample_rows(1000, 100, 42);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        // Uniform over the whole range, not a prefix: the mean index of a
        // uniform 100-of-1000 sample concentrates near 500.
        let mean = s.iter().sum::<usize>() as f64 / 100.0;
        assert!(
            (350.0..650.0).contains(&mean),
            "subsample looks prefix-biased: mean index {mean}"
        );
    }

    #[test]
    fn subsample_identity_when_keep_covers_population() {
        assert_eq!(subsample_rows(5, 5, 9), vec![0, 1, 2, 3, 4]);
        assert_eq!(subsample_rows(5, 8, 9), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn subsample_is_seed_deterministic_and_seed_sensitive() {
        assert_eq!(subsample_rows(500, 50, 7), subsample_rows(500, 50, 7));
        assert_ne!(subsample_rows(500, 50, 7), subsample_rows(500, 50, 8));
        // Derivation keying: different (n, keep) derive different seeds.
        assert_ne!(subsample_seed(7, 500, 50), subsample_seed(7, 501, 50));
        assert_ne!(subsample_seed(7, 500, 50), subsample_seed(7, 500, 51));
    }
}
