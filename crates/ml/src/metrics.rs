//! Classification metrics.
//!
//! The paper reports **balanced accuracy** throughout because it "can handle
//! multi-class and unbalanced classification problems" (§3.1).

/// Confusion matrix: `counts[truth][pred]`.
pub fn confusion_matrix(truth: &[u32], pred: &[u32], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len(), "label/prediction length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Plain accuracy.
pub fn accuracy(truth: &[u32], pred: &[u32]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "label/prediction length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Balanced accuracy: the mean of per-class recall, over classes that occur
/// in the ground truth.
pub fn balanced_accuracy(truth: &[u32], pred: &[u32], n_classes: usize) -> f64 {
    let cm = confusion_matrix(truth, pred, n_classes);
    let mut recall_sum = 0.0;
    let mut present = 0usize;
    for (k, row) in cm.iter().enumerate() {
        let support: usize = row.iter().sum();
        if support > 0 {
            recall_sum += row[k] as f64 / support as f64;
            present += 1;
        }
    }
    if present == 0 {
        0.0
    } else {
        recall_sum / present as f64
    }
}

/// Multi-class log-loss given per-row class probabilities
/// (`proba[row][class]`), clipped for numerical safety.
pub fn log_loss(truth: &[u32], proba: &[Vec<f64>]) -> f64 {
    assert_eq!(
        truth.len(),
        proba.len(),
        "label/probability length mismatch"
    );
    if truth.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&t, p) in truth.iter().zip(proba) {
        let q = p[t as usize].clamp(1e-15, 1.0);
        total -= q.ln();
    }
    total / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::rng::SplitMix64;

    #[test]
    fn perfect_predictions() {
        let y = vec![0, 1, 2, 1];
        assert_eq!(accuracy(&y, &y), 1.0);
        assert_eq!(balanced_accuracy(&y, &y, 3), 1.0);
    }

    #[test]
    fn balanced_accuracy_is_robust_to_imbalance() {
        // 90 of class 0, 10 of class 1; predicting all-zero gets 90%
        // accuracy but only 50% balanced accuracy.
        let truth: Vec<u32> = std::iter::repeat_n(0u32, 90)
            .chain(std::iter::repeat_n(1u32, 10))
            .collect();
        let pred = vec![0u32; 100];
        assert!((accuracy(&truth, &pred) - 0.9).abs() < 1e-12);
        assert!((balanced_accuracy(&truth, &pred, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_classes_are_ignored() {
        // Class 2 never occurs in the truth: its recall must not drag the
        // mean down.
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 1, 1];
        assert_eq!(balanced_accuracy(&truth, &pred, 3), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let cm = confusion_matrix(&[0, 0, 1], &[0, 1, 1], 2);
        assert_eq!(cm, vec![vec![1, 1], vec![0, 1]]);
    }

    #[test]
    fn log_loss_perfect_and_uniform() {
        let truth = vec![0u32, 1];
        let perfect = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(log_loss(&truth, &perfect) < 1e-10);
        let uniform = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        assert!((log_loss(&truth, &uniform) - (2f64).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_panics() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn metrics_bounded() {
        let mut rng = SplitMix64::seed_from_u64(0xb0bd);
        for _ in 0..32 {
            let n = rng.gen_range(1..100usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4u32)).collect();
            let preds: Vec<u32> = (0..n).map(|_| rng.gen_range(0..4u32)).collect();
            let acc = accuracy(&labels, &preds);
            let bal = balanced_accuracy(&labels, &preds, 4);
            assert!((0.0..=1.0).contains(&acc));
            assert!((0.0..=1.0).contains(&bal));
        }
    }

    #[test]
    fn random_binary_guessing_near_half() {
        for seed in 0..32u64 {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let truth: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..2u32)).collect();
            let pred: Vec<u32> = (0..2000).map(|_| rng.gen_range(0..2u32)).collect();
            let bal = balanced_accuracy(&truth, &pred, 2);
            assert!((0.44..0.56).contains(&bal), "bal acc {bal}");
        }
    }
}
