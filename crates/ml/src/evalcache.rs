//! Content-addressed memoisation of pipeline evaluations.
//!
//! The paper's grid protocol re-evaluates enormous amounts of identical
//! work: every system runs at four *nested* time budgets (10 s / 30 s /
//! 1 min / 5 min, §3.1) with evaluation seeds derived only from the run
//! seed and the trial index, so the 5-minute cell's deterministic trial
//! prefix repeats the 10-second cell's evaluations verbatim. [`EvalCache`]
//! eliminates that redundancy without changing a single reported number.
//!
//! ## The energy-conservation rule
//!
//! Each memo entry stores the evaluation result *and* the exact
//! charge sequence ([`ChargeRec`]) the computation cost. A cache hit skips
//! the real compute but *replays* the recorded charges through the calling
//! tracker — and because a charge's virtual-time and energy deltas are pure
//! functions of `(ops, profile, device, cores, override)`, the replay
//! advances the meter bitwise identically to recomputing. Every
//! `Measurement`, trace, and artefact is therefore byte-identical with the
//! cache on or off, at any worker count; only wall-clock time changes.
//!
//! Three rules make this sound:
//!
//! 1. **Keys are content-addressed.** An [`EvalKey`] combines the pipeline
//!    fingerprint, the dataset fingerprint, the split derivation, the
//!    fidelity, and a context fingerprint (device, cores, profile
//!    override). Two lookups collide only if they would perform the same
//!    computation under the same meter configuration.
//! 2. **Cached units are span-free and idle-free.** Recording panics on
//!    `idle_for`/`idle_until`/`set_profile_override`, and callers only wrap
//!    regions that open no trace spans, so a replay needs no tracer state.
//! 3. **Only complete, fault-free units are cached.** Fault-injected
//!    trials charge partial work through the live path; fault decisions
//!    are a pure function of `(plan, seed, system, trial)` and never
//!    consult the cache.
//!
//! The table is sharded (lock striping) so parallel grid workers sharing
//! one cache rarely contend. Hit/miss *counts* depend on scheduling order
//! and are deliberately excluded from determinism guarantees — they are
//! observability counters, exported into a
//! [`green_automl_energy::MetricsRegistry`], not artefacts.

use crate::matrix::Matrix;
use crate::models::FittedModel;
use crate::pipeline::{FittedPipeline, Pipeline};
use green_automl_dataset::{ColumnData, Dataset};
use green_automl_energy::hash::StableHasher;
use green_automl_energy::{ChargeRec, CostTracker, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Domain tag for pipeline fingerprints.
const TAG_PIPELINE: u64 = 0x70_69_70_65; // "pipe"
/// Domain tag for dataset fingerprints.
const TAG_DATASET: u64 = 0x64_61_74_61; // "data"
/// Domain tag for split/derivation words.
const TAG_SPLIT: u64 = 0x73_70_6c_74; // "splt"
/// Domain tag for tracker-context fingerprints.
const TAG_CONTEXT: u64 = 0x63_6f_6e_78; // "conx"

/// Unit-kind word mixed into every split id so differently-shaped units
/// (hold-out vs CV vs bare fit …) never share an entry.
pub mod kind {
    /// Hold-out evaluation: fit + predict + balanced accuracy.
    pub const HOLDOUT: u64 = 1;
    /// k-fold cross-validation score.
    pub const CROSS_VAL: u64 = 2;
    /// Bare `Pipeline::fit` (refits, final deployments).
    pub const FIT: u64 = 3;
    /// Fit + probability predictions + score (AutoSklearn's pool entry).
    pub const PROBA_EVAL: u64 = 4;
    /// One bagging fold: model fit + out-of-fold probabilities.
    pub const FOLD_FIT: u64 = 5;
    /// One fidelity rung: fit + constraint check + predict + score.
    pub const RUNG: u64 = 6;
    /// Bare model refit on an encoded matrix (AutoGluon's collapse-refit).
    pub const REFIT: u64 = 7;
}

/// Number of lock stripes in the memo table.
const N_SHARDS: usize = 16;

/// The content-addressed key of one evaluation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// Fingerprint of the pipeline (or model) specification.
    pub pipeline_fp: u64,
    /// Fingerprint of the dataset the unit's data derives from.
    pub data_fp: u64,
    /// Fold/split derivation word: unit kind + split seed + fractions —
    /// everything that, together with `data_fp`, determines the exact rows
    /// the unit trains and validates on.
    pub split_id: u64,
    /// Fidelity (sample-size rung, fold count, …); `u64::MAX` = full.
    pub fidelity: u64,
    /// Meter context: device, cores, profile override.
    pub ctx_fp: u64,
}

impl EvalKey {
    fn shard(&self) -> usize {
        let mut h = StableHasher::new(0x5d_a2);
        h.write_u64(self.pipeline_fp);
        h.write_u64(self.data_fp);
        h.write_u64(self.split_id);
        h.write_u64(self.fidelity);
        h.write_u64(self.ctx_fp);
        (h.finish() % N_SHARDS as u64) as usize
    }
}

/// The memoised result of one evaluation unit.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedValue {
    /// Score + pipeline fitted on the unit's training part.
    Scored {
        /// Validation balanced accuracy.
        score: f64,
        /// The fitted pipeline.
        fitted: FittedPipeline,
    },
    /// Score + fitted pipeline + validation class probabilities
    /// (AutoSklearn keeps these for greedy ensemble selection).
    ScoredProba {
        /// Validation balanced accuracy.
        score: f64,
        /// The fitted pipeline.
        fitted: FittedPipeline,
        /// Class probabilities on the validation part.
        proba: Matrix,
    },
    /// A bare score (cross-validation).
    Score(f64),
    /// A bare fitted pipeline (refits).
    Fitted(FittedPipeline),
    /// A fitted model plus its out-of-fold probabilities (bagging).
    ModelProba {
        /// The fitted model.
        model: FittedModel,
        /// Probabilities on the fold's validation rows.
        proba: Matrix,
    },
    /// A bare fitted model (bag-collapse refits on encoded matrices).
    Model(FittedModel),
    /// The unit decided not to produce a result (e.g. an inference-time
    /// constraint rejected the pipeline before scoring).
    Skipped,
}

struct CacheEntry {
    value: CachedValue,
    charges: Vec<ChargeRec>,
    /// Global publication epoch (1-based insertion order).
    epoch: u64,
    /// Host id that published the entry.
    publisher: u64,
}

/// A host's view of a shared cross-host [`EvalCache`].
///
/// A cleanly connected host sees everything (`horizon: None`). A
/// *partitioned* host is frozen at the epoch it last synced: it only sees
/// entries published at or before that horizon, plus its own local
/// publications — exactly the entries it could physically hold. Because a
/// hit replays the recorded charges bitwise, a restricted view can only
/// turn would-be hits into recomputes; it can never change a single
/// reported number (the energy-conservation rule in the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheView {
    /// Identity of the viewing host (0 = coordinator).
    pub host: u64,
    /// Highest visible publication epoch; `None` = fully connected.
    pub horizon: Option<u64>,
}

/// A sharded, content-addressed memo table for evaluation units.
///
/// Shared across every cell of a benchmark grid (the `DatasetCache`
/// pattern): entries computed by the 10-second cell are hits for the
/// 30-second cell's identical trial prefix, at any `--jobs` count.
pub struct EvalCache {
    shards: Vec<Mutex<HashMap<EvalKey, std::sync::Arc<CacheEntry>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotone publication counter; each insert takes the next epoch.
    epoch: AtomicU64,
    /// Lookups where an entry existed but the view's horizon hid it.
    invisible_misses: AtomicU64,
    /// Recomputes that found an existing entry at publish time (a
    /// partitioned or racing host rejoining): the fresh duplicate is
    /// dropped, the established entry kept, and no energy is
    /// double-charged — the recompute already paid the live path.
    reconciled: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            invisible_misses: AtomicU64::new(0),
            reconciled: AtomicU64::new(0),
        }
    }

    /// Look up `key` with full (coordinator) visibility; on a miss, run
    /// `compute` with charge recording on, memoise its value and charge
    /// sequence, and return the value. On a hit, *replay* the recorded
    /// charges through `tracker` (bitwise identical meter evolution — see
    /// the module docs) and return a clone of the memoised value.
    pub fn get_or_compute<F>(
        &self,
        key: EvalKey,
        tracker: &mut CostTracker,
        compute: F,
    ) -> CachedValue
    where
        F: FnOnce(&mut CostTracker) -> CachedValue,
    {
        self.get_or_compute_viewed(key, CacheView::default(), tracker, compute)
    }

    /// [`EvalCache::get_or_compute`] through a host's [`CacheView`]: an
    /// entry published after the view's horizon by another host is treated
    /// as a miss (the partitioned host cannot have received it), and the
    /// local recompute is reconciled — established entry kept, duplicate
    /// dropped — when the host rejoins.
    pub fn get_or_compute_viewed<F>(
        &self,
        key: EvalKey,
        view: CacheView,
        tracker: &mut CostTracker,
        compute: F,
    ) -> CachedValue
    where
        F: FnOnce(&mut CostTracker) -> CachedValue,
    {
        let shard = &self.shards[key.shard()];
        let cached = shard
            .lock()
            .expect("evalcache shard poisoned")
            .get(&key)
            .cloned();
        if let Some(entry) = cached {
            let visible =
                entry.publisher == view.host || view.horizon.is_none_or(|h| entry.epoch <= h);
            if visible {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tracker.replay(&entry.charges);
                return entry.value.clone();
            }
            self.invisible_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        tracker.start_recording();
        let value = compute(tracker);
        let charges = tracker.finish_recording();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = std::sync::Arc::new(CacheEntry {
            value: value.clone(),
            charges,
            epoch,
            publisher: view.host,
        });
        // Two hosts may race (or a partitioned host recompute) the same
        // key; both computed identical content, so keeping the first
        // insert is sound — the loser's entry is dropped and counted as a
        // reconciliation, never charged twice.
        let mut table = shard.lock().expect("evalcache shard poisoned");
        match table.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.reconciled.fetch_add(1, Ordering::Relaxed);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(entry);
            }
        }
        value
    }

    /// `(hits, misses)` so far. Scheduling-dependent observability only —
    /// never part of any determinism guarantee.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The current publication epoch: the number of entries ever
    /// published. A host that snapshots this before losing connectivity
    /// gets the horizon of its frozen [`CacheView`].
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// `(invisible_misses, reconciled)`: lookups hidden by a view horizon,
    /// and recomputes that collapsed onto an established entry at publish
    /// time. Scheduling-dependent observability only.
    pub fn epoch_stats(&self) -> (u64, u64) {
        (
            self.invisible_misses.load(Ordering::Relaxed),
            self.reconciled.load(Ordering::Relaxed),
        )
    }

    /// Number of memoised entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("evalcache shard poisoned").len())
            .sum()
    }

    /// `true` if nothing has been memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export hit/miss counters into a metrics registry.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let (hits, misses) = self.stats();
        let (invisible, reconciled) = self.epoch_stats();
        reg.inc("evalcache_hits", hits);
        reg.inc("evalcache_misses", misses);
        reg.inc("evalcache_entries", self.len() as u64);
        reg.inc("evalcache_epoch", self.current_epoch());
        reg.inc("evalcache_invisible_misses", invisible);
        reg.inc("evalcache_reconciled", reconciled);
    }
}

impl std::fmt::Debug for EvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("EvalCache")
            .field("entries", &self.len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

/// Per-system handle on a shared [`EvalCache`]: the cache reference plus
/// the fingerprints every key from this system shares (its training
/// dataset and its meter context). Created once at the top of a system's
/// `fit`, threaded by copy into the search loop.
#[derive(Debug, Clone, Copy)]
pub struct EvalScope<'a> {
    cache: &'a EvalCache,
    view: CacheView,
    data_fp: u64,
    ctx_fp: u64,
}

impl<'a> EvalScope<'a> {
    /// A scope over `cache` for a system training on `train` and charging
    /// `tracker`. Compute this *after* any `set_profile_override`, so the
    /// override is part of the context fingerprint.
    pub fn new(cache: &'a EvalCache, train: &Dataset, tracker: &CostTracker) -> EvalScope<'a> {
        EvalScope::new_with_view(cache, CacheView::default(), train, tracker)
    }

    /// [`EvalScope::new`] through an explicit host [`CacheView`] — the
    /// cluster executor's entry point for cells running on a partitioned
    /// host.
    pub fn new_with_view(
        cache: &'a EvalCache,
        view: CacheView,
        train: &Dataset,
        tracker: &CostTracker,
    ) -> EvalScope<'a> {
        EvalScope {
            cache,
            view,
            data_fp: fingerprint_dataset(train),
            ctx_fp: context_fingerprint(tracker),
        }
    }

    /// A lookup handle carrying both the cache and the scope's view.
    pub fn cache(&self) -> CacheHandle<'a> {
        CacheHandle {
            cache: self.cache,
            view: self.view,
        }
    }

    /// Fingerprint of the scope's training dataset.
    pub fn data_fp(&self) -> u64 {
        self.data_fp
    }

    /// A key for a unit of `kind` evaluating `pipeline_fp` on data derived
    /// from the scope's training set by `split_words` (seeds, fraction
    /// bits — everything determining the exact rows), at `fidelity`.
    pub fn key(&self, kind: u64, pipeline_fp: u64, split_words: &[u64], fidelity: u64) -> EvalKey {
        EvalKey {
            pipeline_fp,
            data_fp: self.data_fp,
            split_id: split_word(kind, split_words),
            fidelity,
            ctx_fp: self.ctx_fp,
        }
    }
}

/// A borrowed lookup handle pairing a shared [`EvalCache`] with the
/// viewing host's [`CacheView`]. Search loops call
/// [`CacheHandle::get_or_compute`] exactly as they previously called the
/// cache directly; the view rides along invisibly.
#[derive(Debug, Clone, Copy)]
pub struct CacheHandle<'a> {
    cache: &'a EvalCache,
    view: CacheView,
}

impl CacheHandle<'_> {
    /// [`EvalCache::get_or_compute_viewed`] with the handle's view.
    pub fn get_or_compute<F>(
        &self,
        key: EvalKey,
        tracker: &mut CostTracker,
        compute: F,
    ) -> CachedValue
    where
        F: FnOnce(&mut CostTracker) -> CachedValue,
    {
        self.cache
            .get_or_compute_viewed(key, self.view, tracker, compute)
    }
}

/// Fold a unit kind and its derivation words into one split id.
pub fn split_word(kind: u64, words: &[u64]) -> u64 {
    let mut h = StableHasher::new(TAG_SPLIT ^ kind);
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Content fingerprint of a pipeline specification.
///
/// Hashes the `Debug` rendering: it covers every preprocessor and
/// hyperparameter exactly (Rust's `f64` Debug output round-trips), and
/// specs are tiny, so the formatting cost is noise next to one fit.
pub fn fingerprint_pipeline(p: &Pipeline) -> u64 {
    green_automl_energy::hash::hash_str(TAG_PIPELINE, &format!("{p:?}"))
}

/// Content fingerprint of a bare model specification.
pub fn fingerprint_model(m: &crate::models::ModelSpec) -> u64 {
    green_automl_energy::hash::hash_str(TAG_PIPELINE ^ 0x6d, &format!("{m:?}"))
}

/// Content fingerprint of a dataset: name, charging scales, labels, and
/// every cell of every column (f64s by bit pattern).
pub fn fingerprint_dataset(ds: &Dataset) -> u64 {
    let mut h = StableHasher::new(TAG_DATASET);
    h.write_str(&ds.name);
    h.write_f64(ds.row_scale);
    h.write_f64(ds.feat_scale);
    h.write_usize(ds.n_classes);
    h.write_usize(ds.labels.len());
    for &l in &ds.labels {
        h.write_u64(l as u64);
    }
    for col in &ds.columns {
        h.write_str(&col.name);
        match &col.data {
            ColumnData::Numeric(values) => {
                h.write_u64(0);
                for &v in values {
                    h.write_f64(v);
                }
            }
            ColumnData::Categorical { codes, cardinality } => {
                h.write_u64(1);
                h.write_u64(*cardinality as u64);
                for &c in codes {
                    h.write_u64(c as u64);
                }
            }
        }
    }
    h.finish()
}

/// Content fingerprint of an encoded matrix (every cell by bit pattern,
/// plus shape and charging scales). Used where a unit's training data is a
/// derived matrix whose content cannot be cheaply expressed as derivation
/// words from the scope's dataset — e.g. AutoGluon's stacker features,
/// which embed layer-1 out-of-fold probabilities.
pub fn fingerprint_matrix(m: &Matrix) -> u64 {
    let mut h = StableHasher::new(TAG_DATASET ^ 0x6d_61);
    h.write_usize(m.rows());
    h.write_usize(m.cols());
    h.write_f64(m.row_scale);
    h.write_f64(m.feat_scale);
    for r in 0..m.rows() {
        for &v in m.row(r) {
            h.write_f64(v);
        }
    }
    h.finish()
}

/// Fingerprint of the meter configuration a unit records under: device,
/// allocated cores, and any active profile override. Charge replay is only
/// bitwise-faithful under the configuration it was recorded with, so this
/// is part of every key.
pub fn context_fingerprint(tracker: &CostTracker) -> u64 {
    let mut h = StableHasher::new(TAG_CONTEXT);
    h.write_str(&format!("{:?}", tracker.device()));
    h.write_usize(tracker.cores());
    h.write_str(&format!("{:?}", tracker.profile_override()));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;
    use crate::preprocess::PreprocSpec;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::{Device, OpCounts, ParallelProfile};

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    fn task() -> Dataset {
        let mut spec = TaskSpec::new("ec", 240, 6, 2);
        spec.cluster_sep = 2.2;
        spec.generate()
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::DecisionTree(Default::default()),
        )
    }

    #[test]
    fn hit_replays_identical_energy_and_value() {
        let cache = EvalCache::new();
        let ds = task();
        let scope_tracker = tracker();
        let scope = EvalScope::new(&cache, &ds, &scope_tracker);
        let key = scope.key(
            kind::HOLDOUT,
            fingerprint_pipeline(&pipeline()),
            &[7],
            u64::MAX,
        );

        let mut cold = tracker();
        let v1 = cache.get_or_compute(key, &mut cold, |t| {
            let (score, fitted) = crate::validation::holdout_eval(&pipeline(), &ds, 0.33, 7, t);
            CachedValue::Scored { score, fitted }
        });
        assert_eq!(cache.stats(), (0, 1));

        let mut warm = tracker();
        let v2 = cache.get_or_compute(key, &mut warm, |_| panic!("second lookup must hit"));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(v1, v2);

        let (a, b) = (cold.measurement(), warm.measurement());
        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
        assert_eq!(a.energy.package_j.to_bits(), b.energy.package_j.to_bits());
        assert_eq!(a.energy.dram_j.to_bits(), b.energy.dram_j.to_bits());
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn different_keys_do_not_alias() {
        let cache = EvalCache::new();
        let mut t = tracker();
        let mk = |split: u64| EvalKey {
            pipeline_fp: 1,
            data_fp: 2,
            split_id: split,
            fidelity: u64::MAX,
            ctx_fp: 3,
        };
        for s in 0..10 {
            cache.get_or_compute(mk(s), &mut t, |tr| {
                tr.charge(
                    OpCounts::scalar(1e6 * (s + 1) as f64),
                    ParallelProfile::serial(),
                );
                CachedValue::Score(s as f64)
            });
        }
        assert_eq!(cache.len(), 10);
        for s in 0..10 {
            match cache.get_or_compute(mk(s), &mut t, |_| unreachable!()) {
                CachedValue::Score(v) => assert_eq!(v, s as f64),
                other => panic!("wrong payload {other:?}"),
            }
        }
    }

    #[test]
    fn fingerprints_separate_content() {
        let p1 = pipeline();
        let p2 = Pipeline::new(vec![], ModelSpec::GaussianNb);
        assert_ne!(fingerprint_pipeline(&p1), fingerprint_pipeline(&p2));

        let d1 = task();
        let mut d2 = task();
        d2.labels[0] ^= 1;
        assert_ne!(fingerprint_dataset(&d1), fingerprint_dataset(&d2));
        assert_eq!(fingerprint_dataset(&d1), fingerprint_dataset(&task()));
    }

    #[test]
    fn context_fingerprint_tracks_override_and_cores() {
        let t1 = CostTracker::new(Device::xeon_gold_6132(), 1);
        let t8 = CostTracker::new(Device::xeon_gold_6132(), 8);
        assert_ne!(context_fingerprint(&t1), context_fingerprint(&t8));
        let mut t8o = CostTracker::new(Device::xeon_gold_6132(), 8);
        t8o.set_profile_override(Some(ParallelProfile::embarrassing()));
        assert_ne!(context_fingerprint(&t8), context_fingerprint(&t8o));
    }

    #[test]
    fn shared_cache_is_thread_safe() {
        let cache = std::sync::Arc::new(EvalCache::new());
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    let mut t = tracker();
                    for s in 0..20u64 {
                        let key = EvalKey {
                            pipeline_fp: s % 5,
                            data_fp: 1,
                            split_id: s % 3,
                            fidelity: u64::MAX,
                            ctx_fp: 9,
                        };
                        let v = cache.get_or_compute(key, &mut t, |tr| {
                            tr.charge(
                                OpCounts::scalar(1e5 * ((s % 5) * 3 + s % 3 + 1) as f64),
                                ParallelProfile::serial(),
                            );
                            CachedValue::Score(((s % 5) * 3 + s % 3) as f64)
                        });
                        match v {
                            CachedValue::Score(x) => {
                                assert_eq!(x, ((s % 5) * 3 + s % 3) as f64, "worker {w}")
                            }
                            other => panic!("wrong payload {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(cache.len(), 15);
        assert_eq!(hits + misses, 80);
    }

    #[test]
    fn horizon_hides_foreign_entries_and_replays_local_ones() {
        let cache = EvalCache::new();
        let key = EvalKey {
            pipeline_fp: 1,
            data_fp: 2,
            split_id: 3,
            fidelity: u64::MAX,
            ctx_fp: 4,
        };
        // Host 1 partitions at epoch 0, before host 0 publishes.
        let frozen = CacheView {
            host: 1,
            horizon: Some(cache.current_epoch()),
        };
        let charge = |tr: &mut CostTracker| {
            tr.charge(OpCounts::scalar(2.5e6), ParallelProfile::serial());
            CachedValue::Score(0.75)
        };

        let mut t0 = tracker();
        cache.get_or_compute(key, &mut t0, charge);
        assert_eq!(cache.current_epoch(), 1);

        // The partitioned host cannot see host 0's entry: it recomputes,
        // and its duplicate publication reconciles onto the existing one.
        let mut t1 = tracker();
        let v = cache.get_or_compute_viewed(key, frozen, &mut t1, charge);
        assert_eq!(v, CachedValue::Score(0.75));
        assert_eq!(cache.epoch_stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        // The recompute charges exactly what the original did — energy is
        // conserved whether the lookup hits or recomputes.
        let (a, b) = (t0.measurement(), t1.measurement());
        assert_eq!(a.energy.package_j.to_bits(), b.energy.package_j.to_bits());

        // The same frozen host *does* replay its own local publications.
        let local_key = EvalKey {
            split_id: 99,
            ..key
        };
        let mut t2 = tracker();
        cache.get_or_compute_viewed(local_key, frozen, &mut t2, charge);
        let mut t3 = tracker();
        let v = cache.get_or_compute_viewed(local_key, frozen, &mut t3, |_| {
            panic!("own publication must replay locally")
        });
        assert_eq!(v, CachedValue::Score(0.75));

        // A rejoined (unrestricted) view hits the established entry.
        let mut t4 = tracker();
        cache.get_or_compute(key, &mut t4, |_| panic!("rejoined view must hit"));
        assert_eq!(
            t4.measurement().energy.package_j.to_bits(),
            t0.measurement().energy.package_j.to_bits()
        );
    }

    #[test]
    fn export_metrics_reports_counters() {
        let cache = EvalCache::new();
        let mut t = tracker();
        let key = EvalKey {
            pipeline_fp: 1,
            data_fp: 1,
            split_id: 1,
            fidelity: 1,
            ctx_fp: 1,
        };
        cache.get_or_compute(key, &mut t, |_| CachedValue::Skipped);
        cache.get_or_compute(key, &mut t, |_| unreachable!());
        let mut reg = MetricsRegistry::new();
        cache.export_metrics(&mut reg);
        assert_eq!(reg.counter("evalcache_hits"), 1);
        assert_eq!(reg.counter("evalcache_misses"), 1);
        assert_eq!(reg.counter("evalcache_entries"), 1);
    }
}
