//! ML pipelines: a preprocessor chain plus a classifier.
//!
//! The unit the AutoML systems search over. A [`Pipeline`] is a cheap,
//! cloneable *specification*; [`Pipeline::fit`] produces a
//! [`FittedPipeline`] that predicts on raw datasets and can report its
//! inference cost up front — the hook CAML's inference-time constraints
//! (paper §3.4) need.

use crate::kernel;
use crate::matrix::{encode, encoded_width, Matrix};
use crate::models::{argmax_rows, FittedModel, ModelSpec};
use crate::preprocess::{FittedPreproc, PreprocSpec};
use green_automl_dataset::Dataset;
use green_automl_energy::{CostTracker, Device, OpCounts, ParallelProfile};

/// Per-prediction framework overhead (dispatch, batching, data marshalling
/// of the Python stacks the paper measures — amortised over batch
/// prediction), charged as scalar FLOPs.
pub const PREDICT_OVERHEAD_FLOPS: f64 = 2.0e4;

/// Per-fit framework overhead (pipeline assembly, process setup).
pub const FIT_OVERHEAD_FLOPS: f64 = 5.0e6;

/// An unfitted pipeline specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Preprocessor chain (a mean imputer is prepended automatically if the
    /// chain does not start with one — models need NaN-free input).
    pub preprocs: Vec<PreprocSpec>,
    /// The classifier at the end of the chain.
    pub model: ModelSpec,
}

impl Pipeline {
    /// Build a pipeline specification.
    pub fn new(preprocs: Vec<PreprocSpec>, model: ModelSpec) -> Pipeline {
        Pipeline { preprocs, model }
    }

    /// A short human-readable description, e.g.
    /// `"standard_scaler -> random_forest"`.
    pub fn describe(&self) -> String {
        let mut parts: Vec<String> = self
            .preprocs
            .iter()
            .map(|p| match p {
                PreprocSpec::MeanImputer => "mean_imputer".to_string(),
                PreprocSpec::StandardScaler => "standard_scaler".to_string(),
                PreprocSpec::MinMaxScaler => "minmax_scaler".to_string(),
                PreprocSpec::SelectKBest { frac } => format!("select_k_best({frac:.2})"),
                PreprocSpec::Pca { frac } => format!("pca({frac:.2})"),
            })
            .collect();
        parts.push(self.model.family().to_string());
        parts.join(" -> ")
    }

    /// Fit on a dataset (encode, fit-transform the preprocessor chain, fit
    /// the model), charging all work to `tracker`.
    pub fn fit(&self, ds: &Dataset, tracker: &mut CostTracker, seed: u64) -> FittedPipeline {
        tracker.charge(
            OpCounts::scalar(FIT_OVERHEAD_FLOPS),
            ParallelProfile::serial(),
        );
        let mut x = encode(ds, tracker);
        let mut chain: Vec<PreprocSpec> = Vec::with_capacity(self.preprocs.len() + 1);
        if !matches!(self.preprocs.first(), Some(PreprocSpec::MeanImputer)) {
            chain.push(PreprocSpec::MeanImputer);
        }
        chain.extend(self.preprocs.iter().copied());

        let mut fitted_preprocs = Vec::with_capacity(chain.len());
        for spec in &chain {
            let f = spec.fit(&x, &ds.labels, ds.n_classes, tracker);
            x = f.transform_into(x, tracker);
            fitted_preprocs.push(f);
        }
        let model = self.model.fit(&x, &ds.labels, ds.n_classes, tracker, seed);
        FittedPipeline {
            spec: self.clone(),
            fitted_preprocs,
            model,
            n_classes: ds.n_classes,
            d_encoded: encoded_width(ds),
        }
    }
}

/// A fitted pipeline, ready to predict on raw datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedPipeline {
    spec: Pipeline,
    fitted_preprocs: Vec<FittedPreproc>,
    model: FittedModel,
    n_classes: usize,
    d_encoded: usize,
}

impl FittedPipeline {
    /// Assemble a fitted pipeline from already-fitted parts (used by
    /// systems that construct deployment artefacts outside `Pipeline::fit`,
    /// e.g. model distillation).
    ///
    /// # Panics
    /// Panics if `n_classes < 2`.
    pub fn from_parts(
        spec: Pipeline,
        fitted_preprocs: Vec<FittedPreproc>,
        model: FittedModel,
        n_classes: usize,
        d_encoded: usize,
    ) -> FittedPipeline {
        assert!(n_classes >= 2, "need at least two classes");
        FittedPipeline {
            spec,
            fitted_preprocs,
            model,
            n_classes,
            d_encoded,
        }
    }

    /// The specification this pipeline was fitted from.
    pub fn spec(&self) -> &Pipeline {
        &self.spec
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The fitted classifier.
    pub fn model(&self) -> &FittedModel {
        &self.model
    }

    /// Class-probability predictions on a raw dataset.
    pub fn predict_proba(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        let x = encode(ds, tracker);
        self.predict_proba_encoded(&x, tracker)
    }

    /// Class-probability predictions on an already encoded matrix.
    pub fn predict_proba_encoded(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        tracker.charge(
            OpCounts::scalar(PREDICT_OVERHEAD_FLOPS * x.rows() as f64 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        self.proba_through_chain(x, tracker)
    }

    /// Class-probability predictions on a raw dataset, charging the
    /// framework dispatch overhead **once for the whole batch** rather than
    /// once per row.
    ///
    /// Row-at-a-time serving pays [`PREDICT_OVERHEAD_FLOPS`] on every
    /// request; a serving layer that coalesces requests into a micro-batch
    /// pays it once per batch, so per-row cost strictly decreases with batch
    /// size (the preprocessor chain and model work stay per-row). The
    /// predictions themselves are identical to [`FittedPipeline::predict`].
    pub fn predict_proba_batch(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        let x = encode(ds, tracker);
        tracker.charge(
            OpCounts::scalar(PREDICT_OVERHEAD_FLOPS * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        self.proba_through_chain(&x, tracker)
    }

    fn proba_through_chain(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        if self.fitted_preprocs.is_empty() {
            return self.model.predict_proba(x, tracker);
        }
        // The caller keeps its matrix, so copy it once into a pooled
        // scratch buffer (reused across folds and batch-predict calls);
        // every stage then runs buffer-to-buffer via `transform_into`,
        // which charges exactly what `transform` would.
        let mut owned = kernel::take_matrix(x.rows(), x.cols());
        owned.as_mut_slice().copy_from_slice(x.as_slice());
        owned.row_scale = x.row_scale;
        owned.feat_scale = x.feat_scale;
        for f in &self.fitted_preprocs {
            owned = f.transform_into(owned, tracker);
        }
        let proba = self.model.predict_proba(&owned, tracker);
        kernel::give_matrix(owned);
        proba
    }

    /// Hard-label predictions on a raw dataset.
    pub fn predict(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        argmax_rows(&self.predict_proba(ds, tracker))
    }

    /// Hard-label predictions with batch-amortised dispatch overhead
    /// (see [`FittedPipeline::predict_proba_batch`]).
    pub fn predict_batch(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        argmax_rows(&self.predict_proba_batch(ds, tracker))
    }

    /// Per-row inference operations (framework overhead + preprocessor
    /// chain + model), computable *without* running a prediction — which is
    /// what constraint-aware search needs.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        let mut ops = OpCounts::scalar(PREDICT_OVERHEAD_FLOPS);
        let mut d = self.d_encoded;
        for f in &self.fitted_preprocs {
            ops += f.inference_ops_per_row(d);
            d = f.output_cols(d);
        }
        ops + self.model.inference_ops_per_row()
    }

    /// Estimated wall seconds to predict one instance on `cores` of
    /// `device` (used for inference-time constraints, paper Fig. 6).
    pub fn inference_seconds_per_row(&self, device: Device, cores: usize) -> f64 {
        let mut probe = CostTracker::new(device, cores);
        probe.charge(
            self.inference_ops_per_row(),
            ParallelProfile::batch_inference(),
        );
        probe.now()
    }

    /// Parameter-count proxy of the fitted model.
    pub fn n_params(&self) -> usize {
        self.model.n_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::tree::TreeParams;
    use crate::{metrics, MlpParams};
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    fn task() -> (Dataset, Dataset) {
        let mut spec = TaskSpec::new("p", 400, 8, 2);
        spec.cluster_sep = 2.2;
        spec.categorical_frac = 0.25;
        spec.missing_frac = 0.05;
        let ds = spec.generate();
        train_test_split(&ds, 0.34, 0)
    }

    #[test]
    fn full_pipeline_learns_with_missing_and_categorical_data() {
        let (train, test) = task();
        let mut t = tracker();
        let spec = Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::RandomForest(Default::default()),
        );
        let fitted = spec.fit(&train, &mut t, 0);
        let pred = fitted.predict(&test, &mut t);
        let bal = metrics::balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.8, "pipeline balanced accuracy {bal}");
    }

    #[test]
    fn imputer_is_prepended_automatically() {
        let (train, _) = task();
        let mut t = tracker();
        let spec = Pipeline::new(vec![], ModelSpec::GaussianNb);
        let fitted = spec.fit(&train, &mut t, 0);
        assert!(matches!(
            fitted.fitted_preprocs[0],
            FittedPreproc::MeanImputer { .. }
        ));
    }

    #[test]
    fn describe_is_readable() {
        let spec = Pipeline::new(
            vec![PreprocSpec::StandardScaler, PreprocSpec::Pca { frac: 0.5 }],
            ModelSpec::DecisionTree(TreeParams::default()),
        );
        assert_eq!(
            spec.describe(),
            "standard_scaler -> pca(0.50) -> decision_tree"
        );
    }

    #[test]
    fn inference_ops_match_constraint_estimates() {
        let (train, _) = task();
        let mut t = tracker();
        let light = Pipeline::new(vec![], ModelSpec::GaussianNb).fit(&train, &mut t, 0);
        let heavy = Pipeline::new(vec![], ModelSpec::RandomForest(Default::default()))
            .fit(&train, &mut t, 0);
        let dev = Device::xeon_gold_6132();
        let sl = light.inference_seconds_per_row(dev, 1);
        let sh = heavy.inference_seconds_per_row(dev, 1);
        assert!(sl > 0.0);
        assert!(sh > sl, "forest must be slower per row than NB");
    }

    #[test]
    fn per_prediction_overhead_sets_a_floor() {
        let (train, _) = task();
        let mut t = tracker();
        let fitted = Pipeline::new(vec![], ModelSpec::GaussianNb).fit(&train, &mut t, 0);
        let ops = fitted.inference_ops_per_row();
        assert!(ops.scalar_flops >= PREDICT_OVERHEAD_FLOPS);
    }

    #[test]
    fn mlp_pipeline_charges_gpu_eligible_flops() {
        let (train, test) = task();
        let mut t = tracker();
        let fitted = Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::Mlp(MlpParams {
                epochs: 5,
                ..Default::default()
            }),
        )
        .fit(&train, &mut t, 0);
        let _ = fitted.predict(&test, &mut t);
        assert!(t.measurement().ops.matmul_flops > 0.0);
    }

    #[test]
    fn batched_predictions_match_and_cost_less() {
        let (train, test) = task();
        let mut t = tracker();
        let fitted = Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::RandomForest(Default::default()),
        )
        .fit(&train, &mut t, 0);

        let mut row_t = tracker();
        let row_pred = fitted.predict(&test, &mut row_t);
        let mut batch_t = tracker();
        let batch_pred = fitted.predict_batch(&test, &mut batch_t);

        assert_eq!(row_pred, batch_pred);
        let saved = PREDICT_OVERHEAD_FLOPS * (test.n_rows() - 1) as f64;
        let d_flops = row_t.measurement().ops.scalar_flops - batch_t.measurement().ops.scalar_flops;
        assert!(
            (d_flops - saved).abs() < 1.0,
            "batch path must amortise exactly the dispatch overhead, got {d_flops} vs {saved}"
        );
    }

    #[test]
    fn predictions_are_deterministic_given_seed() {
        let (train, test) = task();
        let run = || {
            let mut t = tracker();
            let fitted = Pipeline::new(
                vec![PreprocSpec::StandardScaler],
                ModelSpec::RandomForest(Default::default()),
            )
            .fit(&train, &mut t, 7);
            fitted.predict(&test, &mut t)
        };
        assert_eq!(run(), run());
    }
}
