//! The classifier zoo.
//!
//! Enum dispatch (no trait objects): [`ModelSpec`] describes an unfitted
//! model with hyperparameters, [`FittedModel`] a trained one. This keeps
//! everything `Clone + Send` and lets search code treat models as plain
//! values. The families cover the paper's Table 1 search spaces:
//!
//! * tree-based — [`tree`] (CART), [`forest`] (random forest & extra trees),
//!   [`boosting`] (gradient-boosted trees): the backbone of AutoGluon,
//!   FLAML, and ASKL;
//! * linear — [`linear`] (softmax regression and linear SVM);
//! * distance/probabilistic — [`knn`], [`naive_bayes`];
//! * neural — [`mlp`] and the TabPFN-style [`attention`] in-context model.

pub mod attention;
pub mod boosting;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod mlp;
pub mod naive_bayes;
pub mod tree;

use crate::matrix::Matrix;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts};

/// An unfitted classifier with hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// CART decision tree.
    DecisionTree(tree::TreeParams),
    /// Bootstrap-aggregated forest of CART trees.
    RandomForest(forest::ForestParams),
    /// Extremely randomised trees (random split thresholds).
    ExtraTrees(forest::ForestParams),
    /// Gradient-boosted shallow trees with softmax objective.
    GradientBoosting(boosting::GbParams),
    /// Brute-force k-nearest-neighbours.
    Knn(knn::KnnParams),
    /// Multinomial logistic regression trained by SGD.
    Logistic(linear::LogisticParams),
    /// One-vs-rest linear SVM trained by hinge-loss SGD.
    LinearSvm(linear::SvmParams),
    /// Gaussian naive Bayes.
    GaussianNb,
    /// Multi-layer perceptron.
    Mlp(mlp::MlpParams),
    /// TabPFN-style frozen in-context attention classifier.
    InContextAttention(attention::AttentionParams),
}

impl ModelSpec {
    /// Short display name of the model family.
    pub fn family(&self) -> &'static str {
        match self {
            ModelSpec::DecisionTree(_) => "decision_tree",
            ModelSpec::RandomForest(_) => "random_forest",
            ModelSpec::ExtraTrees(_) => "extra_trees",
            ModelSpec::GradientBoosting(_) => "gradient_boosting",
            ModelSpec::Knn(_) => "knn",
            ModelSpec::Logistic(_) => "logistic_regression",
            ModelSpec::LinearSvm(_) => "linear_svm",
            ModelSpec::GaussianNb => "gaussian_nb",
            ModelSpec::Mlp(_) => "mlp",
            ModelSpec::InContextAttention(_) => "in_context_attention",
        }
    }

    /// A coarse *a-priori* estimate of the operations a fit would charge on
    /// `n_rows x d` data with `n_classes` classes (before logical-size
    /// scaling). Systems use this to decide whether a model fits their
    /// remaining budget — estimates are deliberately rough; the optimism of
    /// real AutoML budget planners (paper Table 7) comes from exactly this
    /// kind of error.
    pub fn estimate_fit_ops(&self, n_rows: usize, d: usize, n_classes: usize) -> OpCounts {
        let n = n_rows as f64;
        let d = d as f64;
        let k = n_classes as f64;
        let logn = n.log2().max(1.0);
        match self {
            ModelSpec::DecisionTree(p) => {
                OpCounts::scalar(
                    n * logn * d * p.max_features_frac * (p.max_depth as f64).min(logn),
                ) + OpCounts::tree(n * d * p.max_features_frac * 2.0)
            }
            ModelSpec::RandomForest(p) | ModelSpec::ExtraTrees(p) => {
                let per_tree =
                    n * logn * d * p.tree.max_features_frac * (p.tree.max_depth as f64).min(logn);
                OpCounts::scalar(per_tree * p.n_trees as f64)
                    + OpCounts::tree(n * d * p.tree.max_features_frac * 2.0 * p.n_trees as f64)
            }
            ModelSpec::GradientBoosting(p) => {
                let rounds = (p.n_rounds.min((600 / n_classes).max(3))) as f64;
                OpCounts::scalar(rounds * k * n * logn * d * 0.8)
                    + OpCounts::tree(rounds * k * n * d)
            }
            ModelSpec::Knn(_) => OpCounts::mem(n * d * 8.0),
            ModelSpec::Logistic(p) => OpCounts::matmul(4.0 * p.epochs as f64 * n * d * k),
            ModelSpec::LinearSvm(p) => OpCounts::matmul(4.0 * p.epochs as f64 * n * d * k),
            ModelSpec::GaussianNb => OpCounts::scalar(4.0 * n * d),
            ModelSpec::Mlp(p) => {
                let width = (d * p.hidden1 as f64
                    + p.hidden1 as f64 * p.hidden2.max(1) as f64
                    + p.hidden1.max(p.hidden2) as f64 * k)
                    * 2.0;
                OpCounts::matmul(3.0 * width * n * p.epochs as f64)
            }
            ModelSpec::InContextAttention(_) => OpCounts::scalar(5.0e8) + OpCounts::mem(1.0e8),
        }
    }

    /// Estimated virtual seconds of a fit on `cores` of `device`, including
    /// the dataset's logical-size factor.
    pub fn estimate_fit_seconds(
        &self,
        n_rows: usize,
        d: usize,
        n_classes: usize,
        scale: f64,
        device: green_automl_energy::Device,
        cores: usize,
    ) -> f64 {
        let mut probe = CostTracker::new(device, cores);
        probe.charge(
            self.estimate_fit_ops(n_rows, d, n_classes) * scale,
            green_automl_energy::ParallelProfile::model_training(),
        );
        probe.now()
    }

    /// Train this model.
    ///
    /// # Panics
    /// Panics if `x` is empty, labels mismatch the row count, or a label is
    /// `>= n_classes`.
    pub fn fit(
        &self,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        seed: u64,
    ) -> FittedModel {
        assert!(x.rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.rows(), y.len(), "row/label count mismatch");
        assert!(
            y.iter().all(|&l| (l as usize) < n_classes),
            "label out of range"
        );
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed_c0de);
        match self {
            ModelSpec::DecisionTree(p) => FittedModel::Tree(tree::DecisionTree::fit_classifier(
                p,
                x,
                y,
                n_classes,
                tracker,
                &mut rng,
                green_automl_energy::ParallelProfile::model_training(),
            )),
            ModelSpec::RandomForest(p) => FittedModel::Forest(forest::Forest::fit(
                p, false, x, y, n_classes, tracker, &mut rng,
            )),
            ModelSpec::ExtraTrees(p) => FittedModel::Forest(forest::Forest::fit(
                p, true, x, y, n_classes, tracker, &mut rng,
            )),
            ModelSpec::GradientBoosting(p) => FittedModel::Boosting(
                boosting::GradientBoosting::fit(p, x, y, n_classes, tracker, &mut rng),
            ),
            ModelSpec::Knn(p) => FittedModel::Knn(knn::Knn::fit(p, x, y, n_classes, tracker, seed)),
            ModelSpec::Logistic(p) => FittedModel::Linear(linear::LinearModel::fit_logistic(
                p, x, y, n_classes, tracker, &mut rng,
            )),
            ModelSpec::LinearSvm(p) => FittedModel::Linear(linear::LinearModel::fit_svm(
                p, x, y, n_classes, tracker, &mut rng,
            )),
            ModelSpec::GaussianNb => {
                FittedModel::Nb(naive_bayes::GaussianNb::fit(x, y, n_classes, tracker))
            }
            ModelSpec::Mlp(p) => {
                FittedModel::Mlp(mlp::Mlp::fit(p, x, y, n_classes, tracker, &mut rng))
            }
            ModelSpec::InContextAttention(p) => FittedModel::Attention(
                attention::InContextAttention::fit(p, x, y, n_classes, tracker, seed),
            ),
        }
    }
}

/// A trained classifier.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// Trained decision tree.
    Tree(tree::DecisionTree),
    /// Trained forest (random forest or extra trees).
    Forest(forest::Forest),
    /// Trained gradient-boosting ensemble.
    Boosting(boosting::GradientBoosting),
    /// Fitted k-NN (stores its training data).
    Knn(knn::Knn),
    /// Trained linear model (logistic or SVM).
    Linear(linear::LinearModel),
    /// Fitted Gaussian naive Bayes.
    Nb(naive_bayes::GaussianNb),
    /// Trained MLP.
    Mlp(mlp::Mlp),
    /// Loaded in-context attention model.
    Attention(attention::InContextAttention),
}

impl FittedModel {
    /// Per-row class-probability predictions (`rows x n_classes`).
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        match self {
            FittedModel::Tree(m) => m.predict_proba(x, tracker),
            FittedModel::Forest(m) => m.predict_proba(x, tracker),
            FittedModel::Boosting(m) => m.predict_proba(x, tracker),
            FittedModel::Knn(m) => m.predict_proba(x, tracker),
            FittedModel::Linear(m) => m.predict_proba(x, tracker),
            FittedModel::Nb(m) => m.predict_proba(x, tracker),
            FittedModel::Mlp(m) => m.predict_proba(x, tracker),
            FittedModel::Attention(m) => m.predict_proba(x, tracker),
        }
    }

    /// Hard-label predictions (argmax of probabilities).
    pub fn predict(&self, x: &Matrix, tracker: &mut CostTracker) -> Vec<u32> {
        argmax_rows(&self.predict_proba(x, tracker))
    }

    /// Per-row inference operations, for constraint checking and inference-
    /// cost estimation without running a prediction.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        match self {
            FittedModel::Tree(m) => m.inference_ops_per_row(),
            FittedModel::Forest(m) => m.inference_ops_per_row(),
            FittedModel::Boosting(m) => m.inference_ops_per_row(),
            FittedModel::Knn(m) => m.inference_ops_per_row(),
            FittedModel::Linear(m) => m.inference_ops_per_row(),
            FittedModel::Nb(m) => m.inference_ops_per_row(),
            FittedModel::Mlp(m) => m.inference_ops_per_row(),
            FittedModel::Attention(m) => m.inference_ops_per_row(),
        }
    }

    /// Rough parameter count (model size proxy).
    pub fn n_params(&self) -> usize {
        match self {
            FittedModel::Tree(m) => m.n_nodes(),
            FittedModel::Forest(m) => m.n_nodes(),
            FittedModel::Boosting(m) => m.n_nodes(),
            FittedModel::Knn(m) => m.n_stored_cells(),
            FittedModel::Linear(m) => m.n_weights(),
            FittedModel::Nb(m) => m.n_params(),
            FittedModel::Mlp(m) => m.n_weights(),
            FittedModel::Attention(m) => m.n_params(),
        }
    }
}

/// Row-wise argmax of a probability matrix.
pub fn argmax_rows(proba: &Matrix) -> Vec<u32> {
    (0..proba.rows())
        .map(|r| {
            let row = proba.row(r);
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// Numerically stable in-place softmax over a slice.
pub(crate) fn softmax_inplace(v: &mut [f64]) {
    crate::kernel::softmax_row(v);
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for model tests.
    use super::*;
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;

    /// A fresh single-core tracker on the paper's CPU testbed.
    pub fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    /// Train/test matrices for a reasonably separable task.
    pub fn separable_task(classes: usize) -> ((Matrix, Vec<u32>), (Matrix, Vec<u32>)) {
        let mut spec = TaskSpec::new("fixture", 400, 8, classes);
        spec.cluster_sep = 2.2;
        spec.label_noise = 0.02;
        spec.categorical_frac = 0.0;
        let ds = spec.generate();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let mut t = tracker();
        let xtr = crate::matrix::encode(&train, &mut t);
        let xte = crate::matrix::encode(&test, &mut t);
        ((xtr, train.labels), (xte, test.labels))
    }

    /// Assert a model spec learns the separable task well above chance and
    /// charges non-zero energy; returns the balanced accuracy.
    pub fn assert_learns(spec: &ModelSpec, classes: usize, min_bal_acc: f64) -> f64 {
        let ((xtr, ytr), (xte, yte)) = separable_task(classes);
        let mut tr = tracker();
        let fitted = spec.fit(&xtr, &ytr, classes, &mut tr, 0);
        let fit_energy = tr.measurement().energy.total_joules();
        assert!(fit_energy > 0.0, "{}: fit charged no energy", spec.family());
        let pred = fitted.predict(&xte, &mut tr);
        let bal = crate::metrics::balanced_accuracy(&yte, &pred, classes);
        assert!(
            bal >= min_bal_acc,
            "{}: balanced accuracy {bal:.3} below {min_bal_acc}",
            spec.family()
        );
        assert!(
            tr.measurement().energy.total_joules() > fit_energy,
            "{}: predict charged no energy",
            spec.family()
        );
        assert!(!fitted.inference_ops_per_row().is_zero());
        assert!(fitted.n_params() > 0);
        bal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        let m = Matrix::from_vec(vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05], 2, 3);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut v = vec![1000.0, 1001.0, 999.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[1] > v[0] && v[0] > v[2]);
        let mut z = vec![f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_inplace(&mut z);
        assert!((z[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty matrix")]
    fn fitting_empty_panics() {
        let x = Matrix::zeros(0, 3);
        let mut t = testutil::tracker();
        let _ = ModelSpec::GaussianNb.fit(&x, &[], 2, &mut t, 0);
    }

    #[test]
    fn fit_estimates_track_actual_costs_within_an_order() {
        use green_automl_energy::Device;
        let ((x, y), _) = testutil::separable_task(2);
        for spec in [
            ModelSpec::DecisionTree(Default::default()),
            ModelSpec::RandomForest(Default::default()),
            ModelSpec::GradientBoosting(Default::default()),
            ModelSpec::Logistic(Default::default()),
            ModelSpec::GaussianNb,
            ModelSpec::Mlp(Default::default()),
        ] {
            let est =
                spec.estimate_fit_seconds(x.rows(), x.cols(), 2, 1.0, Device::xeon_gold_6132(), 1);
            let mut t = testutil::tracker();
            let _ = spec.fit(&x, &y, 2, &mut t, 0);
            let actual = t.now();
            let ratio = est / actual;
            assert!(
                (0.05..=20.0).contains(&ratio),
                "{}: estimate {est:.4}s vs actual {actual:.4}s (ratio {ratio:.2})",
                spec.family()
            );
        }
    }

    #[test]
    fn estimates_scale_with_the_charging_factor() {
        use green_automl_energy::Device;
        let spec = ModelSpec::RandomForest(Default::default());
        let d = Device::xeon_gold_6132();
        let base = spec.estimate_fit_seconds(500, 20, 2, 1.0, d, 1);
        let scaled = spec.estimate_fit_seconds(500, 20, 2, 100.0, d, 1);
        assert!((scaled / base - 100.0).abs() < 1.0);
    }

    #[test]
    fn family_names_are_unique() {
        let specs = [
            ModelSpec::DecisionTree(Default::default()),
            ModelSpec::RandomForest(Default::default()),
            ModelSpec::ExtraTrees(Default::default()),
            ModelSpec::GradientBoosting(Default::default()),
            ModelSpec::Knn(Default::default()),
            ModelSpec::Logistic(Default::default()),
            ModelSpec::LinearSvm(Default::default()),
            ModelSpec::GaussianNb,
            ModelSpec::Mlp(Default::default()),
            ModelSpec::InContextAttention(Default::default()),
        ];
        let names: std::collections::BTreeSet<_> = specs.iter().map(|s| s.family()).collect();
        assert_eq!(names.len(), specs.len());
    }
}
