//! A multi-layer perceptron with ReLU hidden layers and a softmax head,
//! trained by mini-batch SGD with momentum.
//!
//! Its operations are charged as `matmul_flops`, so on the GPU testbed this
//! family (and the attention model) offloads while tree models cannot —
//! the mechanism behind the paper's Table 3.
//!
//! The forward pass runs on the shared [`crate::kernel`] primitives:
//! per-sample dots during SGD, cache-blocked batched matmuls at predict
//! time (weights are stored `out x in`, so the batched form is
//! [`kernel::matmul_transb`] — bitwise identical to the per-row dot loop).

use crate::kernel;
use crate::matrix::Matrix;
use crate::models::softmax_inplace;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpParams {
    /// First hidden-layer width.
    pub hidden1: usize,
    /// Second hidden-layer width (0 disables the layer).
    pub hidden2: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden1: 48,
            hidden2: 0,
            epochs: 30,
            lr: 0.02,
            batch: 32,
        }
    }
}

/// One dense layer: weights `out x in` + bias.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
}

impl Dense {
    fn new(d_in: usize, d_out: usize, rng: &mut SplitMix64) -> Dense {
        let scale = (2.0 / d_in as f64).sqrt();
        let mut w = Matrix::zeros(d_out, d_in);
        for v in w.as_mut_slice() {
            *v = (rng.gen_range(-1.0..1.0f64)) * scale;
        }
        Dense {
            w,
            b: vec![0.0; d_out],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.b.len(), 0.0);
        kernel::gemv_t(&self.w, input, out);
        for (v, &b) in out.iter_mut().zip(&self.b) {
            *v += b;
        }
    }

    /// Batched forward: `out[r] = b + W · a[r]` for every row at once.
    fn forward_batch(&self, a: &Matrix, out: &mut Matrix) {
        kernel::matmul_transb(a, &self.w, out);
        for r in 0..out.rows() {
            for (v, &b) in out.row_mut(r).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
    }

    fn flops(&self) -> f64 {
        2.0 * (self.w.rows() * self.w.cols()) as f64
    }
}

/// A fitted MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    n_classes: usize,
}

impl Mlp {
    /// Train with mini-batch SGD (per-sample updates inside shuffled
    /// batches; momentum-free for simplicity and determinism).
    pub fn fit(
        params: &MlpParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> Mlp {
        assert!(params.hidden1 >= 1, "hidden1 must be >= 1");
        assert!(params.epochs >= 1, "need at least one epoch");
        let (n, d) = (x.rows(), x.cols());
        let mut dims = vec![d, params.hidden1];
        if params.hidden2 > 0 {
            dims.push(params.hidden2);
        }
        dims.push(n_classes);
        let mut layers: Vec<Dense> = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        let mut activations: Vec<Vec<f64>> = vec![Vec::new(); layers.len() + 1];
        // Gradient buffers, reused across samples and epochs.
        let mut delta: Vec<f64> = Vec::new();
        let mut next_delta: Vec<f64> = Vec::new();
        for epoch in 0..params.epochs {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let step = params.lr / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                // Forward.
                activations[0].clear();
                activations[0].extend_from_slice(x.row(i));
                for (l, layer) in layers.iter().enumerate() {
                    let (head, tail) = activations.split_at_mut(l + 1);
                    layer.forward(&head[l], &mut tail[0]);
                    if l + 1 < layers.len() {
                        for v in tail[0].iter_mut() {
                            *v = v.max(0.0); // ReLU
                        }
                    }
                }
                // Softmax + cross-entropy gradient at the head.
                let last = activations.len() - 1;
                delta.clear();
                delta.extend_from_slice(&activations[last]);
                softmax_inplace(&mut delta);
                delta[y[i] as usize] -= 1.0;
                // Backward.
                for l in (0..layers.len()).rev() {
                    let input = &activations[l];
                    next_delta.clear();
                    next_delta.resize(input.len(), 0.0);
                    {
                        let layer = &mut layers[l];
                        for o in 0..layer.b.len() {
                            let g = delta[o];
                            let row = layer.w.row_mut(o);
                            // Two axpy-shaped passes (gradient propagation
                            // off the pre-update weights, then the weight
                            // step) — same values as one fused loop, but
                            // each pass vectorizes cleanly.
                            for (nd, &w) in next_delta.iter_mut().zip(row.iter()) {
                                *nd += w * g;
                            }
                            let gs = step * g;
                            for (w, &xv) in row.iter_mut().zip(input) {
                                *w -= gs * xv;
                            }
                            layer.b[o] -= step * g;
                        }
                    }
                    if l > 0 {
                        // ReLU derivative w.r.t. pre-activation sign.
                        for (nd, &a) in next_delta.iter_mut().zip(&activations[l]) {
                            if a <= 0.0 {
                                *nd = 0.0;
                            }
                        }
                    }
                    std::mem::swap(&mut delta, &mut next_delta);
                }
            }
        }
        let flops_per_row: f64 = layers.iter().map(Dense::flops).sum();
        tracker.charge(
            OpCounts::matmul(3.0 * flops_per_row * (n * params.epochs) as f64 * x.scale()),
            ParallelProfile::model_training(),
        );
        Mlp { layers, n_classes }
    }

    /// Class-probability predictions: one blocked matmul per layer over
    /// the whole batch, on pooled scratch matrices.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let n = x.rows();
        let mut out = Matrix::zeros(n, self.n_classes);
        let n_layers = self.layers.len();
        let mut cur = kernel::take_matrix(n, self.layers[0].b.len());
        self.layers[0].forward_batch(x, &mut cur);
        if n_layers > 1 {
            for v in cur.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
        for (l, layer) in self.layers.iter().enumerate().skip(1) {
            let mut next = kernel::take_matrix(n, layer.b.len());
            layer.forward_batch(&cur, &mut next);
            if l + 1 < n_layers {
                for v in next.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            kernel::give_matrix(std::mem::replace(&mut cur, next));
        }
        for r in 0..n {
            let row = cur.row_mut(r);
            softmax_inplace(row);
            out.row_mut(r).copy_from_slice(row);
        }
        kernel::give_matrix(cur);
        let flops_per_row: f64 = self.layers.iter().map(Dense::flops).sum();
        tracker.charge(
            OpCounts::matmul(flops_per_row * n as f64 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row inference cost (dense forward pass).
    pub fn inference_ops_per_row(&self) -> OpCounts {
        OpCounts::matmul(self.layers.iter().map(Dense::flops).sum())
    }

    /// Weight count.
    pub fn n_weights(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(&ModelSpec::Mlp(MlpParams::default()), 2, 0.75);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::Mlp(MlpParams::default()), 3, 0.55);
    }

    #[test]
    fn solves_xor_unlike_a_linear_model() {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = if i % 2 == 0 { -1.0 } else { 1.0 };
            let b = if (i / 2) % 2 == 0 { -1.0 } else { 1.0 };
            let ji = (i as f64 * 0.013).sin() * 0.05;
            data.extend([a + ji, b - ji]);
            y.push(u32::from((a > 0.0) != (b > 0.0)));
        }
        let x = Matrix::from_vec(data, 400, 2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(3);
        let mlp = Mlp::fit(
            &MlpParams {
                hidden1: 16,
                epochs: 80,
                lr: 0.05,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
        );
        let acc = crate::metrics::accuracy(
            &y,
            &crate::models::argmax_rows(&mlp.predict_proba(&x, &mut t)),
        );
        assert!(acc > 0.95, "MLP should solve XOR, got {acc}");
    }

    #[test]
    fn batched_predict_matches_per_row_forward_bitwise() {
        // The blocked batched forward must reproduce the sequential
        // per-row dot loop exactly (same summation order per output).
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(11);
        let mlp = Mlp::fit(
            &MlpParams {
                hidden2: 12,
                ..Default::default()
            },
            &x,
            &y,
            3,
            &mut t,
            &mut rng,
        );
        let batched = mlp.predict_proba(&xt, &mut t);
        let mut reference = Matrix::zeros(xt.rows(), 3);
        let mut buf_in: Vec<f64>;
        let mut buf_out: Vec<f64> = Vec::new();
        for r in 0..xt.rows() {
            buf_in = xt.row(r).to_vec();
            for (l, layer) in mlp.layers.iter().enumerate() {
                layer.forward(&buf_in, &mut buf_out);
                if l + 1 < mlp.layers.len() {
                    for v in buf_out.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                std::mem::swap(&mut buf_in, &mut buf_out);
            }
            softmax_inplace(&mut buf_in);
            reference.row_mut(r).copy_from_slice(&buf_in);
        }
        assert_eq!(batched, reference);
    }

    #[test]
    fn charges_matmul_flops_not_tree_steps() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = Mlp::fit(&MlpParams::default(), &x, &y, 2, &mut t, &mut rng);
        let ops = t.measurement().ops;
        assert!(ops.matmul_flops > 0.0);
        assert_eq!(ops.tree_steps, 0.0);
    }

    #[test]
    fn deeper_network_has_more_weights() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let shallow = Mlp::fit(&MlpParams::default(), &x, &y, 2, &mut t, &mut rng);
        let deep = Mlp::fit(
            &MlpParams {
                hidden2: 32,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
        );
        assert!(deep.n_weights() > shallow.n_weights());
        assert!(deep.inference_ops_per_row().total() > shallow.inference_ops_per_row().total());
    }
}
