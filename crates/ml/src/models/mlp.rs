//! A multi-layer perceptron with ReLU hidden layers and a softmax head,
//! trained by mini-batch SGD with momentum.
//!
//! Its operations are charged as `matmul_flops`, so on the GPU testbed this
//! family (and the attention model) offloads while tree models cannot —
//! the mechanism behind the paper's Table 3.

use crate::matrix::Matrix;
use crate::models::softmax_inplace;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpParams {
    /// First hidden-layer width.
    pub hidden1: usize,
    /// Second hidden-layer width (0 disables the layer).
    pub hidden2: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden1: 48,
            hidden2: 0,
            epochs: 30,
            lr: 0.02,
            batch: 32,
        }
    }
}

/// One dense layer: weights `out x in` + bias.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
}

impl Dense {
    fn new(d_in: usize, d_out: usize, rng: &mut SplitMix64) -> Dense {
        let scale = (2.0 / d_in as f64).sqrt();
        let mut w = Matrix::zeros(d_out, d_in);
        for v in w.as_mut_slice() {
            *v = (rng.gen_range(-1.0..1.0f64)) * scale;
        }
        Dense {
            w,
            b: vec![0.0; d_out],
        }
    }

    fn forward(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.b.len() {
            let row = self.w.row(o);
            let z: f64 = self.b[o] + row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>();
            out.push(z);
        }
    }

    fn flops(&self) -> f64 {
        2.0 * (self.w.rows() * self.w.cols()) as f64
    }
}

/// A fitted MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    n_classes: usize,
}

impl Mlp {
    /// Train with mini-batch SGD (per-sample updates inside shuffled
    /// batches; momentum-free for simplicity and determinism).
    pub fn fit(
        params: &MlpParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> Mlp {
        assert!(params.hidden1 >= 1, "hidden1 must be >= 1");
        assert!(params.epochs >= 1, "need at least one epoch");
        let (n, d) = (x.rows(), x.cols());
        let mut dims = vec![d, params.hidden1];
        if params.hidden2 > 0 {
            dims.push(params.hidden2);
        }
        dims.push(n_classes);
        let mut layers: Vec<Dense> = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();

        let mut order: Vec<usize> = (0..n).collect();
        let mut activations: Vec<Vec<f64>> = vec![Vec::new(); layers.len() + 1];
        for epoch in 0..params.epochs {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let step = params.lr / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                // Forward.
                activations[0] = x.row(i).to_vec();
                for (l, layer) in layers.iter().enumerate() {
                    let (head, tail) = activations.split_at_mut(l + 1);
                    layer.forward(&head[l], &mut tail[0]);
                    if l + 1 < layers.len() {
                        for v in tail[0].iter_mut() {
                            *v = v.max(0.0); // ReLU
                        }
                    }
                }
                // Softmax + cross-entropy gradient at the head.
                let last = activations.len() - 1;
                let mut delta = activations[last].clone();
                softmax_inplace(&mut delta);
                delta[y[i] as usize] -= 1.0;
                // Backward.
                for l in (0..layers.len()).rev() {
                    let input = activations[l].clone();
                    let mut next_delta = vec![0.0; input.len()];
                    {
                        let layer = &mut layers[l];
                        for o in 0..layer.b.len() {
                            let g = delta[o];
                            let row = layer.w.row_mut(o);
                            for (c, w) in row.iter_mut().enumerate() {
                                next_delta[c] += *w * g;
                                *w -= step * g * input[c];
                            }
                            layer.b[o] -= step * g;
                        }
                    }
                    if l > 0 {
                        // ReLU derivative w.r.t. pre-activation sign.
                        for (nd, &a) in next_delta.iter_mut().zip(&activations[l]) {
                            if a <= 0.0 {
                                *nd = 0.0;
                            }
                        }
                    }
                    delta = next_delta;
                }
            }
        }
        let flops_per_row: f64 = layers.iter().map(Dense::flops).sum();
        tracker.charge(
            OpCounts::matmul(3.0 * flops_per_row * (n * params.epochs) as f64 * x.scale()),
            ParallelProfile::model_training(),
        );
        Mlp { layers, n_classes }
    }

    /// Class-probability predictions.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let n = x.rows();
        let mut out = Matrix::zeros(n, self.n_classes);
        let mut buf_in: Vec<f64>;
        let mut buf_out: Vec<f64> = Vec::new();
        for r in 0..n {
            buf_in = x.row(r).to_vec();
            for (l, layer) in self.layers.iter().enumerate() {
                layer.forward(&buf_in, &mut buf_out);
                if l + 1 < self.layers.len() {
                    for v in buf_out.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                std::mem::swap(&mut buf_in, &mut buf_out);
            }
            softmax_inplace(&mut buf_in);
            out.row_mut(r).copy_from_slice(&buf_in);
        }
        let flops_per_row: f64 = self.layers.iter().map(Dense::flops).sum();
        tracker.charge(
            OpCounts::matmul(flops_per_row * n as f64 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row inference cost (dense forward pass).
    pub fn inference_ops_per_row(&self) -> OpCounts {
        OpCounts::matmul(self.layers.iter().map(Dense::flops).sum())
    }

    /// Weight count.
    pub fn n_weights(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(&ModelSpec::Mlp(MlpParams::default()), 2, 0.75);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::Mlp(MlpParams::default()), 3, 0.55);
    }

    #[test]
    fn solves_xor_unlike_a_linear_model() {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let a = if i % 2 == 0 { -1.0 } else { 1.0 };
            let b = if (i / 2) % 2 == 0 { -1.0 } else { 1.0 };
            let ji = (i as f64 * 0.013).sin() * 0.05;
            data.extend([a + ji, b - ji]);
            y.push(u32::from((a > 0.0) != (b > 0.0)));
        }
        let x = Matrix::from_vec(data, 400, 2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(3);
        let mlp = Mlp::fit(
            &MlpParams {
                hidden1: 16,
                epochs: 80,
                lr: 0.05,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
        );
        let acc = crate::metrics::accuracy(
            &y,
            &crate::models::argmax_rows(&mlp.predict_proba(&x, &mut t)),
        );
        assert!(acc > 0.95, "MLP should solve XOR, got {acc}");
    }

    #[test]
    fn charges_matmul_flops_not_tree_steps() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = Mlp::fit(&MlpParams::default(), &x, &y, 2, &mut t, &mut rng);
        let ops = t.measurement().ops;
        assert!(ops.matmul_flops > 0.0);
        assert_eq!(ops.tree_steps, 0.0);
    }

    #[test]
    fn deeper_network_has_more_weights() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let shallow = Mlp::fit(&MlpParams::default(), &x, &y, 2, &mut t, &mut rng);
        let deep = Mlp::fit(
            &MlpParams {
                hidden2: 32,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
        );
        assert!(deep.n_weights() > shallow.n_weights());
        assert!(deep.inference_ops_per_row().total() > shallow.inference_ops_per_row().total());
    }
}
