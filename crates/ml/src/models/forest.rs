//! Random forests and extremely randomised trees.
//!
//! Bootstrap aggregation over [`DecisionTree`]s with per-node feature
//! subsampling. Tree fitting charges with an *embarrassingly parallel*
//! profile — this is the workload that makes AutoGluon benefit from extra
//! cores in the paper's Fig. 5, in contrast to sequential Bayesian
//! optimisation.

use crate::matrix::Matrix;
use crate::models::tree::{DecisionTree, TreeParams};
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (feature subsampling defaults to `sqrt(d)/d` via
    /// `max_features_frac` if left at 1.0 — see [`ForestParams::default`]).
    pub tree: TreeParams,
    /// Draw bootstrap samples (`false` trains each tree on the full data,
    /// extra-trees style).
    pub bootstrap: bool,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 48,
            tree: TreeParams {
                max_depth: 12,
                min_samples_split: 8,
                min_samples_leaf: 2,
                max_features_frac: 0.35,
                random_thresholds: false,
            },
            bootstrap: true,
        }
    }
}

impl ForestParams {
    /// FLAML-style "low cost" starting point: 5 trees, at most 10 leaves
    /// each (approximated by depth 4 with large leaves).
    pub fn low_cost() -> Self {
        ForestParams {
            n_trees: 5,
            tree: TreeParams {
                max_depth: 4,
                min_samples_split: 16,
                min_samples_leaf: 8,
                max_features_frac: 0.5,
                random_thresholds: false,
            },
            bootstrap: true,
        }
    }
}

/// A fitted forest.
#[derive(Debug, Clone, PartialEq)]
pub struct Forest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl Forest {
    /// Fit `params.n_trees` trees; `random_thresholds = true` gives extra
    /// trees.
    pub fn fit(
        params: &ForestParams,
        random_thresholds: bool,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> Forest {
        assert!(params.n_trees >= 1, "need at least one tree");
        let n = x.rows();
        let tree_params = TreeParams {
            random_thresholds,
            ..params.tree
        };
        let trees = (0..params.n_trees)
            .map(|_| {
                if params.bootstrap {
                    let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                    let bx = x.take_rows(&rows);
                    let by: Vec<u32> = rows.iter().map(|&r| y[r]).collect();
                    DecisionTree::fit_classifier(
                        &tree_params,
                        &bx,
                        &by,
                        n_classes,
                        tracker,
                        rng,
                        ParallelProfile::embarrassing(),
                    )
                } else {
                    // Extra-trees style: fit straight on the shared data
                    // (the old per-tree `x.clone()` was pure overhead).
                    DecisionTree::fit_classifier(
                        &tree_params,
                        x,
                        y,
                        n_classes,
                        tracker,
                        rng,
                        ParallelProfile::embarrassing(),
                    )
                }
            })
            .collect();
        Forest { trees, n_classes }
    }

    /// Average the class distributions of all trees.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for tree in &self.trees {
            let p = tree.predict_proba(x, tracker);
            for r in 0..x.rows() {
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(p.row(r)) {
                    *d += s;
                }
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for v in out.as_mut_slice() {
            *v *= inv;
        }
        tracker.charge(
            OpCounts::scalar((x.rows() * self.n_classes * self.trees.len()) as f64 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row cost: one traversal per tree plus the averaging.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        self.trees
            .iter()
            .map(|t| t.inference_ops_per_row())
            .sum::<OpCounts>()
            + OpCounts::scalar((self.n_classes * self.trees.len()) as f64)
    }

    /// Total node count across trees.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, tracker};
    use crate::models::ModelSpec;
    use green_automl_energy::Device;

    #[test]
    fn random_forest_learns() {
        assert_learns(&ModelSpec::RandomForest(ForestParams::default()), 2, 0.85);
    }

    #[test]
    fn extra_trees_learn() {
        assert_learns(&ModelSpec::ExtraTrees(ForestParams::default()), 3, 0.6);
    }

    #[test]
    fn forest_beats_single_default_tree_on_noisy_multiclass() {
        let tree_acc = assert_learns(&ModelSpec::DecisionTree(Default::default()), 4, 0.5);
        let forest_acc = assert_learns(&ModelSpec::RandomForest(ForestParams::default()), 4, 0.5);
        assert!(
            forest_acc >= tree_acc - 0.02,
            "forest {forest_acc} should not trail tree {tree_acc}"
        );
    }

    #[test]
    fn low_cost_preset_is_much_cheaper() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let cost = |p: ForestParams| {
            let mut t = tracker();
            let mut rng = SplitMix64::seed_from_u64(0);
            let _ = Forest::fit(&p, false, &x, &y, 2, &mut t, &mut rng);
            t.now()
        };
        let full = cost(ForestParams::default());
        let low = cost(ForestParams::low_cost());
        assert!(low * 4.0 < full, "low-cost {low} vs default {full}");
    }

    #[test]
    fn inference_cost_grows_with_tree_count() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let fit = |n: usize| {
            let mut t = tracker();
            let mut rng = SplitMix64::seed_from_u64(0);
            Forest::fit(
                &ForestParams {
                    n_trees: n,
                    ..Default::default()
                },
                false,
                &x,
                &y,
                2,
                &mut t,
                &mut rng,
            )
        };
        let small = fit(5).inference_ops_per_row().total();
        let big = fit(50).inference_ops_per_row().total();
        assert!(big > small * 5.0);
    }

    #[test]
    fn forest_training_benefits_from_cores_energy_wise() {
        // The embarrassing-parallel profile means an 8-core fit finishes
        // faster and burns less total energy than a 1-core fit — the
        // AutoGluon side of the paper's Fig. 5.
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let run = |cores: usize| {
            let mut t = CostTracker::new(Device::xeon_gold_6132(), cores);
            let mut rng = SplitMix64::seed_from_u64(0);
            let _ = Forest::fit(&ForestParams::default(), false, &x, &y, 2, &mut t, &mut rng);
            let m = t.measurement();
            (m.duration_s, m.energy.total_joules())
        };
        let (t1, e1) = run(1);
        let (t8, e8) = run(8);
        assert!(t8 < t1 / 3.0, "8-core fit should be >3x faster");
        assert!(e8 < e1, "8-core fit should use less energy ({e8} vs {e1})");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let f = Forest::fit(&ForestParams::default(), false, &x, &y, 3, &mut t, &mut rng);
        let p = f.predict_proba(&xt, &mut t);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
        }
    }
}
