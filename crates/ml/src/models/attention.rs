//! A TabPFN-style in-context attention classifier.
//!
//! TabPFN (Hollmann et al., ICLR 2023) is a transformer meta-trained on
//! synthetic datasets: *fitting* on a new dataset is just loading the frozen
//! model and storing the training examples, while *every prediction*
//! forward-passes the training set through the network. That asymmetry —
//! near-zero execution energy, very high inference energy — drives several
//! of the paper's headline findings (Fig. 3, Fig. 4's ~26k-prediction
//! crossover, Table 3's GPU speed-up, Table 4's top row).
//!
//! We cannot meta-train a 26M-parameter transformer in-session, so this
//! model substitutes *frozen, deterministically seeded* weights (a random
//! feature projection plus per-layer mixing matrices — a Johnson-
//! Lindenstrauss-style learned-metric kernel): the same code path, the same
//! cost structure, honest (if weaker) predictive behaviour on small tasks.
//! Operations are charged at the cost of the real architecture
//! ([`CHARGED`]: 12 layers, d=512, 16 permutation-ensemble passes), which is
//! what a user of TabPFN 0.1.9 pays; the locally *computed* network is a
//! reduced instance ([`AttentionParams`]) so tests stay fast.

use crate::matrix::Matrix;
use crate::models::softmax_inplace;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// The architecture whose cost is charged (TabPFN 0.1.9-like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargedArch {
    /// Transformer layers.
    pub layers: f64,
    /// Model width.
    pub d_model: f64,
    /// Feed-forward width.
    pub d_ff: f64,
    /// Permutation-ensemble forward passes per prediction batch.
    pub ensemble_passes: f64,
    /// Parameter count (for the model-load cost and size reporting).
    pub n_params: f64,
}

/// TabPFN 0.1.9's published architecture scale (the default
/// `N_ensemble_configurations` of that release is small — 3–4 permutation
/// passes; the per-prediction cost this yields reproduces both the paper's
/// Table 4 magnitude and its Fig. 4 crossover decade).
pub const CHARGED: ChargedArch = ChargedArch {
    layers: 12.0,
    d_model: 512.0,
    d_ff: 1024.0,
    ensemble_passes: 4.0,
    n_params: 25.8e6,
};

/// Parameters of the locally computed (reduced) in-context model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionParams {
    /// Working embedding width of the computed model.
    pub d_model: usize,
    /// Attention refinement layers actually computed.
    pub n_layers: usize,
    /// Permutation-ensemble passes actually computed (averaged).
    pub passes: usize,
    /// Maximum stored context rows (TabPFN was "mainly developed for
    /// datasets with up to 1k instances"); larger training sets are
    /// subsampled.
    pub max_context: usize,
    /// Attention temperature multiplier.
    pub temperature: f64,
}

impl Default for AttentionParams {
    fn default() -> Self {
        AttentionParams {
            d_model: 24,
            n_layers: 2,
            passes: 2,
            max_context: 1000,
            temperature: 4.0,
        }
    }
}

/// A "loaded" in-context attention model holding its training context.
#[derive(Debug, Clone, PartialEq)]
pub struct InContextAttention {
    params: AttentionParams,
    /// Standardised context features (raw space).
    context: Matrix,
    context_labels: Vec<u32>,
    feat_means: Vec<f64>,
    feat_stds: Vec<f64>,
    n_classes: usize,
}

/// Cost of deserialising the pretrained checkpoint (once per fit).
const LOAD_SCALAR_FLOPS: f64 = 5.0e8;

impl InContextAttention {
    /// "Fit": load the frozen model and memorise (a subsample of) the
    /// training data. No search, no gradient steps — the paper's point.
    pub fn fit(
        params: &AttentionParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
    ) -> InContextAttention {
        assert!(params.d_model >= 2, "d_model must be >= 2");
        assert!(params.n_layers >= 1 && params.passes >= 1);
        let keep = x.rows().min(params.max_context);
        let rows: Vec<usize> = (0..keep).collect();
        let context = x.take_rows(&rows);

        // Standardisation statistics over the context.
        let d = x.cols();
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for r in 0..keep {
            for (c, &v) in context.row(r).iter().enumerate() {
                if !v.is_nan() {
                    means[c] += v;
                }
            }
        }
        for m in &mut means {
            *m /= keep.max(1) as f64;
        }
        for r in 0..keep {
            for (c, &v) in context.row(r).iter().enumerate() {
                if !v.is_nan() {
                    stds[c] += (v - means[c]).powi(2);
                }
            }
        }
        for s in &mut stds {
            *s = (*s / keep.max(1) as f64).sqrt().max(1e-9);
        }

        // Checkpoint load + context standardisation — the entirety of the
        // execution-stage cost.
        tracker.charge(
            OpCounts::scalar(LOAD_SCALAR_FLOPS + (keep * d) as f64 * 2.0)
                + OpCounts::mem(CHARGED.n_params * 4.0),
            ParallelProfile::model_training(),
        );

        InContextAttention {
            params: *params,
            context,
            context_labels: y[..keep].to_vec(),
            feat_means: means,
            feat_stds: stds,
            n_classes,
        }
    }

    /// Forward-pass the context and the query batch; average the
    /// permutation-ensemble passes.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let m = x.rows();
        let n_ctx = self.context.rows();
        let d_in = self.context.cols();
        let dm = self.params.d_model;

        let mut out = Matrix::zeros(m, self.n_classes);
        for pass in 0..self.params.passes {
            // Frozen "meta-trained" weights: deterministic per pass.
            let mut wrng = SplitMix64::seed_from_u64(0x7ab_f17 + pass as u64);
            let proj = random_matrix(d_in, dm, &mut wrng);
            let mixes: Vec<Matrix> = (0..self.params.n_layers)
                .map(|_| random_matrix(dm, dm, &mut wrng))
                .collect();

            let mut e_ctx = self.embed(&self.context, &proj);
            let mut e_test = self.embed(x, &proj);
            for mix in &mixes {
                e_ctx = attention_refine(&e_ctx, &e_ctx, mix, self.params.temperature);
                e_test = attention_refine(&e_test, &e_ctx, mix, self.params.temperature);
            }

            // Label head: attend from each query to the context labels.
            let scale = self.params.temperature / (dm as f64).sqrt();
            for r in 0..m {
                let q = e_test.row(r);
                let mut scores: Vec<f64> = (0..n_ctx)
                    .map(|i| scale * e_ctx.row(i).iter().zip(q).map(|(a, b)| a * b).sum::<f64>())
                    .collect();
                softmax_inplace(&mut scores);
                let votes = out.row_mut(r);
                for (i, &w) in scores.iter().enumerate() {
                    votes[self.context_labels[i] as usize] += w;
                }
            }
        }
        let inv = 1.0 / self.params.passes as f64;
        for v in out.as_mut_slice() {
            *v *= inv;
        }

        // Charge the real architecture's cost for this batch, extrapolated
        // to the nominal prediction count.
        let batch = self.charged_batch_flops(m);
        tracker.charge(
            OpCounts::matmul(batch * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// FLOPs the full-size architecture spends on a batch of `m` queries.
    fn charged_batch_flops(&self, m: usize) -> f64 {
        let n = self.context.rows() as f64;
        let m = m as f64;
        let a = CHARGED;
        let tokens = n + m;
        // Per layer: context self-attention, query→context cross-attention,
        // and the per-token projections + feed-forward.
        let attn = 2.0 * n * n * a.d_model + 2.0 * m * n * a.d_model;
        let dense = tokens * (4.0 * a.d_model * a.d_model + 2.0 * a.d_model * a.d_ff);
        a.ensemble_passes * (a.layers * (attn + dense) + tokens * a.d_model * 2.0)
    }

    /// Per-row inference cost at the charged architecture (amortising the
    /// context self-attention over a 512-row batch, TabPFN's default
    /// chunking).
    pub fn inference_ops_per_row(&self) -> OpCounts {
        const CHUNK: f64 = 512.0;
        let per_chunk = self.charged_batch_flops(CHUNK as usize);
        OpCounts::matmul(per_chunk / CHUNK)
    }

    /// Size of the (charged) pretrained model.
    pub fn n_params(&self) -> usize {
        CHARGED.n_params as usize
    }

    /// Rows kept as in-context examples.
    pub fn context_rows(&self) -> usize {
        self.context.rows()
    }

    fn embed(&self, x: &Matrix, proj: &Matrix) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        let dm = proj.cols();
        let mut out = Matrix::zeros(n, dm);
        for r in 0..n {
            let row = x.row(r);
            for k in 0..dm {
                let mut acc = 0.0;
                for c in 0..d {
                    let v = row[c];
                    if !v.is_nan() {
                        let z = (v - self.feat_means[c]) / self.feat_stds[c];
                        acc += z * proj.get(c, k);
                    }
                }
                out.set(r, k, acc);
            }
            normalize_row(out.row_mut(r));
        }
        out
    }
}

/// One attention refinement: each query row mixes in an attention-weighted
/// summary of the keys, through a frozen mixing matrix, then re-normalises.
fn attention_refine(queries: &Matrix, keys: &Matrix, mix: &Matrix, temperature: f64) -> Matrix {
    let (nq, d) = (queries.rows(), queries.cols());
    let nk = keys.rows();
    let scale = temperature / (d as f64).sqrt();
    let mut out = Matrix::zeros(nq, d);
    for r in 0..nq {
        let q = queries.row(r);
        let mut scores: Vec<f64> = (0..nk)
            .map(|i| scale * keys.row(i).iter().zip(q).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        softmax_inplace(&mut scores);
        // Attention-weighted key summary.
        let mut summary = vec![0.0; d];
        for (i, &w) in scores.iter().enumerate() {
            for (s, &k) in summary.iter_mut().zip(keys.row(i)) {
                *s += w * k;
            }
        }
        // Residual mix through the frozen matrix.
        let dst = out.row_mut(r);
        for c in 0..d {
            let mixed: f64 = (0..d).map(|j| summary[j] * mix.get(j, c)).sum();
            dst[c] = 0.75 * q[c] + 0.25 * mixed;
        }
        normalize_row(dst);
    }
    out
}

fn random_matrix(rows: usize, cols: usize, rng: &mut SplitMix64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let scale = (1.0 / rows as f64).sqrt();
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0..1.0f64) * scale;
    }
    m
}

fn normalize_row(row: &mut [f64]) {
    let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for v in row {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, tracker};
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(
            &ModelSpec::InContextAttention(AttentionParams::default()),
            2,
            0.7,
        );
    }

    #[test]
    fn fit_is_nearly_free_but_inference_is_expensive() {
        // The defining TabPFN asymmetry (paper Fig. 3): execution energy is
        // negligible, inference energy is orders of magnitude above other
        // models'.
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t);
        let fit_time = t.now();
        assert!(
            fit_time < 1.0,
            "fit should take well under a virtual second"
        );
        let _ = model.predict_proba(&xt, &mut t);
        let predict_time = t.now() - fit_time;
        assert!(
            predict_time > fit_time * 5.0,
            "inference {predict_time}s should dwarf fit {fit_time}s"
        );
    }

    #[test]
    fn inference_cost_is_orders_above_a_tree() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let attn = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t);
        let mut rng = SplitMix64::seed_from_u64(0);
        let tree = crate::models::tree::DecisionTree::fit_classifier(
            &Default::default(),
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
            ParallelProfile::model_training(),
        );
        // Compare virtual seconds of the per-row op bundles on the same
        // device (tree steps and matmul flops have different throughputs).
        let secs = |ops: OpCounts| {
            let mut probe = tracker();
            probe.charge(ops, ParallelProfile::serial());
            probe.now()
        };
        let ratio = secs(attn.inference_ops_per_row()) / secs(tree.inference_ops_per_row());
        assert!(
            ratio > 100.0,
            "attention per-row inference should be >>100x a tree's, got {ratio:.1}x"
        );
    }

    #[test]
    fn context_is_capped_at_1k_rows() {
        let x = Matrix::zeros(3000, 4);
        let y: Vec<u32> = (0..3000).map(|i| (i % 2) as u32).collect();
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t);
        assert_eq!(model.context_rows(), 1000);
    }

    #[test]
    fn charged_ops_are_gpu_eligible() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t);
        let before = t.measurement().ops;
        let _ = model.predict_proba(&xt, &mut t);
        let delta = t.measurement().ops;
        assert!(delta.matmul_flops > before.matmul_flops);
        assert_eq!(delta.tree_steps, 0.0);
    }

    #[test]
    fn probabilities_are_normalised() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 3, &mut t);
        let p = model.predict_proba(&xt, &mut t);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn reported_size_matches_charged_architecture() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t);
        assert_eq!(model.n_params(), CHARGED.n_params as usize);
    }
}
