//! A TabPFN-style in-context attention classifier.
//!
//! TabPFN (Hollmann et al., ICLR 2023) is a transformer meta-trained on
//! synthetic datasets: *fitting* on a new dataset is just loading the frozen
//! model and storing the training examples, while *every prediction*
//! forward-passes the training set through the network. That asymmetry —
//! near-zero execution energy, very high inference energy — drives several
//! of the paper's headline findings (Fig. 3, Fig. 4's ~26k-prediction
//! crossover, Table 3's GPU speed-up, Table 4's top row).
//!
//! We cannot meta-train a 26M-parameter transformer in-session, so this
//! model substitutes *frozen, deterministically seeded* weights (a random
//! feature projection plus per-layer mixing matrices — a Johnson-
//! Lindenstrauss-style learned-metric kernel): the same code path, the same
//! cost structure, honest (if weaker) predictive behaviour on small tasks.
//! Operations are charged at the cost of the real architecture
//! ([`CHARGED`]: 12 layers, d=512, 16 permutation-ensemble passes), which is
//! what a user of TabPFN 0.1.9 pays; the locally *computed* network is a
//! reduced instance ([`AttentionParams`]) so tests stay fast.
//!
//! The computed forward pass runs entirely on the shared [`crate::kernel`]
//! primitives: embedding and attention refinement are cache-blocked
//! matmuls over scratch-arena matrices (no per-row allocation), with the
//! kernel module's fixed-summation-order contract keeping every prediction
//! bitwise deterministic.

use crate::kernel;
use crate::matrix::Matrix;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// The architecture whose cost is charged (TabPFN 0.1.9-like).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargedArch {
    /// Transformer layers.
    pub layers: f64,
    /// Model width.
    pub d_model: f64,
    /// Feed-forward width.
    pub d_ff: f64,
    /// Permutation-ensemble forward passes per prediction batch.
    pub ensemble_passes: f64,
    /// Parameter count (for the model-load cost and size reporting).
    pub n_params: f64,
}

/// TabPFN 0.1.9's published architecture scale (the default
/// `N_ensemble_configurations` of that release is small — 3–4 permutation
/// passes; the per-prediction cost this yields reproduces both the paper's
/// Table 4 magnitude and its Fig. 4 crossover decade).
pub const CHARGED: ChargedArch = ChargedArch {
    layers: 12.0,
    d_model: 512.0,
    d_ff: 1024.0,
    ensemble_passes: 4.0,
    n_params: 25.8e6,
};

/// Parameters of the locally computed (reduced) in-context model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionParams {
    /// Working embedding width of the computed model.
    pub d_model: usize,
    /// Attention refinement layers actually computed.
    pub n_layers: usize,
    /// Permutation-ensemble passes actually computed (averaged).
    pub passes: usize,
    /// Maximum stored context rows (TabPFN was "mainly developed for
    /// datasets with up to 1k instances"); larger training sets are
    /// subsampled (seeded uniform sample, not a row prefix).
    pub max_context: usize,
    /// Attention temperature multiplier.
    pub temperature: f64,
}

impl Default for AttentionParams {
    fn default() -> Self {
        AttentionParams {
            d_model: 24,
            n_layers: 2,
            passes: 2,
            max_context: 1000,
            temperature: 4.0,
        }
    }
}

/// A "loaded" in-context attention model holding its training context.
#[derive(Debug, Clone, PartialEq)]
pub struct InContextAttention {
    params: AttentionParams,
    /// Standardised context features (raw space).
    context: Matrix,
    context_labels: Vec<u32>,
    feat_means: Vec<f64>,
    feat_stds: Vec<f64>,
    n_classes: usize,
}

/// Cost of deserialising the pretrained checkpoint (once per fit).
const LOAD_SCALAR_FLOPS: f64 = 5.0e8;

impl InContextAttention {
    /// "Fit": load the frozen model and memorise (a seeded uniform
    /// subsample of) the training data. No search, no gradient steps — the
    /// paper's point. `seed` keys the subsample derivation; it is unused
    /// when the training set fits within `max_context`.
    pub fn fit(
        params: &AttentionParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        seed: u64,
    ) -> InContextAttention {
        assert!(params.d_model >= 2, "d_model must be >= 2");
        assert!(params.n_layers >= 1 && params.passes >= 1);
        let keep = x.rows().min(params.max_context);
        let rows =
            kernel::subsample_rows(x.rows(), keep, kernel::subsample_seed(seed, x.rows(), keep));
        let context = x.take_rows(&rows);
        let context_labels: Vec<u32> = rows.iter().map(|&r| y[r]).collect();

        // Standardisation statistics over the context, per-column over the
        // *non-NaN* entries: sums and squared deviations divide by each
        // column's observed count, not the row count, so missing-value
        // columns are not biased toward zero.
        let d = x.cols();
        let mut means = vec![0.0; d];
        let mut counts = vec![0usize; d];
        let mut stds = vec![0.0; d];
        for r in 0..keep {
            for ((c, &v), cnt) in context.row(r).iter().enumerate().zip(counts.iter_mut()) {
                let _ = c;
                if !v.is_nan() {
                    *cnt += 1;
                }
            }
            for (c, &v) in context.row(r).iter().enumerate() {
                if !v.is_nan() {
                    means[c] += v;
                }
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            *m /= cnt.max(1) as f64;
        }
        for r in 0..keep {
            for (c, &v) in context.row(r).iter().enumerate() {
                if !v.is_nan() {
                    stds[c] += (v - means[c]).powi(2);
                }
            }
        }
        for (s, &cnt) in stds.iter_mut().zip(&counts) {
            *s = (*s / cnt.max(1) as f64).sqrt().max(1e-9);
        }

        // Checkpoint load + context standardisation — the entirety of the
        // execution-stage cost.
        tracker.charge(
            OpCounts::scalar(LOAD_SCALAR_FLOPS + (keep * d) as f64 * 2.0)
                + OpCounts::mem(CHARGED.n_params * 4.0),
            ParallelProfile::model_training(),
        );

        InContextAttention {
            params: *params,
            context,
            context_labels,
            feat_means: means,
            feat_stds: stds,
            n_classes,
        }
    }

    /// Per-column standardisation statistics `(means, stds)` computed over
    /// the non-NaN context entries.
    pub fn standardisation(&self) -> (&[f64], &[f64]) {
        (&self.feat_means, &self.feat_stds)
    }

    /// Forward-pass the context and the query batch; average the
    /// permutation-ensemble passes. The whole pass is batched matmuls over
    /// pooled scratch matrices — nothing allocates per row.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let m = x.rows();
        let n_ctx = self.context.rows();
        let d_in = self.context.cols();
        let dm = self.params.d_model;
        assert_eq!(x.cols(), d_in, "query width must match context width");

        let mut out = Matrix::zeros(m, self.n_classes);

        // Standardised inputs are pass-invariant: build them once.
        let xz_ctx = self.standardized(&self.context);
        let xz_test = self.standardized(x);

        // Scratch matrices reused across passes and layers (and, via the
        // thread-local arena, across folds and batch-predict calls).
        let mut proj = kernel::take_matrix(d_in, dm);
        let mut mixes: Vec<Matrix> = (0..self.params.n_layers)
            .map(|_| kernel::take_matrix(dm, dm))
            .collect();
        let mut e_ctx = kernel::take_matrix(n_ctx, dm);
        let mut e_test = kernel::take_matrix(m, dm);
        let mut r_ctx = kernel::take_matrix(n_ctx, dm);
        let mut r_test = kernel::take_matrix(m, dm);
        let mut sum_ctx = kernel::take_matrix(n_ctx, dm);
        let mut sum_test = kernel::take_matrix(m, dm);
        let mut sc_ctx = kernel::take_matrix(n_ctx, n_ctx);
        let mut sc_test = kernel::take_matrix(m, n_ctx);

        for pass in 0..self.params.passes {
            // Frozen "meta-trained" weights: deterministic per pass.
            let mut wrng = SplitMix64::seed_from_u64(0x7ab_f17 + pass as u64);
            fill_random(&mut proj, &mut wrng);
            for mix in &mut mixes {
                fill_random(mix, &mut wrng);
            }

            kernel::matmul(&xz_ctx, &proj, &mut e_ctx);
            normalize_rows(&mut e_ctx);
            kernel::matmul(&xz_test, &proj, &mut e_test);
            normalize_rows(&mut e_test);
            for mix in &mixes {
                attention_refine(
                    &e_ctx,
                    &e_ctx,
                    mix,
                    self.params.temperature,
                    &mut sc_ctx,
                    &mut sum_ctx,
                    &mut r_ctx,
                );
                std::mem::swap(&mut e_ctx, &mut r_ctx);
                attention_refine(
                    &e_test,
                    &e_ctx,
                    mix,
                    self.params.temperature,
                    &mut sc_test,
                    &mut sum_test,
                    &mut r_test,
                );
                std::mem::swap(&mut e_test, &mut r_test);
            }

            // Label head: attend from each query to the context labels.
            let scale = self.params.temperature / (dm as f64).sqrt();
            kernel::matmul_transb(&e_test, &e_ctx, &mut sc_test);
            for r in 0..m {
                let scores = sc_test.row_mut(r);
                for s in scores.iter_mut() {
                    *s *= scale;
                }
                kernel::softmax_row(scores);
                let votes = out.row_mut(r);
                for (i, &w) in scores.iter().enumerate() {
                    votes[self.context_labels[i] as usize] += w;
                }
            }
        }
        for mtx in [
            proj, e_ctx, e_test, r_ctx, r_test, sum_ctx, sum_test, sc_ctx, sc_test, xz_ctx, xz_test,
        ] {
            kernel::give_matrix(mtx);
        }
        for mix in mixes {
            kernel::give_matrix(mix);
        }

        let inv = 1.0 / self.params.passes as f64;
        for v in out.as_mut_slice() {
            *v *= inv;
        }

        // Charge the real architecture's cost for this batch, extrapolated
        // to the nominal prediction count.
        let batch = self.charged_batch_flops(m);
        tracker.charge(
            OpCounts::matmul(batch * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// FLOPs the full-size architecture spends on a batch of `m` queries.
    fn charged_batch_flops(&self, m: usize) -> f64 {
        let n = self.context.rows() as f64;
        let m = m as f64;
        let a = CHARGED;
        let tokens = n + m;
        // Per layer: context self-attention, query→context cross-attention,
        // and the per-token projections + feed-forward.
        let attn = 2.0 * n * n * a.d_model + 2.0 * m * n * a.d_model;
        let dense = tokens * (4.0 * a.d_model * a.d_model + 2.0 * a.d_model * a.d_ff);
        a.ensemble_passes * (a.layers * (attn + dense) + tokens * a.d_model * 2.0)
    }

    /// Per-row inference cost at the charged architecture (amortising the
    /// context self-attention over a 512-row batch, TabPFN's default
    /// chunking).
    pub fn inference_ops_per_row(&self) -> OpCounts {
        const CHUNK: f64 = 512.0;
        let per_chunk = self.charged_batch_flops(CHUNK as usize);
        OpCounts::matmul(per_chunk / CHUNK)
    }

    /// Size of the (charged) pretrained model.
    pub fn n_params(&self) -> usize {
        CHARGED.n_params as usize
    }

    /// Rows kept as in-context examples.
    pub fn context_rows(&self) -> usize {
        self.context.rows()
    }

    /// Standardise a matrix into a pooled scratch matrix; missing entries
    /// contribute zero (they are mean-valued under the learned metric).
    fn standardized(&self, x: &Matrix) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        let mut out = kernel::take_matrix(n, d);
        for r in 0..n {
            let src = x.row(r);
            let dst = out.row_mut(r);
            for c in 0..d {
                let v = src[c];
                dst[c] = if v.is_nan() {
                    0.0
                } else {
                    (v - self.feat_means[c]) / self.feat_stds[c]
                };
            }
        }
        out
    }
}

/// One attention refinement over a whole query batch: scaled-dot scores
/// against the keys (`matmul_transb`, both operands row-major), row
/// softmax, attention-weighted key summaries and the frozen residual mix
/// as blocked matmuls — every output element keeps the naive ascending
/// summation order, so the batched form is bitwise identical to the old
/// row-at-a-time loop.
fn attention_refine(
    queries: &Matrix,
    keys: &Matrix,
    mix: &Matrix,
    temperature: f64,
    scores: &mut Matrix,
    summary: &mut Matrix,
    out: &mut Matrix,
) {
    let (nq, d) = (queries.rows(), queries.cols());
    let scale = temperature / (d as f64).sqrt();
    kernel::matmul_transb(queries, keys, scores);
    for r in 0..nq {
        let srow = scores.row_mut(r);
        for s in srow.iter_mut() {
            *s *= scale;
        }
        kernel::softmax_row(srow);
    }
    // Attention-weighted key summary, then the residual mix through the
    // frozen matrix.
    kernel::matmul(scores, keys, summary);
    kernel::matmul(summary, mix, out);
    for r in 0..nq {
        let q = queries.row(r);
        let dst = out.row_mut(r);
        for (c, v) in dst.iter_mut().enumerate() {
            *v = 0.75 * q[c] + 0.25 * *v;
        }
        normalize_row(dst);
    }
}

/// Fill a frozen-weight matrix in place (JL-style scaled uniform draws,
/// same draw order as the original per-allocation constructor).
fn fill_random(m: &mut Matrix, rng: &mut SplitMix64) {
    let scale = (1.0 / m.rows() as f64).sqrt();
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0..1.0f64) * scale;
    }
}

fn normalize_rows(m: &mut Matrix) {
    for r in 0..m.rows() {
        normalize_row(m.row_mut(r));
    }
}

fn normalize_row(row: &mut [f64]) {
    let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for v in row {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, tracker};
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(
            &ModelSpec::InContextAttention(AttentionParams::default()),
            2,
            0.7,
        );
    }

    #[test]
    fn fit_is_nearly_free_but_inference_is_expensive() {
        // The defining TabPFN asymmetry (paper Fig. 3): execution energy is
        // negligible, inference energy is orders of magnitude above other
        // models'.
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        let fit_time = t.now();
        assert!(
            fit_time < 1.0,
            "fit should take well under a virtual second"
        );
        let _ = model.predict_proba(&xt, &mut t);
        let predict_time = t.now() - fit_time;
        assert!(
            predict_time > fit_time * 5.0,
            "inference {predict_time}s should dwarf fit {fit_time}s"
        );
    }

    #[test]
    fn inference_cost_is_orders_above_a_tree() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let attn = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        let mut rng = SplitMix64::seed_from_u64(0);
        let tree = crate::models::tree::DecisionTree::fit_classifier(
            &Default::default(),
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
            ParallelProfile::model_training(),
        );
        // Compare virtual seconds of the per-row op bundles on the same
        // device (tree steps and matmul flops have different throughputs).
        let secs = |ops: OpCounts| {
            let mut probe = tracker();
            probe.charge(ops, ParallelProfile::serial());
            probe.now()
        };
        let ratio = secs(attn.inference_ops_per_row()) / secs(tree.inference_ops_per_row());
        assert!(
            ratio > 100.0,
            "attention per-row inference should be >>100x a tree's, got {ratio:.1}x"
        );
    }

    #[test]
    fn context_is_capped_at_1k_rows() {
        let x = Matrix::zeros(3000, 4);
        let y: Vec<u32> = (0..3000).map(|i| (i % 2) as u32).collect();
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        assert_eq!(model.context_rows(), 1000);
    }

    #[test]
    fn oversized_context_subsample_covers_ordered_classes() {
        // 3000 rows sorted by class: a row-prefix "subsample" would store
        // class 0 only. The seeded uniform subsample must cover both.
        let x = Matrix::zeros(3000, 4);
        let y: Vec<u32> = (0..3000).map(|i| u32::from(i >= 1500)).collect();
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        assert_eq!(model.context_rows(), 1000);
        let ones = model.context_labels.iter().filter(|&&l| l == 1).count();
        let zeros = model.context_labels.len() - ones;
        assert!(
            ones >= 300 && zeros >= 300,
            "class-biased context: {zeros} zeros / {ones} ones"
        );
        // Same seed, same subsample; different seed, different subsample.
        let again = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        assert_eq!(model.context_labels, again.context_labels);
        let other = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 1);
        assert_ne!(model.context_labels, other.context_labels);
    }

    #[test]
    fn standardisation_divides_by_per_column_nan_counts() {
        // Hand-computed case: col 0 = [1, NaN, 3] -> mean 2, std 1 (over
        // the 2 observed values); col 1 = [2, 4, 6] -> mean 4,
        // std sqrt(8/3). The old code divided both by the row count 3,
        // biasing col 0 toward zero (mean 4/3).
        let x = Matrix::from_vec(vec![1.0, 2.0, f64::NAN, 4.0, 3.0, 6.0], 3, 2);
        let y = vec![0, 1, 0];
        let mut t = tracker();
        let p = AttentionParams::default();
        let model = InContextAttention::fit(&p, &x, &y, 2, &mut t, 0);
        let (means, stds) = model.standardisation();
        assert!((means[0] - 2.0).abs() < 1e-12, "mean {}", means[0]);
        assert!((stds[0] - 1.0).abs() < 1e-12, "std {}", stds[0]);
        assert!((means[1] - 4.0).abs() < 1e-12);
        assert!((stds[1] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn standardisation_matches_reference_under_random_nans() {
        // Property-style seeded loop: per-column mean/std over non-NaN
        // entries must match an independently computed reference.
        for case in 0..20u64 {
            let mut rng = SplitMix64::seed_from_u64(0xa11ce ^ case);
            let (n, d) = (40, 5);
            let mut data = Vec::with_capacity(n * d);
            for _ in 0..n * d {
                if rng.gen_bool(0.3) {
                    data.push(f64::NAN);
                } else {
                    data.push(rng.gen_range(-5.0..5.0f64));
                }
            }
            let x = Matrix::from_vec(data, n, d);
            let y = vec![0u32; n];
            let mut t = tracker();
            let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
            let (means, stds) = model.standardisation();
            for c in 0..d {
                let vals: Vec<f64> = (0..n)
                    .map(|r| x.get(r, c))
                    .filter(|v| !v.is_nan())
                    .collect();
                let cnt = vals.len().max(1) as f64;
                let mean = vals.iter().sum::<f64>() / cnt;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / cnt;
                let std = var.sqrt().max(1e-9);
                assert!(
                    (means[c] - mean).abs() < 1e-9,
                    "case {case} col {c}: mean {} vs reference {mean}",
                    means[c]
                );
                assert!(
                    (stds[c] - std).abs() < 1e-9,
                    "case {case} col {c}: std {} vs reference {std}",
                    stds[c]
                );
            }
        }
    }

    #[test]
    fn charged_ops_are_gpu_eligible() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        let before = t.measurement().ops;
        let _ = model.predict_proba(&xt, &mut t);
        let delta = t.measurement().ops;
        assert!(delta.matmul_flops > before.matmul_flops);
        assert_eq!(delta.tree_steps, 0.0);
    }

    #[test]
    fn probabilities_are_normalised() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 3, &mut t, 0);
        let p = model.predict_proba(&xt, &mut t);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {r} sums to {s}");
        }
    }

    #[test]
    fn predictions_are_bitwise_deterministic_across_calls() {
        // Scratch-arena reuse must not perturb a byte: the second call runs
        // on recycled buffers and must reproduce the first exactly.
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 3, &mut t, 0);
        let a = model.predict_proba(&xt, &mut t);
        let b = model.predict_proba(&xt, &mut t);
        assert_eq!(a, b);
    }

    #[test]
    fn reported_size_matches_charged_architecture() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = tracker();
        let model = InContextAttention::fit(&AttentionParams::default(), &x, &y, 2, &mut t, 0);
        assert_eq!(model.n_params(), CHARGED.n_params as usize);
    }
}
