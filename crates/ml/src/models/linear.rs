//! Linear models: multinomial logistic regression and one-vs-rest linear
//! SVM, both trained with mini-batch SGD.

use crate::kernel;
use crate::matrix::Matrix;
use crate::models::softmax_inplace;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// Logistic-regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticParams {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            epochs: 40,
            lr: 0.1,
            l2: 1e-4,
        }
    }
}

/// Linear-SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            epochs: 40,
            lr: 0.05,
            l2: 1e-4,
        }
    }
}

/// Which loss a [`LinearModel`] was trained with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearKind {
    /// Softmax cross-entropy.
    Logistic,
    /// One-vs-rest hinge.
    Svm,
}

/// A fitted linear classifier: weights `k x d` + bias `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Matrix,
    bias: Vec<f64>,
    kind: LinearKind,
    n_classes: usize,
}

impl LinearModel {
    /// Train multinomial logistic regression.
    pub fn fit_logistic(
        params: &LogisticParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> LinearModel {
        assert!(params.epochs >= 1, "need at least one epoch");
        Self::fit_sgd(
            LinearKind::Logistic,
            params.epochs,
            params.lr,
            params.l2,
            x,
            y,
            n_classes,
            tracker,
            rng,
        )
    }

    /// Train a one-vs-rest linear SVM.
    pub fn fit_svm(
        params: &SvmParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> LinearModel {
        assert!(params.epochs >= 1, "need at least one epoch");
        Self::fit_sgd(
            LinearKind::Svm,
            params.epochs,
            params.lr,
            params.l2,
            x,
            y,
            n_classes,
            tracker,
            rng,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn fit_sgd(
        kind: LinearKind,
        epochs: usize,
        lr: f64,
        l2: f64,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> LinearModel {
        let (n, d) = (x.rows(), x.cols());
        let mut weights = Matrix::zeros(n_classes, d);
        let mut bias = vec![0.0; n_classes];

        // Feature standardisation statistics folded into SGD stability: we
        // rely on upstream scalers; here we only guard against exploding
        // inputs with a global norm clip.
        let mut order: Vec<usize> = (0..n).collect();
        // Score buffer reused across samples and epochs.
        let mut scores: Vec<f64> = Vec::with_capacity(n_classes);
        for epoch in 0..epochs {
            // Shuffle per epoch.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let step = lr / (1.0 + 0.1 * epoch as f64);
            for &i in &order {
                let row = x.row(i);
                scores.clear();
                for k in 0..n_classes {
                    scores.push(bias[k] + kernel::dot(weights.row(k), row));
                }
                match kind {
                    LinearKind::Logistic => {
                        softmax_inplace(&mut scores);
                        for k in 0..n_classes {
                            let target = if y[i] as usize == k { 1.0 } else { 0.0 };
                            let g = scores[k] - target;
                            let wk = weights.row_mut(k);
                            for (w, &v) in wk.iter_mut().zip(row) {
                                *w -= step * (g * v + l2 * *w);
                            }
                            bias[k] -= step * g;
                        }
                    }
                    LinearKind::Svm => {
                        for k in 0..n_classes {
                            let target = if y[i] as usize == k { 1.0 } else { -1.0 };
                            let margin = target * scores[k];
                            let wk = weights.row_mut(k);
                            if margin < 1.0 {
                                for (w, &v) in wk.iter_mut().zip(row) {
                                    *w -= step * (-target * v + l2 * *w);
                                }
                                bias[k] += step * target;
                            } else {
                                for w in wk.iter_mut() {
                                    *w -= step * l2 * *w;
                                }
                            }
                        }
                    }
                }
            }
        }
        tracker.charge(
            OpCounts::matmul((epochs * n * d * n_classes) as f64 * 4.0 * x.scale()),
            ParallelProfile::model_training(),
        );
        LinearModel {
            weights,
            bias,
            kind,
            n_classes,
        }
    }

    /// Class-probability predictions (softmax over scores for both kinds):
    /// one blocked matmul for the whole batch, straight into the output
    /// matrix, then bias + softmax in place per row.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        let mut out = Matrix::zeros(n, self.n_classes);
        kernel::matmul_transb(x, &self.weights, &mut out);
        for r in 0..n {
            let row = out.row_mut(r);
            for (v, &b) in row.iter_mut().zip(&self.bias) {
                *v += b;
            }
            kernel::softmax_row(row);
        }
        tracker.charge(
            OpCounts::matmul((n * d * self.n_classes) as f64 * 2.0 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row inference cost: one dense score per class.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        OpCounts::matmul(2.0 * (self.weights.cols() * self.n_classes) as f64)
    }

    /// Weight count (size proxy).
    pub fn n_weights(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Which loss trained this model.
    pub fn kind(&self) -> LinearKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;

    #[test]
    fn logistic_learns_binary() {
        assert_learns(&ModelSpec::Logistic(LogisticParams::default()), 2, 0.8);
    }

    #[test]
    fn logistic_learns_multiclass() {
        assert_learns(&ModelSpec::Logistic(LogisticParams::default()), 3, 0.6);
    }

    #[test]
    fn svm_learns_binary() {
        assert_learns(&ModelSpec::LinearSvm(SvmParams::default()), 2, 0.75);
    }

    #[test]
    fn more_epochs_cost_more() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let cost = |epochs: usize| {
            let mut t = crate::models::testutil::tracker();
            let mut rng = SplitMix64::seed_from_u64(0);
            let _ = LinearModel::fit_logistic(
                &LogisticParams {
                    epochs,
                    ..Default::default()
                },
                &x,
                &y,
                2,
                &mut t,
                &mut rng,
            );
            t.now()
        };
        assert!(cost(40) > cost(5) * 4.0);
    }

    #[test]
    fn proba_rows_are_distributions() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let m = LinearModel::fit_logistic(&LogisticParams::default(), &x, &y, 3, &mut t, &mut rng);
        let p = m.predict_proba(&xt, &mut t);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        assert_eq!(m.kind(), LinearKind::Logistic);
    }

    #[test]
    fn linear_inference_is_cheap_compared_to_knn() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let lin =
            LinearModel::fit_logistic(&LogisticParams::default(), &x, &y, 2, &mut t, &mut rng);
        let knn = crate::models::knn::Knn::fit(&Default::default(), &x, &y, 2, &mut t, 0);
        assert!(
            lin.inference_ops_per_row().total() * 10.0 < knn.inference_ops_per_row().total(),
            "linear inference should be at least 10x cheaper than kNN"
        );
    }
}
