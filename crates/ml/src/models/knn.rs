//! Brute-force k-nearest-neighbours.
//!
//! Stores its training matrix, so it is the memory-heaviest model family and
//! its inference cost grows with the training-set size (like TabPFN's, but
//! without the transformer's constant factor).

use crate::kernel;
use crate::matrix::Matrix;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// k-NN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnParams {
    /// Number of neighbours.
    pub k: usize,
    /// Inverse-distance weighting (`false` = uniform votes).
    pub distance_weighted: bool,
    /// Cap on stored training rows (larger training sets are subsampled —
    /// a seeded uniform sample, not a row prefix), bounding memory and
    /// inference cost.
    pub max_train_rows: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 7,
            distance_weighted: true,
            max_train_rows: 2000,
        }
    }
}

/// A fitted k-NN model (a stored subsample of the training data).
#[derive(Debug, Clone, PartialEq)]
pub struct Knn {
    x: Matrix,
    y: Vec<u32>,
    k: usize,
    distance_weighted: bool,
    n_classes: usize,
}

impl Knn {
    /// "Fit": store (a seeded uniform subsample of) the training data.
    /// `seed` keys the subsample derivation; it is unused when the training
    /// set fits within `max_train_rows`.
    pub fn fit(
        params: &KnnParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        seed: u64,
    ) -> Knn {
        assert!(params.k >= 1, "k must be >= 1");
        let keep = x.rows().min(params.max_train_rows);
        let rows =
            kernel::subsample_rows(x.rows(), keep, kernel::subsample_seed(seed, x.rows(), keep));
        let stored = x.take_rows(&rows);
        let labels: Vec<u32> = rows.iter().map(|&r| y[r]).collect();
        // Fitting is a memory copy.
        tracker.charge(
            OpCounts::mem((keep * x.cols()) as f64 * 8.0 * x.feat_scale),
            ParallelProfile::batch_inference(),
        );
        Knn {
            x: stored,
            y: labels,
            k: params.k.min(keep),
            distance_weighted: params.distance_weighted,
            n_classes,
        }
    }

    /// Probability estimates from (weighted) neighbour votes.
    ///
    /// Neighbour selection is a partial selection (`select_nth_unstable`)
    /// of the `k` smallest distances followed by a sort of only that
    /// prefix, under the total order `(distance, stored-row index)` — the
    /// same neighbour sequence the previous full stable sort produced, at
    /// `O(n + k log k)` per query instead of `O(n log n)`. Distance and
    /// index buffers are reused across queries.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let n_train = self.x.rows();
        let d = self.x.cols();
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        let mut dists = kernel::scratch(n_train);
        let mut order: Vec<u32> = Vec::with_capacity(n_train);
        for r in 0..x.rows() {
            let query = x.row(r);
            for (t, slot) in dists.iter_mut().enumerate() {
                *slot = kernel::sq_dist(self.x.row(t), query);
            }
            order.clear();
            order.extend(0..n_train as u32);
            let cmp = |a: &u32, b: &u32| {
                dists[*a as usize]
                    .total_cmp(&dists[*b as usize])
                    .then(a.cmp(b))
            };
            if self.k < n_train {
                order.select_nth_unstable_by(self.k - 1, cmp);
            }
            order[..self.k].sort_unstable_by(cmp);
            let votes = out.row_mut(r);
            for &t in order.iter().take(self.k) {
                let w = if self.distance_weighted {
                    1.0 / (dists[t as usize].sqrt() + 1e-9)
                } else {
                    1.0
                };
                votes[self.y[t as usize] as usize] += w;
            }
            let total: f64 = votes.iter().sum();
            if total > 0.0 {
                for v in votes.iter_mut() {
                    *v /= total;
                }
            } else {
                votes.fill(1.0 / self.n_classes as f64);
            }
        }
        // Distance computation dominates; the stored set is already capped,
        // so only the query side scales. (The charge keeps the published
        // n·log n selection term — it models the charged architecture, not
        // this implementation's partial selection.)
        tracker.charge(
            OpCounts::scalar((x.rows() * n_train * d) as f64 * 3.0 * x.row_scale)
                + OpCounts::scalar(
                    x.rows() as f64
                        * (n_train as f64)
                        * (n_train as f64).log2().max(1.0)
                        * x.row_scale,
                ),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row inference cost — linear in the stored training set.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        let n = self.x.rows() as f64;
        OpCounts::scalar(3.0 * n * self.x.cols() as f64 + n * n.log2().max(1.0))
    }

    /// Stored matrix cells (memory-size proxy).
    pub fn n_stored_cells(&self) -> usize {
        self.x.rows() * self.x.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(&ModelSpec::Knn(KnnParams::default()), 2, 0.8);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::Knn(KnnParams::default()), 4, 0.55);
    }

    #[test]
    fn one_nn_memorises_training_data() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let knn = Knn::fit(
            &KnnParams {
                k: 1,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            0,
        );
        let pred = crate::models::argmax_rows(&knn.predict_proba(&x, &mut t));
        assert_eq!(pred, y);
    }

    #[test]
    fn train_row_cap_bounds_inference_cost() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let capped = Knn::fit(
            &KnnParams {
                max_train_rows: 50,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            0,
        );
        let full = Knn::fit(&KnnParams::default(), &x, &y, 2, &mut t, 0);
        assert!(capped.inference_ops_per_row().total() < full.inference_ops_per_row().total());
        assert_eq!(capped.n_stored_cells(), 50 * x.cols());
    }

    #[test]
    fn subsample_covers_ordered_classes() {
        // Rows sorted by class: a prefix "subsample" would store only
        // class 0. The seeded uniform subsample must cover both.
        let x = Matrix::zeros(400, 3);
        let y: Vec<u32> = (0..400).map(|i| u32::from(i >= 200)).collect();
        let mut t = crate::models::testutil::tracker();
        let knn = Knn::fit(
            &KnnParams {
                max_train_rows: 100,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            7,
        );
        let ones = knn.y.iter().filter(|&&l| l == 1).count();
        let zeros = knn.y.len() - ones;
        assert!(
            ones >= 25 && zeros >= 25,
            "class-biased stored set: {zeros} zeros / {ones} ones"
        );
    }

    #[test]
    fn partial_selection_matches_full_stable_sort_under_ties() {
        // Build a task with heavy distance ties (integer-grid features, many
        // duplicated rows) and check the partial-selection fast path picks
        // byte-identical neighbours to a reference full stable sort — the
        // old implementation — including tie-breaking by stored-row order.
        use green_automl_energy::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(0xdead41);
        let (n, d) = (120, 3);
        let mut data = Vec::with_capacity(n * d);
        for _ in 0..n * d {
            data.push(rng.gen_range(0.0..4.0f64).floor());
        }
        let x = Matrix::from_vec(data, n, d);
        let y: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let mut t = crate::models::testutil::tracker();
        let knn = Knn::fit(&KnnParams::default(), &x, &y, 3, &mut t, 0);
        let fast = knn.predict_proba(&x, &mut t);

        // Reference: full stable sort on distance only (ties keep stored
        // order), exactly the replaced implementation.
        let mut reference = Matrix::zeros(n, 3);
        for r in 0..n {
            let query = x.row(r);
            let mut dists: Vec<(f64, u32)> = (0..n)
                .map(|ti| {
                    let row = knn.x.row(ti);
                    let dist: f64 = row.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
                    (dist, knn.y[ti])
                })
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let votes = reference.row_mut(r);
            for &(dist, label) in dists.iter().take(knn.k) {
                votes[label as usize] += 1.0 / (dist.sqrt() + 1e-9);
            }
            let total: f64 = votes.iter().sum();
            for v in votes.iter_mut() {
                *v /= total;
            }
        }
        assert_eq!(fast, reference);

        // And run-to-run: byte-identical on a repeat call (scratch reuse).
        let again = knn.predict_proba(&x, &mut t);
        assert_eq!(fast, again);
    }

    #[test]
    fn inference_is_where_the_cost_lives() {
        // k-NN: fitting is nearly free, predicting is expensive — the same
        // asymmetry TabPFN exhibits at system level.
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let knn = Knn::fit(&KnnParams::default(), &x, &y, 2, &mut t, 0);
        let fit_time = t.now();
        let _ = knn.predict_proba(&xt, &mut t);
        let predict_time = t.now() - fit_time;
        assert!(
            predict_time > fit_time * 10.0,
            "predict {predict_time} should dwarf fit {fit_time}"
        );
    }
}
