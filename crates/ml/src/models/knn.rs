//! Brute-force k-nearest-neighbours.
//!
//! Stores its training matrix, so it is the memory-heaviest model family and
//! its inference cost grows with the training-set size (like TabPFN's, but
//! without the transformer's constant factor).

use crate::matrix::Matrix;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// k-NN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnParams {
    /// Number of neighbours.
    pub k: usize,
    /// Inverse-distance weighting (`false` = uniform votes).
    pub distance_weighted: bool,
    /// Cap on stored training rows (larger training sets are subsampled),
    /// bounding memory and inference cost.
    pub max_train_rows: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 7,
            distance_weighted: true,
            max_train_rows: 2000,
        }
    }
}

/// A fitted k-NN model (a stored subsample of the training data).
#[derive(Debug, Clone, PartialEq)]
pub struct Knn {
    x: Matrix,
    y: Vec<u32>,
    k: usize,
    distance_weighted: bool,
    n_classes: usize,
}

impl Knn {
    /// "Fit": store (a subsample of) the training data.
    pub fn fit(
        params: &KnnParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
    ) -> Knn {
        assert!(params.k >= 1, "k must be >= 1");
        let keep = x.rows().min(params.max_train_rows);
        let rows: Vec<usize> = (0..keep).collect();
        let stored = x.take_rows(&rows);
        // Fitting is a memory copy.
        tracker.charge(
            OpCounts::mem((keep * x.cols()) as f64 * 8.0 * x.feat_scale),
            ParallelProfile::batch_inference(),
        );
        Knn {
            x: stored,
            y: y[..keep].to_vec(),
            k: params.k.min(keep),
            distance_weighted: params.distance_weighted,
            n_classes,
        }
    }

    /// Probability estimates from (weighted) neighbour votes.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let n_train = self.x.rows();
        let d = self.x.cols();
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for r in 0..x.rows() {
            let query = x.row(r);
            let mut dists: Vec<(f64, u32)> = (0..n_train)
                .map(|t| {
                    let row = self.x.row(t);
                    let dist: f64 = row.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
                    (dist, self.y[t])
                })
                .collect();
            dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let votes = out.row_mut(r);
            for &(dist, label) in dists.iter().take(self.k) {
                let w = if self.distance_weighted {
                    1.0 / (dist.sqrt() + 1e-9)
                } else {
                    1.0
                };
                votes[label as usize] += w;
            }
            let total: f64 = votes.iter().sum();
            if total > 0.0 {
                for v in votes.iter_mut() {
                    *v /= total;
                }
            } else {
                votes.fill(1.0 / self.n_classes as f64);
            }
        }
        // Distance computation dominates; the stored set is already capped,
        // so only the query side scales.
        tracker.charge(
            OpCounts::scalar((x.rows() * n_train * d) as f64 * 3.0 * x.row_scale)
                + OpCounts::scalar(
                    x.rows() as f64
                        * (n_train as f64)
                        * (n_train as f64).log2().max(1.0)
                        * x.row_scale,
                ),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row inference cost — linear in the stored training set.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        let n = self.x.rows() as f64;
        OpCounts::scalar(3.0 * n * self.x.cols() as f64 + n * n.log2().max(1.0))
    }

    /// Stored matrix cells (memory-size proxy).
    pub fn n_stored_cells(&self) -> usize {
        self.x.rows() * self.x.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(&ModelSpec::Knn(KnnParams::default()), 2, 0.8);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::Knn(KnnParams::default()), 4, 0.55);
    }

    #[test]
    fn one_nn_memorises_training_data() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let knn = Knn::fit(
            &KnnParams {
                k: 1,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
        );
        let pred = crate::models::argmax_rows(&knn.predict_proba(&x, &mut t));
        assert_eq!(pred, y);
    }

    #[test]
    fn train_row_cap_bounds_inference_cost() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let capped = Knn::fit(
            &KnnParams {
                max_train_rows: 50,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
        );
        let full = Knn::fit(&KnnParams::default(), &x, &y, 2, &mut t);
        assert!(capped.inference_ops_per_row().total() < full.inference_ops_per_row().total());
        assert_eq!(capped.n_stored_cells(), 50 * x.cols());
    }

    #[test]
    fn inference_is_where_the_cost_lives() {
        // k-NN: fitting is nearly free, predicting is expensive — the same
        // asymmetry TabPFN exhibits at system level.
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let knn = Knn::fit(&KnnParams::default(), &x, &y, 2, &mut t);
        let fit_time = t.now();
        let _ = knn.predict_proba(&xt, &mut t);
        let predict_time = t.now() - fit_time;
        assert!(
            predict_time > fit_time * 10.0,
            "predict {predict_time} should dwarf fit {fit_time}"
        );
    }
}
