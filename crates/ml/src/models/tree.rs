//! CART decision trees (classification and regression).
//!
//! The shared workhorse underneath single trees, random forests, extra
//! trees, and gradient boosting. Gini impurity for classification, variance
//! reduction for regression, exhaustive sorted-scan split search (or random
//! thresholds in extra-trees mode), optional per-node feature subsampling.

use crate::matrix::Matrix;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Fraction of features examined per node, `(0, 1]` (`sqrt(d)/d`-style
    /// subsampling is the forest default).
    pub max_features_frac: f64,
    /// Extra-trees mode: draw one random threshold per feature instead of
    /// scanning all cut points.
    pub random_thresholds: bool,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 8,
            min_samples_leaf: 3,
            max_features_frac: 1.0,
            random_thresholds: false,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Class distribution (classification) or scalar value wrapped in a
        /// one-element vec (regression).
        value: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Random tree traversal is cache-hostile compared with the sequential
/// scans of training: each inference step costs this many training-grade
/// tree steps (pointer chase + cache miss vs streaming scan).
pub const TRAVERSAL_PENALTY: f64 = 20.0;

/// A fitted CART tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_outputs: usize,
    max_depth_seen: usize,
    d_in: usize,
    feat_scale: f64,
}

struct FitCtx<'a> {
    x: &'a Matrix,
    params: &'a TreeParams,
    /// Per-row class label (classification) or target (regression).
    targets: Targets<'a>,
    steps: f64,
    scalar: f64,
    /// Scratch reused across the whole build. Perf only: every buffer is
    /// refilled before each use, so fitted trees are bitwise unchanged.
    idx_pool: Vec<Vec<usize>>,
    vals: Vec<u128>,
    feats: Vec<usize>,
    cl: Vec<f64>,
    cr: Vec<f64>,
    ct: Vec<f64>,
}

/// Pack `(value, row)` into one sortable integer: the high 64 bits order
/// exactly like the `f64` value (sign-magnitude flip, `-0.0` collapsed
/// onto `+0.0` so zero ties keep pure row order), the low 64 bits are the
/// row index. An unstable integer sort on these keys reproduces the
/// stable value-sort's `(value, row)` total order — branchlessly, which
/// is 2-3x faster than a comparator-based float sort in the split search.
#[inline]
fn pack(v: f64, r: usize) -> u128 {
    let v = if v == 0.0 { 0.0 } else { v };
    let b = v.to_bits();
    let key = if b >> 63 == 1 { !b } else { b | (1 << 63) };
    ((key as u128) << 64) | r as u128
}

#[inline]
fn unpack_value(p: u128) -> f64 {
    let key = (p >> 64) as u64;
    let b = if key >> 63 == 1 {
        key & !(1 << 63)
    } else {
        !key
    };
    f64::from_bits(b)
}

#[inline]
fn unpack_row(p: u128) -> usize {
    p as u64 as usize
}

impl FitCtx<'_> {
    /// Check an empty index buffer out of the pool (allocates on miss).
    fn take_idx(&mut self) -> Vec<usize> {
        let mut v = self.idx_pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Return an index buffer to the pool for reuse.
    fn give_idx(&mut self, v: Vec<usize>) {
        self.idx_pool.push(v);
    }
}

enum Targets<'a> {
    Classes { y: &'a [u32], k: usize },
    Regression { y: &'a [f64] },
}

impl DecisionTree {
    /// Fit a classification tree. `profile` controls how the charged work
    /// parallelises (forests pass an embarrassingly parallel profile).
    pub fn fit_classifier(
        params: &TreeParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
        profile: ParallelProfile,
    ) -> DecisionTree {
        assert_eq!(x.rows(), y.len(), "row/label mismatch");
        Self::fit_inner(
            params,
            x,
            Targets::Classes { y, k: n_classes },
            tracker,
            rng,
            profile,
        )
    }

    /// Fit a regression tree (used by gradient boosting).
    pub fn fit_regressor(
        params: &TreeParams,
        x: &Matrix,
        y: &[f64],
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
        profile: ParallelProfile,
    ) -> DecisionTree {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        Self::fit_inner(params, x, Targets::Regression { y }, tracker, rng, profile)
    }

    fn fit_inner(
        params: &TreeParams,
        x: &Matrix,
        targets: Targets<'_>,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
        profile: ParallelProfile,
    ) -> DecisionTree {
        assert!(params.max_depth >= 1, "max_depth must be >= 1");
        assert!(
            params.max_features_frac > 0.0 && params.max_features_frac <= 1.0,
            "max_features_frac must lie in (0, 1]"
        );
        let n_outputs = match targets {
            Targets::Classes { k, .. } => k,
            Targets::Regression { .. } => 1,
        };
        let mut ctx = FitCtx {
            x,
            params,
            targets,
            steps: 0.0,
            scalar: 0.0,
            idx_pool: Vec::new(),
            vals: Vec::new(),
            feats: Vec::new(),
            cl: Vec::new(),
            cr: Vec::new(),
            ct: Vec::new(),
        };
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_outputs,
            max_depth_seen: 0,
            d_in: x.cols(),
            feat_scale: x.feat_scale,
        };
        let rows: Vec<usize> = (0..x.rows()).collect();
        tree.build(&mut ctx, rows, 0, rng);
        tracker.charge(
            (OpCounts::tree(ctx.steps) + OpCounts::scalar(ctx.scalar)) * x.scale(),
            profile,
        );
        tree
    }

    /// Push a leaf for `rows` (returning its index buffer to the pool).
    /// The leaf value is computed here — only for nodes that actually
    /// terminate — instead of eagerly for every node; it is a pure value
    /// (no charges, no RNG draws), so fitted trees are unchanged.
    fn push_leaf(&mut self, ctx: &mut FitCtx<'_>, rows: Vec<usize>) -> usize {
        let value = Self::leaf_value(ctx, &rows);
        ctx.give_idx(rows);
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    fn build(
        &mut self,
        ctx: &mut FitCtx<'_>,
        rows: Vec<usize>,
        depth: usize,
        rng: &mut SplitMix64,
    ) -> usize {
        self.max_depth_seen = self.max_depth_seen.max(depth);
        let impurity = Self::impurity(ctx, &rows);
        if depth >= ctx.params.max_depth
            || rows.len() < ctx.params.min_samples_split
            || impurity < 1e-12
        {
            return self.push_leaf(ctx, rows);
        }

        let d = ctx.x.cols();
        let n_feats = ((d as f64 * ctx.params.max_features_frac).ceil() as usize).clamp(1, d);
        // Sample features without replacement (partial Fisher-Yates) in the
        // reused scratch buffer (same RNG draws as before).
        let mut feats = std::mem::take(&mut ctx.feats);
        feats.clear();
        feats.extend(0..d);
        for i in 0..n_feats {
            let j = rng.gen_range(i..d);
            feats.swap(i, j);
        }
        feats.truncate(n_feats);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for &f in &feats {
            let candidate = if ctx.params.random_thresholds {
                Self::random_split(ctx, &rows, f, rng, impurity)
            } else {
                Self::best_split(ctx, &rows, f, impurity)
            };
            if let Some((thr, gain)) = candidate {
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, thr, gain));
                }
            }
        }
        ctx.feats = feats;

        let Some((feature, threshold, gain)) = best else {
            return self.push_leaf(ctx, rows);
        };
        if gain <= 1e-12 {
            return self.push_leaf(ctx, rows);
        }

        // Stable partition into pooled buffers (children see their rows in
        // parent order, exactly as `Vec::partition` produced them).
        let mut left_rows = ctx.take_idx();
        let mut right_rows = ctx.take_idx();
        for &r in &rows {
            if ctx.x.get(r, feature) <= threshold {
                left_rows.push(r);
            } else {
                right_rows.push(r);
            }
        }
        ctx.steps += rows.len() as f64;
        if left_rows.len() < ctx.params.min_samples_leaf
            || right_rows.len() < ctx.params.min_samples_leaf
        {
            ctx.give_idx(left_rows);
            ctx.give_idx(right_rows);
            return self.push_leaf(ctx, rows);
        }
        ctx.give_idx(rows);

        // Reserve this node's slot, then build children.
        self.nodes.push(Node::Leaf { value: Vec::new() });
        let me = self.nodes.len() - 1;
        let left = self.build(ctx, left_rows, depth + 1, rng);
        let right = self.build(ctx, right_rows, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Exhaustive sorted-scan search for the best threshold on feature `f`.
    ///
    /// `parent` is the node impurity, computed once per node in
    /// [`DecisionTree::build`] (it is a pure value — every charge here is
    /// an explicit `ctx` increment, all unchanged). The sort is unstable
    /// under a total `(value, row)` order: `rows` is always ascending
    /// (children partition their parent's ascending slice in order), so
    /// this reproduces the old stable value-sort exactly — including the
    /// tie order the regression scan's running sums accumulate in.
    fn best_split(
        ctx: &mut FitCtx<'_>,
        rows: &[usize],
        f: usize,
        parent: f64,
    ) -> Option<(f64, f64)> {
        let n = rows.len();
        let FitCtx {
            x,
            targets,
            steps,
            scalar,
            vals,
            cl,
            cr,
            ct,
            ..
        } = ctx;
        vals.clear();
        vals.extend(rows.iter().map(|&r| pack(x.get(r, f), r)));
        vals.sort_unstable();
        *scalar += n as f64 * (n as f64).log2().max(1.0); // sort
        *steps += n as f64; // scan

        match targets {
            Targets::Classes { y, k } => {
                let (left_counts, right_counts, total_counts) = (cl, cr, ct);
                left_counts.clear();
                left_counts.resize(*k, 0.0);
                right_counts.clear();
                right_counts.resize(*k, 0.0);
                total_counts.clear();
                total_counts.resize(*k, 0.0);
                for &r in rows {
                    total_counts[y[r] as usize] += 1.0;
                }
                let mut best: Option<(f64, f64)> = None;
                for i in 0..n - 1 {
                    left_counts[y[unpack_row(vals[i])] as usize] += 1.0;
                    if vals[i] >> 64 == vals[i + 1] >> 64 {
                        continue;
                    }
                    let nl = (i + 1) as f64;
                    let nr = (n - i - 1) as f64;
                    let gl = gini(left_counts, nl);
                    for (rc, (t, l)) in right_counts
                        .iter_mut()
                        .zip(total_counts.iter().zip(&*left_counts))
                    {
                        *rc = t - l;
                    }
                    let gr = gini(right_counts, nr);
                    let gain = parent - (nl * gl + nr * gr) / n as f64;
                    let thr = 0.5 * (unpack_value(vals[i]) + unpack_value(vals[i + 1]));
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((thr, gain));
                    }
                }
                *scalar += (n * *k) as f64;
                best
            }
            Targets::Regression { y } => {
                let total_sum: f64 = rows.iter().map(|&r| y[r]).sum();
                let total_sq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
                let mut ls = 0.0;
                let mut lq = 0.0;
                let mut best: Option<(f64, f64)> = None;
                for i in 0..n - 1 {
                    let v = y[unpack_row(vals[i])];
                    ls += v;
                    lq += v * v;
                    if vals[i] >> 64 == vals[i + 1] >> 64 {
                        continue;
                    }
                    let nl = (i + 1) as f64;
                    let nr = (n - i - 1) as f64;
                    let var_l = (lq - ls * ls / nl).max(0.0);
                    let rs = total_sum - ls;
                    let rq = total_sq - lq;
                    let var_r = (rq - rs * rs / nr).max(0.0);
                    let gain = parent - (var_l + var_r) / n as f64;
                    let thr = 0.5 * (unpack_value(vals[i]) + unpack_value(vals[i + 1]));
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((thr, gain));
                    }
                }
                *scalar += 4.0 * n as f64;
                best
            }
        }
    }

    /// Extra-trees split: one uniformly random threshold in the value range.
    ///
    /// `parent` is the node impurity computed once in [`DecisionTree::build`].
    /// The old row `partition` allocations are replaced by filtered passes
    /// over `rows` in order — the exact sequences the partitioned sides
    /// used to hold — so every accumulated sum is bitwise unchanged.
    fn random_split(
        ctx: &mut FitCtx<'_>,
        rows: &[usize],
        f: usize,
        rng: &mut SplitMix64,
        parent: f64,
    ) -> Option<(f64, f64)> {
        let n = rows.len();
        let FitCtx {
            x,
            targets,
            steps,
            cl,
            cr,
            ..
        } = ctx;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &r in rows {
            let v = x.get(r, f);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        *steps += n as f64;
        if hi <= lo {
            return None;
        }
        let thr = rng.gen_range(lo..hi);
        *steps += n as f64;
        let goes_left = |r: usize| x.get(r, f) <= thr;
        let (nl, nr, weighted_child) = match targets {
            Targets::Classes { y, k } => {
                let (left, right) = (cl, cr);
                left.clear();
                left.resize(*k, 0.0);
                right.clear();
                right.resize(*k, 0.0);
                let (mut nl, mut nr) = (0usize, 0usize);
                for &r in rows {
                    if goes_left(r) {
                        left[y[r] as usize] += 1.0;
                        nl += 1;
                    } else {
                        right[y[r] as usize] += 1.0;
                        nr += 1;
                    }
                }
                let child = nl as f64 * gini(left, nl as f64) + nr as f64 * gini(right, nr as f64);
                (nl, nr, child)
            }
            Targets::Regression { y } => {
                let side_sse = |want_left: bool| {
                    let side = rows.iter().copied().filter(|&r| goes_left(r) == want_left);
                    let cnt = side.clone().count();
                    if cnt == 0 {
                        return (0usize, 0.0);
                    }
                    let mean = side.clone().map(|r| y[r]).sum::<f64>() / cnt as f64;
                    let sse = side.map(|r| (y[r] - mean).powi(2)).sum::<f64>() / cnt as f64;
                    (cnt, sse)
                };
                let (nl, sse_l) = side_sse(true);
                let (nr, sse_r) = side_sse(false);
                (nl, nr, nl as f64 * sse_l + nr as f64 * sse_r)
            }
        };
        if nl == 0 || nr == 0 {
            return None;
        }
        Some((thr, parent - weighted_child / n as f64))
    }

    fn impurity(ctx: &mut FitCtx<'_>, rows: &[usize]) -> f64 {
        let FitCtx { targets, ct, .. } = ctx;
        match targets {
            Targets::Classes { y, k } => {
                let counts = ct;
                counts.clear();
                counts.resize(*k, 0.0);
                for &r in rows {
                    counts[y[r] as usize] += 1.0;
                }
                gini(counts, rows.len() as f64)
            }
            Targets::Regression { y } => {
                let n = rows.len() as f64;
                let mean: f64 = rows.iter().map(|&r| y[r]).sum::<f64>() / n;
                rows.iter().map(|&r| (y[r] - mean).powi(2)).sum::<f64>() / n
            }
        }
    }

    fn leaf_value(ctx: &FitCtx<'_>, rows: &[usize]) -> Vec<f64> {
        match &ctx.targets {
            Targets::Classes { y, k } => {
                let mut counts = vec![0.0f64; *k];
                for &r in rows {
                    counts[y[r] as usize] += 1.0;
                }
                let n = rows.len().max(1) as f64;
                counts.iter_mut().for_each(|c| *c /= n);
                counts
            }
            Targets::Regression { y } => {
                let n = rows.len().max(1) as f64;
                vec![rows.iter().map(|&r| y[r]).sum::<f64>() / n]
            }
        }
    }

    /// Per-row output (class distribution or regression value).
    fn eval_row(&self, row: &[f64]) -> (&[f64], usize) {
        let mut i = 0usize;
        let mut depth = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return (value, depth),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    depth += 1;
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class-probability predictions (classification trees).
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_outputs);
        let mut steps = 0.0;
        for r in 0..x.rows() {
            let (value, depth) = self.eval_row(x.row(r));
            steps += depth.max(1) as f64;
            out.row_mut(r)[..value.len()].copy_from_slice(value);
        }
        tracker.charge(
            OpCounts::tree(steps * TRAVERSAL_PENALTY * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Regression predictions (one value per row).
    pub fn predict_value(&self, x: &Matrix, tracker: &mut CostTracker) -> Vec<f64> {
        let proba = self.predict_proba(x, tracker);
        (0..proba.rows()).map(|r| proba.get(r, 0)).collect()
    }

    /// Per-row inference cost: one traversal of the (deepest) path, at the
    /// cache-hostile traversal rate.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        OpCounts::tree(self.max_depth_seen.max(1) as f64 * TRAVERSAL_PENALTY)
    }

    /// Node count (size proxy).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Deepest path length observed during fitting.
    pub fn depth(&self) -> usize {
        self.max_depth_seen
    }

    /// Input width the tree was trained on.
    pub fn d_in(&self) -> usize {
        self.d_in
    }
}

fn gini(counts: &[f64], n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|c| (c / n).powi(2)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::{assert_learns, tracker};
    use crate::models::ModelSpec;

    #[test]
    fn learns_separable_binary_task() {
        assert_learns(&ModelSpec::DecisionTree(TreeParams::default()), 2, 0.8);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::DecisionTree(TreeParams::default()), 4, 0.6);
    }

    #[test]
    fn depth_limit_is_respected() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut rng = SplitMix64::seed_from_u64(0);
        let params = TreeParams {
            max_depth: 2,
            ..Default::default()
        };
        let t = DecisionTree::fit_classifier(
            &params,
            &x,
            &y,
            2,
            &mut tracker(),
            &mut rng,
            ParallelProfile::model_training(),
        );
        assert!(t.depth() <= 2);
        assert!(t.n_nodes() <= 7);
    }

    #[test]
    fn stump_on_xor_like_data_fails_but_deeper_tree_succeeds() {
        // XOR needs depth >= 2: a stump cannot separate it.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            data.extend([a + 0.01 * (i as f64 % 7.0), b]);
            y.push((a as u32) ^ (b as u32));
        }
        let x = Matrix::from_vec(data, 200, 2);
        let mut rng = SplitMix64::seed_from_u64(1);
        let stump = DecisionTree::fit_classifier(
            &TreeParams {
                max_depth: 1,
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut tracker(),
            &mut rng,
            ParallelProfile::model_training(),
        );
        let deep = DecisionTree::fit_classifier(
            &TreeParams {
                max_depth: 4,
                min_samples_split: 2,
                min_samples_leaf: 1,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut tracker(),
            &mut rng,
            ParallelProfile::model_training(),
        );
        let mut t = tracker();
        let acc_stump = crate::metrics::accuracy(
            &y,
            &crate::models::argmax_rows(&stump.predict_proba(&x, &mut t)),
        );
        let acc_deep = crate::metrics::accuracy(
            &y,
            &crate::models::argmax_rows(&deep.predict_proba(&x, &mut t)),
        );
        assert!(acc_stump < 0.8, "stump should fail XOR, got {acc_stump}");
        assert!(
            acc_deep > 0.95,
            "deep tree should solve XOR, got {acc_deep}"
        );
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let n = 100;
        let x = Matrix::from_vec((0..n).map(|i| i as f64).collect(), n, 1);
        let y: Vec<f64> = (0..n).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut rng = SplitMix64::seed_from_u64(0);
        let t = DecisionTree::fit_regressor(
            &TreeParams::default(),
            &x,
            &y,
            &mut tracker(),
            &mut rng,
            ParallelProfile::model_training(),
        );
        let mut tr = tracker();
        let pred = t.predict_value(&x, &mut tr);
        assert!((pred[10] - 1.0).abs() < 0.2);
        assert!((pred[90] - 5.0).abs() < 0.2);
    }

    #[test]
    fn pure_nodes_become_leaves() {
        let x = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 4, 1);
        let y = vec![0, 0, 0, 0];
        let mut rng = SplitMix64::seed_from_u64(0);
        let t = DecisionTree::fit_classifier(
            &TreeParams::default(),
            &x,
            &y,
            2,
            &mut tracker(),
            &mut rng,
            ParallelProfile::model_training(),
        );
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn training_cost_scales_with_charging_factor() {
        let ((mut x, y), _) = crate::models::testutil::separable_task(2);
        let mut rng = SplitMix64::seed_from_u64(0);
        let mut t1 = tracker();
        let _ = DecisionTree::fit_classifier(
            &TreeParams::default(),
            &x,
            &y,
            2,
            &mut t1,
            &mut rng,
            ParallelProfile::model_training(),
        );
        x.row_scale = 100.0;
        let mut t2 = tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = DecisionTree::fit_classifier(
            &TreeParams::default(),
            &x,
            &y,
            2,
            &mut t2,
            &mut rng,
            ParallelProfile::model_training(),
        );
        assert!(
            t2.now() > t1.now() * 50.0,
            "scaled fit must cost ~100x the time"
        );
    }

    #[test]
    fn extra_trees_mode_is_cheaper_to_fit() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let fit = |random: bool| {
            let mut rng = SplitMix64::seed_from_u64(0);
            let mut t = tracker();
            let _ = DecisionTree::fit_classifier(
                &TreeParams {
                    random_thresholds: random,
                    ..Default::default()
                },
                &x,
                &y,
                2,
                &mut t,
                &mut rng,
                ParallelProfile::model_training(),
            );
            t.now()
        };
        assert!(
            fit(true) < fit(false),
            "random thresholds should be cheaper"
        );
    }
}
