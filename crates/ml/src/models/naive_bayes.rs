//! Gaussian naive Bayes — the cheapest model family in the search space.

use crate::matrix::Matrix;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// Fitted Gaussian naive Bayes: per-class feature means/variances + priors.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNb {
    /// `k x d` feature means.
    means: Matrix,
    /// `k x d` feature variances (floored).
    vars: Matrix,
    /// Class log-priors.
    log_priors: Vec<f64>,
    n_classes: usize,
}

impl GaussianNb {
    /// Fit means, variances and priors in one pass.
    pub fn fit(x: &Matrix, y: &[u32], n_classes: usize, tracker: &mut CostTracker) -> GaussianNb {
        let (n, d) = (x.rows(), x.cols());
        let mut means = Matrix::zeros(n_classes, d);
        let mut vars = Matrix::zeros(n_classes, d);
        let mut counts = vec![0.0f64; n_classes];
        for r in 0..n {
            let k = y[r] as usize;
            counts[k] += 1.0;
            let row = x.row(r);
            let m = means.row_mut(k);
            for (mm, &v) in m.iter_mut().zip(row) {
                *mm += v;
            }
        }
        for k in 0..n_classes {
            let c = counts[k].max(1.0);
            for mm in means.row_mut(k) {
                *mm /= c;
            }
        }
        for r in 0..n {
            let k = y[r] as usize;
            let row = x.row(r);
            // Borrow-split: copy the mean row (d is small) to update vars.
            let mean_row: Vec<f64> = means.row(k).to_vec();
            let vr = vars.row_mut(k);
            for ((vv, &v), &m) in vr.iter_mut().zip(row).zip(&mean_row) {
                *vv += (v - m) * (v - m);
            }
        }
        let total: f64 = counts.iter().sum();
        let mut log_priors = Vec::with_capacity(n_classes);
        for k in 0..n_classes {
            let c = counts[k].max(1.0);
            for vv in vars.row_mut(k) {
                *vv = (*vv / c).max(1e-9);
            }
            log_priors.push(((counts[k] + 1.0) / (total + n_classes as f64)).ln());
        }
        tracker.charge(
            OpCounts::scalar((n * d) as f64 * 4.0 * x.scale()),
            ParallelProfile::model_training(),
        );
        GaussianNb {
            means,
            vars,
            log_priors,
            n_classes,
        }
    }

    /// Posterior class probabilities under the independence assumption.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        let mut out = Matrix::zeros(n, self.n_classes);
        for r in 0..n {
            let row = x.row(r);
            let mut logp: Vec<f64> = (0..self.n_classes)
                .map(|k| {
                    let mut lp = self.log_priors[k];
                    let m = self.means.row(k);
                    let v = self.vars.row(k);
                    for c in 0..d.min(m.len()) {
                        let diff = row[c] - m[c];
                        lp -= 0.5 * (diff * diff / v[c] + v[c].ln());
                    }
                    lp
                })
                .collect();
            crate::models::softmax_inplace(&mut logp);
            out.row_mut(r).copy_from_slice(&logp);
        }
        tracker.charge(
            OpCounts::scalar((n * d * self.n_classes) as f64 * 4.0 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row inference cost.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        OpCounts::scalar(4.0 * (self.means.cols() * self.n_classes) as f64)
    }

    /// Parameter count (means + variances + priors).
    pub fn n_params(&self) -> usize {
        2 * self.means.rows() * self.means.cols() + self.log_priors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;
    use green_automl_energy::rng::SplitMix64;

    #[test]
    fn learns_binary_task() {
        assert_learns(&ModelSpec::GaussianNb, 2, 0.75);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::GaussianNb, 4, 0.55);
    }

    #[test]
    fn recovers_gaussian_structure() {
        // Two well-separated 1-D Gaussians.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            data.push(-5.0 + (i % 10) as f64 * 0.1);
            y.push(0u32);
            data.push(5.0 + (i % 10) as f64 * 0.1);
            y.push(1u32);
        }
        let x = Matrix::from_vec(data, 200, 1);
        let mut t = crate::models::testutil::tracker();
        let nb = GaussianNb::fit(&x, &y, 2, &mut t);
        let test = Matrix::from_vec(vec![-4.0, 4.0], 2, 1);
        let p = nb.predict_proba(&test, &mut t);
        assert!(p.get(0, 0) > 0.99);
        assert!(p.get(1, 1) > 0.99);
    }

    #[test]
    fn is_the_cheapest_family_to_fit() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let nb_time = {
            let mut t = crate::models::testutil::tracker();
            let _ = GaussianNb::fit(&x, &y, 2, &mut t);
            t.now()
        };
        let forest_time = {
            let mut t = crate::models::testutil::tracker();
            let mut rng = SplitMix64::seed_from_u64(0);
            let _ = crate::models::forest::Forest::fit(
                &Default::default(),
                false,
                &x,
                &y,
                2,
                &mut t,
                &mut rng,
            );
            t.now()
        };
        assert!(nb_time * 10.0 < forest_time);
    }
}
