//! Gradient-boosted shallow trees with a softmax objective.
//!
//! One regression tree per class per round, fit on the softmax residuals —
//! the classic multiclass gradient-boosting machine (the role LightGBM /
//! XGBoost play inside FLAML and AutoGluon).

use crate::matrix::Matrix;
use crate::models::softmax_inplace;
use crate::models::tree::{DecisionTree, TreeParams};
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbParams {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Depth of the per-round regression trees.
    pub max_depth: usize,
    /// Row subsampling fraction per round, `(0, 1]`.
    pub subsample: f64,
}

impl Default for GbParams {
    fn default() -> Self {
        GbParams {
            n_rounds: 30,
            learning_rate: 0.15,
            max_depth: 3,
            subsample: 0.8,
        }
    }
}

/// A fitted gradient-boosting ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    /// `trees[round][class]`.
    trees: Vec<Vec<DecisionTree>>,
    base_logits: Vec<f64>,
    learning_rate: f64,
    n_classes: usize,
}

impl GradientBoosting {
    /// Fit the ensemble.
    pub fn fit(
        params: &GbParams,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
        rng: &mut SplitMix64,
    ) -> GradientBoosting {
        assert!(params.n_rounds >= 1, "need at least one round");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must lie in (0, 1]"
        );
        // One tree per class per round: cap total tree count on many-class
        // problems (real GBM stacks do the same to stay tractable).
        let params = GbParams {
            n_rounds: params.n_rounds.min((600 / n_classes).max(3)),
            ..*params
        };
        let params = &params;
        let n = x.rows();
        // Base score: class log-priors.
        let mut counts = vec![1.0f64; n_classes]; // +1 smoothing
        for &l in y {
            counts[l as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let base_logits: Vec<f64> = counts.iter().map(|c| (c / total).ln()).collect();

        let mut logits = vec![base_logits.clone(); n];
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_split: 8,
            min_samples_leaf: 3,
            max_features_frac: 0.8,
            random_thresholds: false,
        };

        let n_sub = ((n as f64 * params.subsample) as usize).max(2).min(n);
        let mut trees = Vec::with_capacity(params.n_rounds);
        // Buffers reused across rounds (refilled before every use, so the
        // fitted ensemble is bitwise unchanged).
        let mut residuals = vec![vec![0.0f64; n]; n_classes];
        let mut p: Vec<f64> = Vec::with_capacity(n_classes);
        let mut rows: Vec<usize> = Vec::with_capacity(n);
        let mut ys: Vec<f64> = Vec::with_capacity(n_sub);
        for _ in 0..params.n_rounds {
            // Softmax residuals on the full data.
            for i in 0..n {
                p.clear();
                p.extend_from_slice(&logits[i]);
                softmax_inplace(&mut p);
                for (k, res) in residuals.iter_mut().enumerate() {
                    let target = if y[i] as usize == k { 1.0 } else { 0.0 };
                    res[i] = target - p[k];
                }
            }
            tracker.charge(
                OpCounts::scalar((n * n_classes * 4) as f64 * x.scale()),
                ParallelProfile::model_training(),
            );

            // Row subsample for this round.
            rows.clear();
            if n_sub < n {
                rows.extend((0..n_sub).map(|_| rng.gen_range(0..n)));
            } else {
                rows.extend(0..n);
            }
            let xs = x.take_rows(&rows);

            let mut round = Vec::with_capacity(n_classes);
            for res in residuals.iter() {
                ys.clear();
                ys.extend(rows.iter().map(|&r| res[r]));
                let tree = DecisionTree::fit_regressor(
                    &tree_params,
                    &xs,
                    &ys,
                    tracker,
                    rng,
                    ParallelProfile::model_training(),
                );
                // Update logits on the full data.
                let update = tree.predict_value(x, tracker);
                for i in 0..n {
                    logits[i][round.len()] += params.learning_rate * update[i];
                }
                round.push(tree);
            }
            trees.push(round);
        }
        GradientBoosting {
            trees,
            base_logits,
            learning_rate: params.learning_rate,
            n_classes,
        }
    }

    /// Class-probability predictions.
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let n = x.rows();
        let mut logits = vec![self.base_logits.clone(); n];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                let update = tree.predict_value(x, tracker);
                for i in 0..n {
                    logits[i][k] += self.learning_rate * update[i];
                }
            }
        }
        let mut out = Matrix::zeros(n, self.n_classes);
        for (i, l) in logits.iter_mut().enumerate() {
            softmax_inplace(l);
            out.row_mut(i).copy_from_slice(l);
        }
        tracker.charge(
            OpCounts::scalar((n * self.n_classes * 3) as f64 * x.row_scale),
            ParallelProfile::batch_inference(),
        );
        out
    }

    /// Per-row cost: one traversal per tree plus softmax.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        self.trees
            .iter()
            .flatten()
            .map(|t| t.inference_ops_per_row())
            .sum::<OpCounts>()
            + OpCounts::scalar(3.0 * self.n_classes as f64)
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.trees.iter().flatten().map(|t| t.n_nodes()).sum()
    }

    /// Boosting rounds fitted.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::assert_learns;
    use crate::models::ModelSpec;

    #[test]
    fn learns_binary_task() {
        assert_learns(&ModelSpec::GradientBoosting(GbParams::default()), 2, 0.85);
    }

    #[test]
    fn learns_multiclass_task() {
        assert_learns(&ModelSpec::GradientBoosting(GbParams::default()), 3, 0.7);
    }

    #[test]
    fn more_rounds_cost_more_to_fit_and_predict() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let fit = |rounds: usize| {
            let mut t = crate::models::testutil::tracker();
            let mut rng = SplitMix64::seed_from_u64(0);
            let gb = GradientBoosting::fit(
                &GbParams {
                    n_rounds: rounds,
                    ..Default::default()
                },
                &x,
                &y,
                2,
                &mut t,
                &mut rng,
            );
            (t.now(), gb.inference_ops_per_row().total())
        };
        let (t5, i5) = fit(5);
        let (t40, i40) = fit(40);
        assert!(t40 > t5 * 4.0);
        assert!(i40 > i5 * 4.0);
    }

    #[test]
    fn probabilities_are_normalised() {
        let ((x, y), (xt, _)) = crate::models::testutil::separable_task(3);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let gb = GradientBoosting::fit(&GbParams::default(), &x, &y, 3, &mut t, &mut rng);
        let p = gb.predict_proba(&xt, &mut t);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert_eq!(gb.n_rounds(), 30);
    }

    #[test]
    #[should_panic(expected = "subsample")]
    fn invalid_subsample_panics() {
        let ((x, y), _) = crate::models::testutil::separable_task(2);
        let mut t = crate::models::testutil::tracker();
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = GradientBoosting::fit(
            &GbParams {
                subsample: 0.0,
                ..Default::default()
            },
            &x,
            &y,
            2,
            &mut t,
            &mut rng,
        );
    }
}
