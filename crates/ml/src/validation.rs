//! Validation strategies the AutoML systems choose from.
//!
//! The paper's systems differ exactly here: most use hold-out validation,
//! TPOT uses 5-fold cross-validation (which the paper blames for its low
//! 5-minute accuracy), and CAML re-samples the hold-out split per Bayesian-
//! optimisation iteration to avoid overfitting the validation set.

use crate::evalcache::{self, kind, CachedValue, EvalScope};
use crate::matrix::Matrix;
use crate::metrics::balanced_accuracy;
use crate::models::argmax_rows;
use crate::pipeline::{FittedPipeline, Pipeline};
use green_automl_dataset::split::{stratified_kfold, train_test_split};
use green_automl_dataset::Dataset;
use green_automl_energy::CostTracker;

/// Fit on a hold-out split and score on the remaining validation part.
///
/// Returns the validation balanced accuracy and the fitted pipeline (fitted
/// on the *training part only*; call [`refit`] to use all data afterwards).
///
/// # Panics
/// Panics if `val_frac` is outside `(0, 1)`.
pub fn holdout_eval(
    spec: &Pipeline,
    ds: &Dataset,
    val_frac: f64,
    seed: u64,
    tracker: &mut CostTracker,
) -> (f64, FittedPipeline) {
    let (train, val) = train_test_split(ds, val_frac, seed);
    let fitted = spec.fit(&train, tracker, seed);
    let pred = fitted.predict(&val, tracker);
    let score = balanced_accuracy(&val.labels, &pred, ds.n_classes);
    (score, fitted)
}

/// Hold-out evaluation on a *sample* of the training data (FLAML's and
/// CAML's fidelity mechanism): only the first `n_sample` rows participate.
pub fn holdout_eval_sampled(
    spec: &Pipeline,
    ds: &Dataset,
    val_frac: f64,
    n_sample: usize,
    seed: u64,
    tracker: &mut CostTracker,
) -> (f64, FittedPipeline) {
    let ds_small;
    let ds_ref = if n_sample < ds.n_rows() {
        ds_small = ds.head(n_sample.max(ds.n_classes * 2));
        &ds_small
    } else {
        ds
    };
    holdout_eval(spec, ds_ref, val_frac, seed, tracker)
}

/// k-fold cross-validation score (mean balanced accuracy over folds). Fits
/// `k` pipelines — `k` times the energy of one hold-out evaluation, which is
/// exactly the cost structure that hurts TPOT in the paper.
///
/// # Panics
/// Panics if `k < 2`.
pub fn cv_eval(
    spec: &Pipeline,
    ds: &Dataset,
    k: usize,
    seed: u64,
    tracker: &mut CostTracker,
) -> f64 {
    let folds = stratified_kfold(ds, k, seed);
    let mut total = 0.0;
    for (i, (train, val)) in folds.iter().enumerate() {
        let fitted = spec.fit(train, tracker, seed.wrapping_add(i as u64));
        let pred = fitted.predict(val, tracker);
        total += balanced_accuracy(&val.labels, &pred, ds.n_classes);
    }
    total / k as f64
}

/// Refit a pipeline specification on the full dataset (train + validation),
/// the paper's "refit" AutoML parameter (Table 5).
pub fn refit(
    spec: &Pipeline,
    ds: &Dataset,
    seed: u64,
    tracker: &mut CostTracker,
) -> FittedPipeline {
    spec.fit(ds, tracker, seed)
}

/// [`holdout_eval`]/[`holdout_eval_sampled`] with optional memoisation.
///
/// With `scope: None` this is exactly the live evaluation. With a scope,
/// the unit is looked up by `(pipeline, scope data, val_frac + seed,
/// n_sample)`; a hit replays the recorded energy and returns the memoised
/// score and fitted pipeline — bitwise identical to recomputing.
///
/// `ds` must be the dataset the scope was created over (its fingerprint is
/// the key's data component; the split and sample derive from it).
pub fn holdout_eval_scoped(
    spec: &Pipeline,
    ds: &Dataset,
    val_frac: f64,
    n_sample: Option<usize>,
    seed: u64,
    tracker: &mut CostTracker,
    scope: Option<&EvalScope<'_>>,
) -> (f64, FittedPipeline) {
    let live = |t: &mut CostTracker| match n_sample {
        Some(n) => holdout_eval_sampled(spec, ds, val_frac, n, seed, t),
        None => holdout_eval(spec, ds, val_frac, seed, t),
    };
    let Some(scope) = scope else {
        return live(tracker);
    };
    let key = scope.key(
        kind::HOLDOUT,
        evalcache::fingerprint_pipeline(spec),
        &[seed, val_frac.to_bits()],
        n_sample.map_or(u64::MAX, |n| n as u64),
    );
    match scope.cache().get_or_compute(key, tracker, |t| {
        let (score, fitted) = live(t);
        CachedValue::Scored { score, fitted }
    }) {
        CachedValue::Scored { score, fitted } => (score, fitted),
        other => unreachable!("holdout unit stored {other:?}"),
    }
}

/// [`cv_eval`] with optional memoisation (see [`holdout_eval_scoped`]).
pub fn cv_eval_scoped(
    spec: &Pipeline,
    ds: &Dataset,
    k: usize,
    seed: u64,
    tracker: &mut CostTracker,
    scope: Option<&EvalScope<'_>>,
) -> f64 {
    let Some(scope) = scope else {
        return cv_eval(spec, ds, k, seed, tracker);
    };
    let key = scope.key(
        kind::CROSS_VAL,
        evalcache::fingerprint_pipeline(spec),
        &[seed],
        k as u64,
    );
    match scope.cache().get_or_compute(key, tracker, |t| {
        CachedValue::Score(cv_eval(spec, ds, k, seed, t))
    }) {
        CachedValue::Score(score) => score,
        other => unreachable!("cv unit stored {other:?}"),
    }
}

/// Fit on `tr`, predict class probabilities on `val`, and score balanced
/// accuracy — the evaluation unit of systems that keep validation
/// probabilities for post-hoc ensembling (AutoSklearn's Caruana pool).
/// Optional memoisation as in [`holdout_eval_scoped`]; `data_words`
/// identifies how `(tr, val)` derive from the scope's training set
/// (split seeds, subsample sizes).
pub fn proba_eval_scoped(
    spec: &Pipeline,
    tr: &Dataset,
    val: &Dataset,
    data_words: &[u64],
    seed: u64,
    tracker: &mut CostTracker,
    scope: Option<&EvalScope<'_>>,
) -> (f64, FittedPipeline, Matrix) {
    let live = |t: &mut CostTracker| {
        let fitted = spec.fit(tr, t, seed);
        let proba = fitted.predict_proba(val, t);
        let pred = argmax_rows(&proba);
        let score = balanced_accuracy(&val.labels, &pred, val.n_classes);
        (score, fitted, proba)
    };
    let Some(scope) = scope else {
        return live(tracker);
    };
    let mut words = vec![seed];
    words.extend_from_slice(data_words);
    let key = scope.key(
        kind::PROBA_EVAL,
        evalcache::fingerprint_pipeline(spec),
        &words,
        tr.n_rows() as u64,
    );
    match scope.cache().get_or_compute(key, tracker, |t| {
        let (score, fitted, proba) = live(t);
        CachedValue::ScoredProba {
            score,
            fitted,
            proba,
        }
    }) {
        CachedValue::ScoredProba {
            score,
            fitted,
            proba,
        } => (score, fitted, proba),
        other => unreachable!("proba-eval unit stored {other:?}"),
    }
}

/// Bare [`Pipeline::fit`] with optional memoisation. `data_words`
/// identifies how `ds` derives from the scope's training set (empty when
/// `ds` *is* the scope's training set; sampling seeds and row counts when
/// it is a derived subset).
pub fn fit_scoped(
    spec: &Pipeline,
    ds: &Dataset,
    data_words: &[u64],
    seed: u64,
    tracker: &mut CostTracker,
    scope: Option<&EvalScope<'_>>,
) -> FittedPipeline {
    let Some(scope) = scope else {
        return spec.fit(ds, tracker, seed);
    };
    let mut words = vec![seed];
    words.extend_from_slice(data_words);
    let key = scope.key(
        kind::FIT,
        evalcache::fingerprint_pipeline(spec),
        &words,
        ds.n_rows() as u64,
    );
    match scope
        .cache()
        .get_or_compute(key, tracker, |t| CachedValue::Fitted(spec.fit(ds, t, seed)))
    {
        CachedValue::Fitted(fitted) => fitted,
        other => unreachable!("fit unit stored {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;
    use crate::preprocess::PreprocSpec;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    fn task() -> Dataset {
        let mut spec = TaskSpec::new("v", 300, 6, 2);
        spec.cluster_sep = 2.2;
        spec.generate()
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::DecisionTree(Default::default()),
        )
    }

    #[test]
    fn holdout_scores_above_chance() {
        let ds = task();
        let (score, fitted) = holdout_eval(&pipeline(), &ds, 0.33, 0, &mut tracker());
        assert!(score > 0.7, "holdout score {score}");
        assert_eq!(fitted.n_classes(), 2);
    }

    #[test]
    fn cv_costs_about_k_times_holdout() {
        let ds = task();
        let mut th = tracker();
        let _ = holdout_eval(&pipeline(), &ds, 0.2, 0, &mut th);
        let mut tc = tracker();
        let _ = cv_eval(&pipeline(), &ds, 5, 0, &mut tc);
        let ratio = tc.now() / th.now();
        assert!(
            (3.0..8.0).contains(&ratio),
            "5-fold CV should cost ~5x a holdout eval, got {ratio:.2}x"
        );
    }

    #[test]
    fn sampled_eval_is_cheaper() {
        // Use a model heavy enough that the constant fit overhead does not
        // dominate the comparison.
        let heavy = Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::RandomForest(Default::default()),
        );
        let ds = task();
        let mut tfull = tracker();
        let _ = holdout_eval(&heavy, &ds, 0.33, 0, &mut tfull);
        let mut tsmall = tracker();
        let _ = holdout_eval_sampled(&heavy, &ds, 0.33, 60, 0, &mut tsmall);
        assert!(
            tsmall.now() < tfull.now() * 0.7,
            "sampled {} vs full {}",
            tsmall.now(),
            tfull.now()
        );
    }

    #[test]
    fn resampled_validation_varies_with_seed() {
        // CAML reshuffles the validation split per BO iteration; different
        // seeds must actually produce different splits/scores sometimes.
        let ds = task();
        let scores: Vec<f64> = (0..6)
            .map(|s| holdout_eval(&pipeline(), &ds, 0.33, s, &mut tracker()).0)
            .collect();
        let distinct: std::collections::BTreeSet<u64> =
            scores.iter().map(|s| s.to_bits()).collect();
        assert!(
            distinct.len() > 1,
            "scores identical across seeds: {scores:?}"
        );
    }

    #[test]
    fn refit_uses_all_rows() {
        let ds = task();
        let mut t = tracker();
        let fitted = refit(&pipeline(), &ds, 0, &mut t);
        // A refit model must predict the training data well.
        let pred = fitted.predict(&ds, &mut t);
        let bal = crate::metrics::balanced_accuracy(&ds.labels, &pred, 2);
        assert!(bal > 0.8);
    }
}
