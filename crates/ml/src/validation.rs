//! Validation strategies the AutoML systems choose from.
//!
//! The paper's systems differ exactly here: most use hold-out validation,
//! TPOT uses 5-fold cross-validation (which the paper blames for its low
//! 5-minute accuracy), and CAML re-samples the hold-out split per Bayesian-
//! optimisation iteration to avoid overfitting the validation set.

use crate::metrics::balanced_accuracy;
use crate::pipeline::{FittedPipeline, Pipeline};
use green_automl_dataset::split::{stratified_kfold, train_test_split};
use green_automl_dataset::Dataset;
use green_automl_energy::CostTracker;

/// Fit on a hold-out split and score on the remaining validation part.
///
/// Returns the validation balanced accuracy and the fitted pipeline (fitted
/// on the *training part only*; call [`refit`] to use all data afterwards).
///
/// # Panics
/// Panics if `val_frac` is outside `(0, 1)`.
pub fn holdout_eval(
    spec: &Pipeline,
    ds: &Dataset,
    val_frac: f64,
    seed: u64,
    tracker: &mut CostTracker,
) -> (f64, FittedPipeline) {
    let (train, val) = train_test_split(ds, val_frac, seed);
    let fitted = spec.fit(&train, tracker, seed);
    let pred = fitted.predict(&val, tracker);
    let score = balanced_accuracy(&val.labels, &pred, ds.n_classes);
    (score, fitted)
}

/// Hold-out evaluation on a *sample* of the training data (FLAML's and
/// CAML's fidelity mechanism): only the first `n_sample` rows participate.
pub fn holdout_eval_sampled(
    spec: &Pipeline,
    ds: &Dataset,
    val_frac: f64,
    n_sample: usize,
    seed: u64,
    tracker: &mut CostTracker,
) -> (f64, FittedPipeline) {
    let ds_small;
    let ds_ref = if n_sample < ds.n_rows() {
        ds_small = ds.head(n_sample.max(ds.n_classes * 2));
        &ds_small
    } else {
        ds
    };
    holdout_eval(spec, ds_ref, val_frac, seed, tracker)
}

/// k-fold cross-validation score (mean balanced accuracy over folds). Fits
/// `k` pipelines — `k` times the energy of one hold-out evaluation, which is
/// exactly the cost structure that hurts TPOT in the paper.
///
/// # Panics
/// Panics if `k < 2`.
pub fn cv_eval(
    spec: &Pipeline,
    ds: &Dataset,
    k: usize,
    seed: u64,
    tracker: &mut CostTracker,
) -> f64 {
    let folds = stratified_kfold(ds, k, seed);
    let mut total = 0.0;
    for (i, (train, val)) in folds.iter().enumerate() {
        let fitted = spec.fit(train, tracker, seed.wrapping_add(i as u64));
        let pred = fitted.predict(val, tracker);
        total += balanced_accuracy(&val.labels, &pred, ds.n_classes);
    }
    total / k as f64
}

/// Refit a pipeline specification on the full dataset (train + validation),
/// the paper's "refit" AutoML parameter (Table 5).
pub fn refit(
    spec: &Pipeline,
    ds: &Dataset,
    seed: u64,
    tracker: &mut CostTracker,
) -> FittedPipeline {
    spec.fit(ds, tracker, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;
    use crate::preprocess::PreprocSpec;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    fn task() -> Dataset {
        let mut spec = TaskSpec::new("v", 300, 6, 2);
        spec.cluster_sep = 2.2;
        spec.generate()
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::DecisionTree(Default::default()),
        )
    }

    #[test]
    fn holdout_scores_above_chance() {
        let ds = task();
        let (score, fitted) = holdout_eval(&pipeline(), &ds, 0.33, 0, &mut tracker());
        assert!(score > 0.7, "holdout score {score}");
        assert_eq!(fitted.n_classes(), 2);
    }

    #[test]
    fn cv_costs_about_k_times_holdout() {
        let ds = task();
        let mut th = tracker();
        let _ = holdout_eval(&pipeline(), &ds, 0.2, 0, &mut th);
        let mut tc = tracker();
        let _ = cv_eval(&pipeline(), &ds, 5, 0, &mut tc);
        let ratio = tc.now() / th.now();
        assert!(
            (3.0..8.0).contains(&ratio),
            "5-fold CV should cost ~5x a holdout eval, got {ratio:.2}x"
        );
    }

    #[test]
    fn sampled_eval_is_cheaper() {
        // Use a model heavy enough that the constant fit overhead does not
        // dominate the comparison.
        let heavy = Pipeline::new(
            vec![PreprocSpec::StandardScaler],
            ModelSpec::RandomForest(Default::default()),
        );
        let ds = task();
        let mut tfull = tracker();
        let _ = holdout_eval(&heavy, &ds, 0.33, 0, &mut tfull);
        let mut tsmall = tracker();
        let _ = holdout_eval_sampled(&heavy, &ds, 0.33, 60, 0, &mut tsmall);
        assert!(
            tsmall.now() < tfull.now() * 0.7,
            "sampled {} vs full {}",
            tsmall.now(),
            tfull.now()
        );
    }

    #[test]
    fn resampled_validation_varies_with_seed() {
        // CAML reshuffles the validation split per BO iteration; different
        // seeds must actually produce different splits/scores sometimes.
        let ds = task();
        let scores: Vec<f64> = (0..6)
            .map(|s| holdout_eval(&pipeline(), &ds, 0.33, s, &mut tracker()).0)
            .collect();
        let distinct: std::collections::BTreeSet<u64> =
            scores.iter().map(|s| s.to_bits()).collect();
        assert!(
            distinct.len() > 1,
            "scores identical across seeds: {scores:?}"
        );
    }

    #[test]
    fn refit_uses_all_rows() {
        let ds = task();
        let mut t = tracker();
        let fitted = refit(&pipeline(), &ds, 0, &mut t);
        // A refit model must predict the training data well.
        let pred = fitted.predict(&ds, &mut t);
        let bal = crate::metrics::balanced_accuracy(&ds.labels, &pred, 2);
        assert!(bal > 0.8);
    }
}
