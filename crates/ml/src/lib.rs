//! # green-automl-ml
//!
//! The op-charging ML substrate underneath the simulated AutoML systems.
//!
//! Everything the paper's systems search over is implemented here from
//! scratch: preprocessors (imputation, scaling, feature selection, PCA),
//! ten classifier families (CART decision trees, random forests, extra
//! trees, gradient boosting, k-NN, logistic regression, linear SVM, Gaussian
//! naive Bayes, MLP, and a TabPFN-style in-context attention model),
//! pipelines that chain them, balanced-accuracy metrics, and hold-out /
//! k-fold validation.
//!
//! Every training and prediction routine *charges* its operations into a
//! [`green_automl_energy::CostTracker`], multiplied by the dataset's
//! logical-size factor, so the energy a pipeline consumes is an emergent
//! property of the work it really does.
//!
//! ## Example
//!
//! ```
//! use green_automl_dataset::TaskSpec;
//! use green_automl_dataset::split::train_test_split;
//! use green_automl_energy::{CostTracker, Device};
//! use green_automl_ml::{metrics, Pipeline, PreprocSpec, ModelSpec, TreeParams};
//!
//! let data = TaskSpec::new("demo", 300, 8, 2).generate();
//! let (train, test) = train_test_split(&data, 0.34, 0);
//! let mut tracker = CostTracker::new(Device::xeon_gold_6132(), 1);
//!
//! let spec = Pipeline::new(
//!     vec![PreprocSpec::StandardScaler],
//!     ModelSpec::DecisionTree(TreeParams::default()),
//! );
//! let fitted = spec.fit(&train, &mut tracker, 0);
//! let preds = fitted.predict(&test, &mut tracker);
//! let acc = metrics::balanced_accuracy(&test.labels, &preds, test.n_classes);
//! assert!(acc > 0.5); // comfortably beats chance on a separable task
//! assert!(tracker.measurement().energy.total_joules() > 0.0);
//! ```

pub mod evalcache;
pub mod kernel;
pub mod matrix;
pub mod metrics;
pub mod models;
pub mod pipeline;
pub mod preprocess;
pub mod validation;

pub use evalcache::{CacheHandle, CacheView, CachedValue, EvalCache, EvalKey, EvalScope};
pub use matrix::Matrix;
pub use models::attention::AttentionParams;
pub use models::boosting::GbParams;
pub use models::forest::ForestParams;
pub use models::knn::KnnParams;
pub use models::linear::{LogisticParams, SvmParams};
pub use models::mlp::MlpParams;
pub use models::tree::TreeParams;
pub use models::{FittedModel, ModelSpec};
pub use pipeline::{FittedPipeline, Pipeline};
pub use preprocess::PreprocSpec;
