//! A small row-major dense matrix plus the dataset encoder.
//!
//! The encoder turns a column-oriented [`Dataset`] into the numeric feature
//! matrix models consume: numeric columns pass through (missing stays `NaN`
//! for a downstream imputer), categorical columns one-hot encode (missing
//! encodes as all-zeros). The matrix carries the dataset's logical-size
//! charging factor so models can scale the operations they report.

use green_automl_dataset::{ColumnData, Dataset};
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// Row-major dense `f64` matrix with a logical-size charging factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Row-axis logical-size charging factor inherited from the dataset.
    pub row_scale: f64,
    /// Feature-axis logical-size charging factor inherited from the dataset.
    pub feat_scale: f64,
}

impl Matrix {
    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix {
            data,
            rows,
            cols,
            row_scale: 1.0,
            feat_scale: 1.0,
        }
    }

    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
            row_scale: 1.0,
            feat_scale: 1.0,
        }
    }

    /// Combined logical-size charging factor.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.row_scale * self.feat_scale
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Value at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Select rows into a new matrix (rows may repeat).
    #[must_use]
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            data,
            rows: rows.len(),
            cols: self.cols,
            row_scale: self.row_scale,
            feat_scale: self.feat_scale,
        }
    }

    /// Keep only the given columns, in the given order.
    #[must_use]
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * cols.len());
        for r in 0..self.rows {
            let row = self.row(r);
            data.extend(cols.iter().map(|&c| row[c]));
        }
        Matrix {
            data,
            rows: self.rows,
            cols: cols.len(),
            row_scale: self.row_scale,
            feat_scale: self.feat_scale,
        }
    }

    /// Raw buffer access (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer access (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, yielding its row-major buffer (used by the
    /// kernel scratch arena to recycle matrix storage).
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

/// Width of the encoded matrix for a dataset (numeric columns + one-hot
/// expansion of categorical columns, cardinality capped at
/// [`MAX_ONE_HOT`] to bound blow-up, as real AutoML encoders do).
pub fn encoded_width(ds: &Dataset) -> usize {
    ds.columns
        .iter()
        .map(|c| match &c.data {
            ColumnData::Numeric(_) => 1,
            ColumnData::Categorical { cardinality, .. } => (*cardinality as usize).min(MAX_ONE_HOT),
        })
        .sum()
}

/// Cardinality cap for one-hot expansion; rarer categories share the last
/// indicator column.
pub const MAX_ONE_HOT: usize = 16;

/// Encode a dataset into its numeric feature matrix, charging the memory
/// traffic of the materialisation at nominal scale.
pub fn encode(ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
    let width = encoded_width(ds);
    let n = ds.n_rows();
    let mut m = Matrix::zeros(n, width);
    m.row_scale = ds.row_scale;
    m.feat_scale = ds.feat_scale;

    let mut base = 0usize;
    for col in &ds.columns {
        match &col.data {
            ColumnData::Numeric(values) => {
                for (r, &v) in values.iter().enumerate() {
                    m.set(r, base, v);
                }
                base += 1;
            }
            ColumnData::Categorical { codes, cardinality } => {
                let w = (*cardinality as usize).min(MAX_ONE_HOT);
                for (r, &code) in codes.iter().enumerate() {
                    if code != green_automl_dataset::CAT_MISSING {
                        let slot = (code as usize).min(w - 1);
                        m.set(r, base + slot, 1.0);
                    }
                }
                base += w;
            }
        }
    }

    // Memory traffic of reading the nominal-size table and writing the
    // encoded matrix.
    let bytes = (n * width) as f64 * 8.0 * m.scale();
    tracker.charge(OpCounts::mem(bytes), ParallelProfile::batch_inference());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::{Column, TaskSpec};
    use green_automl_energy::Device;

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    #[test]
    fn basic_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.col(2), vec![0.0, 5.0]);
    }

    #[test]
    fn take_and_select() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let t = m.take_rows(&[1, 1, 0]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), &[4.0, 5.0, 6.0]);
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_buffer_panics() {
        let _ = Matrix::from_vec(vec![1.0], 2, 3);
    }

    #[test]
    fn encode_one_hots_categoricals() {
        let ds = green_automl_dataset::Dataset::new(
            "t",
            vec![
                Column::numeric("x", vec![1.5, f64::NAN]),
                Column::categorical("c", vec![2, green_automl_dataset::CAT_MISSING], 3),
            ],
            vec![0, 1],
            2,
        );
        let mut tr = tracker();
        let m = encode(&ds, &mut tr);
        assert_eq!(m.cols(), 4); // 1 numeric + 3 one-hot
        assert_eq!(m.row(0), &[1.5, 0.0, 0.0, 1.0]);
        // Missing numeric stays NaN (for the imputer); missing categorical
        // encodes as all-zeros.
        assert!(m.get(1, 0).is_nan());
        assert_eq!(&m.row(1)[1..], &[0.0, 0.0, 0.0]);
        assert!(tr.measurement().energy.total_joules() > 0.0);
    }

    #[test]
    fn high_cardinality_is_capped() {
        let codes: Vec<u32> = (0..100u32).collect();
        let ds = green_automl_dataset::Dataset::new(
            "t",
            vec![Column::categorical("c", codes, 100)],
            vec![0; 50].into_iter().chain(vec![1; 50]).collect(),
            2,
        );
        let m = encode(&ds, &mut tracker());
        assert_eq!(m.cols(), MAX_ONE_HOT);
        // Code 99 lands in the shared last slot.
        assert_eq!(m.get(99, MAX_ONE_HOT - 1), 1.0);
    }

    #[test]
    fn encode_charges_at_nominal_scale() {
        let ds = TaskSpec::new("t", 100, 4, 2).generate();
        let scaled = ds.clone().with_scales(10.0, 1.0);
        let mut t1 = tracker();
        let mut t2 = tracker();
        let _ = encode(&ds, &mut t1);
        let _ = encode(&scaled, &mut t2);
        let e1 = t1.measurement().energy.total_joules();
        let e2 = t2.measurement().energy.total_joules();
        assert!(
            e2 > e1 * 5.0,
            "scaled encode should cost ~10x: {e1} vs {e2}"
        );
    }

    #[test]
    fn encoded_width_matches_encode() {
        let mut spec = TaskSpec::new("t", 60, 10, 3);
        spec.categorical_frac = 0.5;
        let ds = spec.generate();
        let m = encode(&ds, &mut tracker());
        assert_eq!(m.cols(), encoded_width(&ds));
        assert_eq!(m.rows(), 60);
    }
}
