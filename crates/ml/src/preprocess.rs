//! Data and feature preprocessors.
//!
//! Mirrors the preprocessor families in AutoSklearn's search space (§2.3 of
//! the paper: "data/feature preprocessors"): mean imputation, standard and
//! min-max scaling, univariate feature selection (the mechanism behind
//! FLAML's feature pruning for wide datasets), and PCA. Every routine
//! charges its operations at the dataset's nominal scale.

use crate::matrix::Matrix;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};

/// An unfitted preprocessor choice (part of a pipeline's search space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreprocSpec {
    /// Replace missing numeric cells by the column mean. Always implicitly
    /// first in a pipeline.
    MeanImputer,
    /// Standardise columns to zero mean / unit variance.
    StandardScaler,
    /// Rescale columns to `[0, 1]`.
    MinMaxScaler,
    /// Keep the `frac` best columns by ANOVA-style F-score.
    SelectKBest {
        /// Fraction of columns kept, `(0, 1]`.
        frac: f64,
    },
    /// Project onto the top principal components.
    Pca {
        /// Fraction of columns kept as components, `(0, 1]` (capped at 16
        /// components).
        frac: f64,
    },
}

/// A fitted preprocessor ready to transform matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedPreproc {
    /// Fitted mean imputer.
    MeanImputer {
        /// Per-column means over non-missing entries.
        means: Vec<f64>,
    },
    /// Fitted standard scaler.
    StandardScaler {
        /// Per-column means.
        means: Vec<f64>,
        /// Per-column standard deviations (≥ tiny epsilon).
        stds: Vec<f64>,
    },
    /// Fitted min-max scaler.
    MinMaxScaler {
        /// Per-column minima.
        mins: Vec<f64>,
        /// Per-column ranges (≥ tiny epsilon).
        ranges: Vec<f64>,
    },
    /// Fitted feature selector.
    SelectKBest {
        /// Indices of retained columns.
        cols: Vec<usize>,
    },
    /// Fitted PCA projection.
    Pca {
        /// Training-column means subtracted before projection.
        mean: Vec<f64>,
        /// `k x d` component matrix.
        components: Matrix,
    },
}

impl PreprocSpec {
    /// Fit this preprocessor on training data.
    pub fn fit(
        &self,
        x: &Matrix,
        y: &[u32],
        n_classes: usize,
        tracker: &mut CostTracker,
    ) -> FittedPreproc {
        let (n, d) = (x.rows(), x.cols());
        let cells = (n * d) as f64 * x.scale();
        match *self {
            PreprocSpec::MeanImputer => {
                tracker.charge(
                    OpCounts::scalar(2.0 * cells),
                    ParallelProfile::model_training(),
                );
                let means = column_means_ignoring_nan(x);
                FittedPreproc::MeanImputer { means }
            }
            PreprocSpec::StandardScaler => {
                tracker.charge(
                    OpCounts::scalar(3.0 * cells),
                    ParallelProfile::model_training(),
                );
                let means = column_means_ignoring_nan(x);
                let mut stds = vec![0.0; d];
                for r in 0..n {
                    let row = x.row(r);
                    for c in 0..d {
                        if !row[c].is_nan() {
                            stds[c] += (row[c] - means[c]).powi(2);
                        }
                    }
                }
                for s in &mut stds {
                    *s = (*s / n.max(1) as f64).sqrt().max(1e-9);
                }
                FittedPreproc::StandardScaler { means, stds }
            }
            PreprocSpec::MinMaxScaler => {
                tracker.charge(
                    OpCounts::scalar(2.0 * cells),
                    ParallelProfile::model_training(),
                );
                let mut mins = vec![f64::INFINITY; d];
                let mut maxs = vec![f64::NEG_INFINITY; d];
                for r in 0..n {
                    let row = x.row(r);
                    for c in 0..d {
                        if !row[c].is_nan() {
                            mins[c] = mins[c].min(row[c]);
                            maxs[c] = maxs[c].max(row[c]);
                        }
                    }
                }
                let ranges = mins
                    .iter()
                    .zip(&maxs)
                    .map(|(lo, hi)| (hi - lo).max(1e-9))
                    .collect();
                for m in &mut mins {
                    if !m.is_finite() {
                        *m = 0.0;
                    }
                }
                FittedPreproc::MinMaxScaler { mins, ranges }
            }
            PreprocSpec::SelectKBest { frac } => {
                assert!(frac > 0.0 && frac <= 1.0, "frac must lie in (0, 1]");
                tracker.charge(
                    OpCounts::scalar(4.0 * cells)
                        + OpCounts::scalar((d as f64) * (d as f64).log2().max(1.0)),
                    ParallelProfile::model_training(),
                );
                let scores = anova_f_scores(x, y, n_classes);
                let k = ((d as f64 * frac).ceil() as usize).clamp(1, d);
                let mut idx: Vec<usize> = (0..d).collect();
                idx.sort_by(|&a, &b| {
                    scores[b]
                        .partial_cmp(&scores[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut cols: Vec<usize> = idx.into_iter().take(k).collect();
                cols.sort_unstable();
                FittedPreproc::SelectKBest { cols }
            }
            PreprocSpec::Pca { frac } => {
                assert!(frac > 0.0 && frac <= 1.0, "frac must lie in (0, 1]");
                let k = ((d as f64 * frac).ceil() as usize).clamp(1, 16.min(d));
                const POWER_ITERS: usize = 12;
                tracker.charge(
                    OpCounts::matmul((POWER_ITERS * k) as f64 * 2.0 * cells),
                    ParallelProfile::model_training(),
                );
                let (mean, components) = pca_power_iteration(x, k, POWER_ITERS);
                FittedPreproc::Pca { mean, components }
            }
        }
    }
}

impl FittedPreproc {
    /// Transform a matrix (training or inference data).
    pub fn transform(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        let cells = (n * d) as f64 * x.scale();
        match self {
            FittedPreproc::MeanImputer { means } => {
                tracker.charge(OpCounts::scalar(cells), ParallelProfile::batch_inference());
                let mut out = x.clone();
                for r in 0..n {
                    let row = out.row_mut(r);
                    for c in 0..d.min(means.len()) {
                        if row[c].is_nan() {
                            row[c] = means[c];
                        }
                    }
                }
                out
            }
            FittedPreproc::StandardScaler { means, stds } => {
                tracker.charge(
                    OpCounts::scalar(2.0 * cells),
                    ParallelProfile::batch_inference(),
                );
                let mut out = x.clone();
                for r in 0..n {
                    let row = out.row_mut(r);
                    for c in 0..d.min(means.len()) {
                        row[c] = (row[c] - means[c]) / stds[c];
                    }
                }
                out
            }
            FittedPreproc::MinMaxScaler { mins, ranges } => {
                tracker.charge(
                    OpCounts::scalar(2.0 * cells),
                    ParallelProfile::batch_inference(),
                );
                let mut out = x.clone();
                for r in 0..n {
                    let row = out.row_mut(r);
                    for c in 0..d.min(mins.len()) {
                        row[c] = (row[c] - mins[c]) / ranges[c];
                    }
                }
                out
            }
            FittedPreproc::SelectKBest { cols } => {
                tracker.charge(
                    OpCounts::mem((n * cols.len()) as f64 * 8.0 * x.scale()),
                    ParallelProfile::batch_inference(),
                );
                x.select_cols(cols)
            }
            FittedPreproc::Pca { mean, components } => {
                let k = components.rows();
                tracker.charge(
                    OpCounts::matmul(2.0 * cells * k as f64),
                    ParallelProfile::batch_inference(),
                );
                let mut out = Matrix::zeros(n, k);
                out.row_scale = x.row_scale;
                out.feat_scale = x.feat_scale;
                for r in 0..n {
                    for ki in 0..k {
                        let comp = components.row(ki);
                        let mut dot = 0.0;
                        let row = x.row(r);
                        for c in 0..d.min(comp.len()) {
                            dot += (row[c] - mean[c]) * comp[c];
                        }
                        out.set(r, ki, dot);
                    }
                }
                out
            }
        }
    }

    /// Transform an *owned* matrix, reusing its buffer where the transform
    /// is element-wise (imputer, scalers). Charges exactly the same
    /// operations as [`FittedPreproc::transform`] and produces the same
    /// values — the only difference is that the element-wise variants skip
    /// the clone-per-stage allocation, which is the hottest allocation
    /// site in pipeline fitting and batch prediction.
    pub fn transform_into(&self, mut x: Matrix, tracker: &mut CostTracker) -> Matrix {
        let (n, d) = (x.rows(), x.cols());
        let cells = (n * d) as f64 * x.scale();
        match self {
            FittedPreproc::MeanImputer { means } => {
                tracker.charge(OpCounts::scalar(cells), ParallelProfile::batch_inference());
                for r in 0..n {
                    let row = x.row_mut(r);
                    for c in 0..d.min(means.len()) {
                        if row[c].is_nan() {
                            row[c] = means[c];
                        }
                    }
                }
                x
            }
            FittedPreproc::StandardScaler { means, stds } => {
                tracker.charge(
                    OpCounts::scalar(2.0 * cells),
                    ParallelProfile::batch_inference(),
                );
                for r in 0..n {
                    let row = x.row_mut(r);
                    for c in 0..d.min(means.len()) {
                        row[c] = (row[c] - means[c]) / stds[c];
                    }
                }
                x
            }
            FittedPreproc::MinMaxScaler { mins, ranges } => {
                tracker.charge(
                    OpCounts::scalar(2.0 * cells),
                    ParallelProfile::batch_inference(),
                );
                for r in 0..n {
                    let row = x.row_mut(r);
                    for c in 0..d.min(mins.len()) {
                        row[c] = (row[c] - mins[c]) / ranges[c];
                    }
                }
                x
            }
            // Shape-changing transforms allocate a fresh matrix either way.
            FittedPreproc::SelectKBest { .. } | FittedPreproc::Pca { .. } => {
                self.transform(&x, tracker)
            }
        }
    }

    /// Per-row inference operations of this transform on `d` input columns —
    /// used for inference-time constraint checks before running anything.
    pub fn inference_ops_per_row(&self, d: usize) -> OpCounts {
        match self {
            FittedPreproc::MeanImputer { .. } => OpCounts::scalar(d as f64),
            FittedPreproc::StandardScaler { .. } | FittedPreproc::MinMaxScaler { .. } => {
                OpCounts::scalar(2.0 * d as f64)
            }
            FittedPreproc::SelectKBest { cols } => OpCounts::mem(cols.len() as f64 * 8.0),
            FittedPreproc::Pca { components, .. } => {
                OpCounts::matmul(2.0 * (components.rows() * d) as f64)
            }
        }
    }

    /// Number of output columns given `d` input columns.
    pub fn output_cols(&self, d: usize) -> usize {
        match self {
            FittedPreproc::MeanImputer { .. }
            | FittedPreproc::StandardScaler { .. }
            | FittedPreproc::MinMaxScaler { .. } => d,
            FittedPreproc::SelectKBest { cols } => cols.len(),
            FittedPreproc::Pca { components, .. } => components.rows(),
        }
    }
}

fn column_means_ignoring_nan(x: &Matrix) -> Vec<f64> {
    let (n, d) = (x.rows(), x.cols());
    let mut sums = vec![0.0; d];
    let mut counts = vec![0usize; d];
    for r in 0..n {
        let row = x.row(r);
        for c in 0..d {
            if !row[c].is_nan() {
                sums[c] += row[c];
                counts[c] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Per-column ANOVA-style F-score: between-class variance of class means
/// over within-class variance.
fn anova_f_scores(x: &Matrix, y: &[u32], n_classes: usize) -> Vec<f64> {
    let (n, d) = (x.rows(), x.cols());
    let mut class_sums = vec![vec![0.0; d]; n_classes];
    let mut class_counts = vec![0usize; n_classes];
    for r in 0..n {
        class_counts[y[r] as usize] += 1;
        let row = x.row(r);
        for c in 0..d {
            if !row[c].is_nan() {
                class_sums[y[r] as usize][c] += row[c];
            }
        }
    }
    let grand = column_means_ignoring_nan(x);
    let mut between = vec![0.0; d];
    for k in 0..n_classes {
        if class_counts[k] == 0 {
            continue;
        }
        for c in 0..d {
            let m = class_sums[k][c] / class_counts[k] as f64;
            between[c] += class_counts[k] as f64 * (m - grand[c]).powi(2);
        }
    }
    let mut within = vec![0.0; d];
    for r in 0..n {
        let k = y[r] as usize;
        if class_counts[k] == 0 {
            continue;
        }
        let row = x.row(r);
        for c in 0..d {
            if !row[c].is_nan() {
                let m = class_sums[k][c] / class_counts[k] as f64;
                within[c] += (row[c] - m).powi(2);
            }
        }
    }
    between
        .iter()
        .zip(&within)
        .map(|(&b, &w)| b / w.max(1e-12))
        .collect()
}

/// Top-`k` principal components via power iteration with deflation.
/// Returns (column means, k×d component matrix).
fn pca_power_iteration(x: &Matrix, k: usize, iters: usize) -> (Vec<f64>, Matrix) {
    let (n, d) = (x.rows(), x.cols());
    let mean = column_means_ignoring_nan(x);
    // Centered copy with NaN treated as mean (zero after centering).
    let mut centered = Matrix::zeros(n, d);
    for r in 0..n {
        let src = x.row(r);
        let dst = centered.row_mut(r);
        for c in 0..d {
            dst[c] = if src[c].is_nan() {
                0.0
            } else {
                src[c] - mean[c]
            };
        }
    }
    let mut components = Matrix::zeros(k, d);
    for ki in 0..k {
        // Deterministic pseudo-random start vector.
        let mut v: Vec<f64> = (0..d)
            .map(|c| (((ki * 31 + c * 17 + 7) % 97) as f64 / 97.0) - 0.5)
            .collect();
        normalize(&mut v);
        for _ in 0..iters {
            // w = X^T (X v)
            let mut xv = vec![0.0; n];
            for r in 0..n {
                let row = centered.row(r);
                xv[r] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            let mut w = vec![0.0; d];
            for r in 0..n {
                let row = centered.row(r);
                for c in 0..d {
                    w[c] += row[c] * xv[r];
                }
            }
            // Deflate against previous components.
            for prev in 0..ki {
                let p = components.row(prev);
                let dot: f64 = w.iter().zip(p).map(|(a, b)| a * b).sum();
                for c in 0..d {
                    w[c] -= dot * p[c];
                }
            }
            if normalize(&mut w) < 1e-12 {
                break;
            }
            v = w;
        }
        components.row_mut(ki).copy_from_slice(&v);
    }
    (mean, components)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::Device;

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    fn toy() -> (Matrix, Vec<u32>) {
        // Column 0 separates classes; column 1 is noise; column 2 has a NaN.
        let x = Matrix::from_vec(
            vec![
                0.0,
                5.0,
                1.0, //
                0.1,
                -3.0,
                f64::NAN, //
                10.0,
                4.0,
                3.0, //
                10.1,
                -2.0,
                5.0,
            ],
            4,
            3,
        );
        (x, vec![0, 0, 1, 1])
    }

    #[test]
    fn imputer_fills_nan_with_mean() {
        let (x, y) = toy();
        let mut tr = tracker();
        let f = PreprocSpec::MeanImputer.fit(&x, &y, 2, &mut tr);
        let out = f.transform(&x, &mut tr);
        // Mean of col 2 over non-missing = (1+3+5)/3 = 3.
        assert!((out.get(1, 2) - 3.0).abs() < 1e-12);
        assert!(out.as_slice().iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn standard_scaler_standardises() {
        let (x, y) = toy();
        let mut tr = tracker();
        let f = PreprocSpec::StandardScaler.fit(&x, &y, 2, &mut tr);
        let out = f.transform(&x, &mut tr);
        let col: Vec<f64> = out.col(0);
        let mean: f64 = col.iter().sum::<f64>() / 4.0;
        let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let (x, y) = toy();
        let mut tr = tracker();
        let f = PreprocSpec::MinMaxScaler.fit(&x, &y, 2, &mut tr);
        let out = f.transform(&x, &mut tr);
        for c in 0..2 {
            let col = out.col(c);
            assert!(col.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn select_k_best_keeps_discriminative_column() {
        let (x, y) = toy();
        let mut tr = tracker();
        let f = PreprocSpec::SelectKBest { frac: 0.3 }.fit(&x, &y, 2, &mut tr);
        match &f {
            FittedPreproc::SelectKBest { cols } => assert_eq!(cols, &vec![0]),
            _ => unreachable!(),
        }
        let out = f.transform(&x, &mut tr);
        assert_eq!(out.cols(), 1);
        assert_eq!(out.col(0), x.col(0));
    }

    #[test]
    fn pca_first_component_captures_variance_direction() {
        // Data varies overwhelmingly along column 0.
        let mut x = Matrix::zeros(50, 3);
        for r in 0..50 {
            x.set(r, 0, r as f64);
            x.set(r, 1, (r % 3) as f64 * 0.01);
            x.set(r, 2, 0.5);
        }
        let y = vec![0u32; 50];
        let mut tr = tracker();
        let f = PreprocSpec::Pca { frac: 0.3 }.fit(&x, &y, 2, &mut tr);
        match &f {
            FittedPreproc::Pca { components, .. } => {
                assert_eq!(components.rows(), 1);
                assert!(
                    components.get(0, 0).abs() > 0.99,
                    "first PC should align with col 0"
                );
            }
            _ => unreachable!(),
        }
        let out = f.transform(&x, &mut tr);
        assert_eq!(out.cols(), 1);
    }

    #[test]
    fn transforms_charge_energy_at_scale() {
        let (mut x, y) = toy();
        let mut t1 = tracker();
        let f = PreprocSpec::StandardScaler.fit(&x, &y, 2, &mut t1);
        let base = {
            let mut t = tracker();
            let _ = f.transform(&x, &mut t);
            t.measurement().energy.total_joules()
        };
        x.row_scale = 50.0;
        let scaled = {
            let mut t = tracker();
            let _ = f.transform(&x, &mut t);
            t.measurement().energy.total_joules()
        };
        assert!(scaled > base * 20.0);
    }

    #[test]
    fn output_cols_are_consistent() {
        let (x, y) = toy();
        let mut tr = tracker();
        for spec in [
            PreprocSpec::MeanImputer,
            PreprocSpec::StandardScaler,
            PreprocSpec::MinMaxScaler,
            PreprocSpec::SelectKBest { frac: 0.7 },
            PreprocSpec::Pca { frac: 0.7 },
        ] {
            let f = spec.fit(&x, &y, 2, &mut tr);
            let out = f.transform(&x, &mut tr);
            assert_eq!(out.cols(), f.output_cols(x.cols()), "{spec:?}");
            assert!(
                !f.inference_ops_per_row(x.cols()).is_zero()
                    || matches!(spec, PreprocSpec::SelectKBest { .. })
            );
        }
    }

    #[test]
    #[should_panic(expected = "frac")]
    fn zero_frac_panics() {
        let (x, y) = toy();
        let _ = PreprocSpec::SelectKBest { frac: 0.0 }.fit(&x, &y, 2, &mut tracker());
    }
}
