//! Synthetic tabular classification task generator.
//!
//! A `make_classification`-style generator (per-class Gaussian clusters on
//! the vertices of a scaled hypercube, redundant linear combinations, pure
//! noise features, quantile-binned categorical columns, label noise, class
//! imbalance, missing values). Each Table 2 dataset is materialised from one
//! [`TaskSpec`] whose difficulty knobs are derived deterministically from its
//! metadata, so the benchmark exhibits a realistic spread of easy and hard
//! tasks.

use crate::table::{Column, ColumnData, Dataset, CAT_MISSING};
use green_automl_energy::rng::SplitMix64;

/// Specification of a synthetic classification task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Dataset name.
    pub name: String,
    /// Rows to materialise.
    pub rows: usize,
    /// Total feature columns.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Fraction of feature columns converted to categorical, `[0, 1]`.
    pub categorical_frac: f64,
    /// Fraction of features carrying class signal, `(0, 1]`.
    pub informative_frac: f64,
    /// Fraction of features that are linear combinations of informative
    /// ones, `[0, 1]` (informative + redundant ≤ 1; the rest is noise).
    pub redundant_frac: f64,
    /// Probability that a label is flipped to a random other class.
    pub label_noise: f64,
    /// Class-imbalance strength in `[0, 1)`: weight of class `k` is
    /// proportional to `(1 - imbalance)^k`. `0` is balanced.
    pub imbalance: f64,
    /// Distance of cluster centroids from the origin; smaller is harder.
    pub cluster_sep: f64,
    /// Gaussian clusters per class.
    pub clusters_per_class: usize,
    /// Probability that any cell is missing.
    pub missing_frac: f64,
    /// RNG seed; the same spec + seed always yields the same dataset.
    pub seed: u64,
}

impl TaskSpec {
    /// A reasonable default task: balanced, mildly noisy, mostly numeric.
    pub fn new(name: impl Into<String>, rows: usize, features: usize, classes: usize) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            rows,
            features,
            classes,
            categorical_frac: 0.2,
            informative_frac: 0.6,
            redundant_frac: 0.2,
            label_noise: 0.05,
            imbalance: 0.0,
            cluster_sep: 1.6,
            clusters_per_class: 2,
            missing_frac: 0.0,
            seed: 0,
        }
    }

    /// Set the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> TaskSpec {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.rows >= 2, "need at least two rows");
        assert!(self.features >= 1, "need at least one feature");
        assert!(self.classes >= 2, "need at least two classes");
        assert!((0.0..=1.0).contains(&self.categorical_frac));
        assert!(self.informative_frac > 0.0 && self.informative_frac <= 1.0);
        assert!((0.0..=1.0).contains(&self.redundant_frac));
        assert!(
            self.informative_frac + self.redundant_frac <= 1.0 + 1e-9,
            "informative + redundant fractions exceed 1"
        );
        assert!((0.0..=1.0).contains(&self.label_noise));
        assert!((0.0..1.0).contains(&self.imbalance));
        assert!(self.cluster_sep > 0.0);
        assert!(self.clusters_per_class >= 1);
        assert!((0.0..=1.0).contains(&self.missing_frac));
    }

    /// Materialise the dataset described by this spec.
    pub fn generate(&self) -> Dataset {
        self.validate();
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);

        let n_inf = ((self.features as f64 * self.informative_frac).round() as usize)
            .clamp(1, self.features);
        let n_red = ((self.features as f64 * self.redundant_frac).round() as usize)
            .min(self.features - n_inf);
        let n_noise = self.features - n_inf - n_red;

        // Class sampling weights (geometric imbalance).
        let mut weights: Vec<f64> = (0..self.classes)
            .map(|k| (1.0 - self.imbalance).powi(k as i32))
            .collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }

        // Centroids: one per (class, cluster) at a random hypercube vertex
        // scaled by cluster_sep, plus jitter so clusters are distinguishable.
        let n_centroids = self.classes * self.clusters_per_class;
        let centroids: Vec<Vec<f64>> = (0..n_centroids)
            .map(|_| {
                (0..n_inf)
                    .map(|_| {
                        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                        sign * self.cluster_sep + gauss(&mut rng) * 0.4
                    })
                    .collect()
            })
            .collect();

        // Redundant features: fixed random linear maps of informative ones.
        let red_weights: Vec<Vec<f64>> = (0..n_red)
            .map(|_| (0..n_inf).map(|_| gauss(&mut rng)).collect())
            .collect();

        // Per-feature affine transforms so raw scales differ (this is what
        // makes scaling preprocessors matter).
        let col_scale: Vec<f64> = (0..self.features)
            .map(|_| (rng.gen_range(-1.5..1.5f64)).exp())
            .collect();
        let col_shift: Vec<f64> = (0..self.features)
            .map(|_| rng.gen_range(-3.0..3.0))
            .collect();

        // Ensure every class appears at least once: round-robin the first
        // `classes` rows, sample the rest from the weight distribution.
        let mut labels: Vec<u32> = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            let class = if i < self.classes {
                i as u32
            } else {
                sample_weighted(&mut rng, &weights) as u32
            };
            labels.push(class);
        }

        // Column-major feature buffer.
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(self.rows); self.features];
        for &label in &labels {
            let cluster = rng.gen_range(0..self.clusters_per_class);
            let centroid = &centroids[label as usize * self.clusters_per_class + cluster];
            let inf: Vec<f64> = centroid.iter().map(|&c| c + gauss(&mut rng)).collect();
            for (j, col) in cols.iter_mut().enumerate().take(n_inf) {
                col.push(inf[j]);
            }
            for (r, col) in cols.iter_mut().skip(n_inf).take(n_red).enumerate() {
                let v: f64 = red_weights[r]
                    .iter()
                    .zip(&inf)
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    / (n_inf as f64).sqrt();
                col.push(v);
            }
            for col in cols.iter_mut().skip(n_inf + n_red).take(n_noise) {
                col.push(gauss(&mut rng));
            }
        }

        // Apply affine transforms and missingness.
        for (j, col) in cols.iter_mut().enumerate() {
            for v in col.iter_mut() {
                *v = *v * col_scale[j] + col_shift[j];
                if self.missing_frac > 0.0 && rng.gen_bool(self.missing_frac) {
                    *v = f64::NAN;
                }
            }
        }

        // Label noise. The round-robin prefix is exempt so that every class
        // keeps at least one clean instance (stratified splitting relies on
        // full class coverage).
        if self.label_noise > 0.0 {
            for l in labels.iter_mut().skip(self.classes) {
                if rng.gen_bool(self.label_noise) {
                    let mut other = rng.gen_range(0..self.classes as u32);
                    if self.classes > 1 && other == *l {
                        other = (other + 1) % self.classes as u32;
                    }
                    *l = other;
                }
            }
        }

        // Convert a prefix-shuffled subset of columns to categorical via
        // quantile binning (informative categoricals keep their signal).
        let n_cat = (self.features as f64 * self.categorical_frac).round() as usize;
        let mut cat_idx: Vec<usize> = (0..self.features).collect();
        shuffle(&mut rng, &mut cat_idx);
        cat_idx.truncate(n_cat);
        cat_idx.sort_unstable();

        let columns: Vec<Column> = cols
            .into_iter()
            .enumerate()
            .map(|(j, values)| {
                let name = format!("f{j}");
                if cat_idx.binary_search(&j).is_ok() {
                    let card = rng.gen_range(2..=12u32);
                    Column {
                        name,
                        data: quantile_bin(&values, card),
                    }
                } else {
                    Column::numeric(name, values)
                }
            })
            .collect();

        Dataset::new(self.name.clone(), columns, labels, self.classes)
    }
}

/// Standard-normal sample via Box–Muller.
fn gauss(rng: &mut SplitMix64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn sample_weighted(rng: &mut SplitMix64, weights: &[f64]) -> usize {
    let r: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if r < acc {
            return i;
        }
    }
    weights.len() - 1
}

fn shuffle<T>(rng: &mut SplitMix64, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Bin numeric values into `card` quantile buckets; NaN becomes missing.
fn quantile_bin(values: &[f64], card: u32) -> ColumnData {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    let codes = values
        .iter()
        .map(|&v| {
            if v.is_nan() || sorted.is_empty() {
                CAT_MISSING
            } else {
                // Rank of v among non-missing values -> bucket.
                let rank = sorted.partition_point(|&s| s < v);
                let bucket = (rank as f64 / sorted.len() as f64 * card as f64) as u32;
                bucket.min(card - 1)
            }
        })
        .collect();
    ColumnData::Categorical {
        codes,
        cardinality: card,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_energy::rng::SplitMix64;

    #[test]
    fn generates_requested_shape() {
        let d = TaskSpec::new("t", 200, 10, 3).generate();
        assert_eq!(d.n_rows(), 200);
        assert_eq!(d.n_features(), 10);
        assert_eq!(d.n_classes, 3);
        // ~20% categorical requested.
        assert_eq!(d.n_categorical(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TaskSpec::new("t", 100, 8, 2).with_seed(7).generate();
        let b = TaskSpec::new("t", 100, 8, 2).with_seed(7).generate();
        let c = TaskSpec::new("t", 100, 8, 2).with_seed(8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn every_class_present() {
        let d = TaskSpec::new("t", 50, 5, 7).generate();
        assert!(d.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn imbalance_skews_class_counts() {
        let mut spec = TaskSpec::new("t", 2000, 5, 2);
        spec.imbalance = 0.7;
        let counts = spec.generate().class_counts();
        assert!(counts[0] > counts[1] * 2, "expected skew, got {counts:?}");
    }

    #[test]
    fn missingness_materialises() {
        let mut spec = TaskSpec::new("t", 500, 6, 2);
        spec.missing_frac = 0.2;
        spec.categorical_frac = 0.5;
        let d = spec.generate();
        let missing: usize = (0..d.n_rows())
            .map(|i| d.columns.iter().filter(|c| c.data.is_missing(i)).count())
            .sum();
        let total = d.n_rows() * d.n_features();
        let frac = missing as f64 / total as f64;
        assert!((0.1..0.3).contains(&frac), "missing fraction {frac}");
    }

    #[test]
    fn separable_task_is_learnable_by_nearest_centroid() {
        // With high separation and no label noise, a 1-NN-to-class-mean rule
        // must beat chance comfortably — the generator carries real signal.
        let mut spec = TaskSpec::new("t", 400, 6, 2);
        spec.cluster_sep = 3.0;
        spec.label_noise = 0.0;
        spec.categorical_frac = 0.0;
        spec.clusters_per_class = 1;
        let d = spec.generate();
        // Class means over numeric columns.
        let mut means = vec![vec![0.0; d.n_features()]; 2];
        let counts = d.class_counts();
        for (j, col) in d.columns.iter().enumerate() {
            if let ColumnData::Numeric(v) = &col.data {
                for (i, &x) in v.iter().enumerate() {
                    means[d.labels[i] as usize][j] += x;
                }
            }
        }
        for (k, m) in means.iter_mut().enumerate() {
            for v in m.iter_mut() {
                *v /= counts[k] as f64;
            }
        }
        let mut correct = 0;
        for i in 0..d.n_rows() {
            let dist = |k: usize| -> f64 {
                d.columns
                    .iter()
                    .enumerate()
                    .map(|(j, col)| match &col.data {
                        ColumnData::Numeric(v) => (v[i] - means[k][j]).powi(2),
                        _ => 0.0,
                    })
                    .sum()
            };
            let pred = if dist(0) < dist(1) { 0 } else { 1 };
            if pred == d.labels[i] as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.n_rows() as f64;
        assert!(acc > 0.85, "nearest-centroid accuracy {acc} too low");
    }

    #[test]
    fn quantile_bins_cover_range() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        if let ColumnData::Categorical { codes, cardinality } = quantile_bin(&vals, 4) {
            assert_eq!(cardinality, 4);
            assert_eq!(codes[0], 0);
            assert_eq!(codes[99], 3);
            let uniq: std::collections::BTreeSet<u32> = codes.into_iter().collect();
            assert_eq!(uniq.len(), 4);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn generated_datasets_satisfy_invariants() {
        let mut rng = SplitMix64::seed_from_u64(0x5e_e1);
        for _ in 0..24 {
            let rows = rng.gen_range(10..300usize);
            let feats = rng.gen_range(1..20usize);
            let classes = rng.gen_range(2..8usize);
            let seed = rng.gen_range(0..1000u64);
            let mut spec = TaskSpec::new("p", rows, feats, classes).with_seed(seed);
            spec.categorical_frac = rng.gen_range(0.0..=1.0f64);
            spec.label_noise = rng.gen_range(0.0..=0.3f64);
            // Dataset::new panics if invariants are broken, so reaching here
            // with correct shape is the property.
            let d = spec.generate();
            assert_eq!(d.n_rows(), rows);
            assert_eq!(d.n_features(), feats);
            if rows >= classes {
                assert!(d.class_counts().iter().all(|&c| c > 0));
            }
        }
    }
}
