//! The benchmark dataset registries.
//!
//! [`amlb39`] reproduces the paper's Table 2 verbatim — the 39 AMLB datasets
//! (Gijsbers et al. 2019) with their OpenML ids and nominal instance /
//! feature / class counts. [`dev_binary_pool`] generates the pool of 124
//! binary classification datasets used by the development-stage tuning
//! experiments (§3.7).
//!
//! Without OpenML access, each entry is materialised from a synthetic
//! [`TaskSpec`] whose difficulty knobs are derived deterministically from
//! the dataset's metadata (seeded by its OpenML id), and whose materialised
//! size may be capped — the nominal-to-materialised ratio becomes the
//! dataset's logical-size charging factor ([`Dataset::scale`]).

use crate::synth::TaskSpec;
use crate::table::Dataset;
use green_automl_energy::rng::SplitMix64;

/// Metadata of one benchmark dataset (one row of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Dataset name.
    pub name: &'static str,
    /// OpenML dataset id.
    pub openml_id: u32,
    /// Nominal number of instances.
    pub instances: usize,
    /// Nominal number of features.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
}

/// The 39 AMLB test datasets — the paper's Table 2, in its row order.
pub fn amlb39() -> Vec<DatasetMeta> {
    const T: &[(&str, u32, usize, usize, usize)] = &[
        ("robert", 41165, 10_000, 7200, 10),
        ("riccardo", 41161, 20_000, 4296, 2),
        ("guillermo", 41159, 20_000, 4296, 2),
        ("dilbert", 41163, 10_000, 2000, 5),
        ("christine", 41142, 5_418, 1636, 2),
        ("cnae-9", 1468, 1_080, 856, 9),
        ("fabert", 41164, 8_237, 800, 7),
        ("Fashion-MNIST", 40996, 70_000, 784, 10),
        ("KDDCup09_appetency", 1111, 50_000, 230, 2),
        ("mfeat-factors", 12, 2_000, 216, 10),
        ("volkert", 41166, 58_310, 180, 10),
        ("APSFailure", 41138, 76_000, 170, 2),
        ("jasmine", 41143, 2_984, 144, 2),
        ("nomao", 1486, 34_465, 118, 2),
        ("albert", 41147, 425_240, 78, 2),
        ("dionis", 41167, 416_188, 60, 355),
        ("jannis", 41168, 83_733, 54, 4),
        ("covertype", 1596, 581_012, 54, 7),
        ("MiniBooNE", 41150, 130_064, 50, 2),
        ("connect-4", 40668, 67_557, 42, 3),
        ("kr-vs-kp", 3, 3_196, 36, 2),
        ("higgs", 23512, 98_050, 28, 2),
        ("helena", 41169, 65_196, 27, 100),
        ("kc1", 1067, 2_109, 21, 2),
        ("numerai28.6", 23517, 96_320, 21, 2),
        ("credit-g", 31, 1_000, 20, 2),
        ("sylvine", 41146, 5_124, 20, 2),
        ("segment", 40984, 2_310, 16, 7),
        ("vehicle", 54, 846, 18, 4),
        ("bank-marketing", 1461, 45_211, 16, 2),
        ("Australian", 40981, 690, 14, 2),
        ("adult", 1590, 48_842, 14, 2),
        ("Amazon_employee_access", 4135, 32_769, 9, 2),
        ("shuttle", 40685, 58_000, 9, 7),
        ("airlines", 1169, 539_383, 7, 2),
        ("car", 40975, 1_728, 6, 4),
        (
            "jungle_chess_2pcs_raw_endgame_complete",
            41027,
            44_819,
            6,
            3,
        ),
        ("phoneme", 1489, 5_404, 5, 2),
        ("blood-transfusion-service-center", 1464, 748, 4, 2),
    ];
    T.iter()
        .map(
            |&(name, openml_id, instances, features, classes)| DatasetMeta {
                name,
                openml_id,
                instances,
                features,
                classes,
            },
        )
        .collect()
}

/// The pool of 124 binary classification datasets used for development-stage
/// tuning (paper §3.7). Sizes are spread log-uniformly over the ranges the
/// AMLB pool covers; ids start at 900 000 to avoid clashing with real
/// OpenML ids.
pub fn dev_binary_pool() -> Vec<DatasetMeta> {
    // Names must live for 'static: generate deterministic sizes, leak the
    // names once (the pool is a process-wide fixture).
    static NAMES: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let names = NAMES.get_or_init(|| {
        (0..124)
            .map(|i| &*Box::leak(format!("dev-{i:03}").into_boxed_str()))
            .collect()
    });
    let mut rng = SplitMix64::seed_from_u64(0xdecade);
    (0..124)
        .map(|i| {
            let instances = (10f64.powf(rng.gen_range(2.7..5.3))) as usize;
            let features = (10f64.powf(rng.gen_range(0.6..2.7))) as usize;
            DatasetMeta {
                name: names[i],
                openml_id: 900_000 + i as u32,
                instances: instances.max(100),
                features: features.max(3),
                classes: 2,
            }
        })
        .collect()
}

/// Controls how a [`DatasetMeta`] is materialised into a synthetic
/// [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaterializeOptions {
    /// Row cap for the materialised data (nominal rows beyond this are
    /// represented by the charging factor).
    pub max_rows: usize,
    /// Guarantee at least this many materialised rows per class.
    pub min_rows_per_class: usize,
    /// Feature-column cap.
    pub max_features: usize,
    /// Materialise at most this fraction of the nominal rows (subject to
    /// the per-class minimum). Values below 1 guarantee even small datasets
    /// carry a row charging factor, which keeps real compute a fraction of
    /// the virtual budget being simulated.
    pub max_row_frac: f64,
    /// Extra seed mixed into the per-dataset generator seed, so repeated
    /// runs (the paper's 10 repetitions) see different samples.
    pub seed: u64,
}

impl Default for MaterializeOptions {
    fn default() -> Self {
        MaterializeOptions {
            max_rows: 900,
            min_rows_per_class: 8,
            max_features: 96,
            max_row_frac: 1.0,
            seed: 0,
        }
    }
}

impl MaterializeOptions {
    /// Options for quick tests: tiny materialisations.
    pub fn tiny() -> Self {
        MaterializeOptions {
            max_rows: 120,
            min_rows_per_class: 4,
            max_features: 16,
            max_row_frac: 1.0,
            seed: 0,
        }
    }

    /// The benchmark-experiment profile: small materialisations with a
    /// guaranteed row charging factor (≥ ~6x), so simulated search budgets
    /// cost far less real compute than the virtual time they represent.
    pub fn benchmark() -> Self {
        MaterializeOptions {
            max_rows: 420,
            min_rows_per_class: 3,
            max_features: 64,
            max_row_frac: 0.16,
            seed: 0,
        }
    }
}

impl DatasetMeta {
    /// Derive the synthetic task specification for this dataset.
    ///
    /// Difficulty knobs are drawn from an RNG seeded by the OpenML id, so
    /// every dataset has a stable personality across runs; the
    /// materialisation seed only affects the sampled rows.
    pub fn spec(&self, opts: &MaterializeOptions) -> TaskSpec {
        let mut knobs = SplitMix64::seed_from_u64(self.openml_id as u64 ^ 0xf005_ba11);
        let frac_cap = ((self.instances as f64 * opts.max_row_frac) as usize).max(16);
        let rows = self.instances.min(
            opts.max_rows
                .min(frac_cap)
                .max(self.classes * opts.min_rows_per_class),
        );
        let features = self.features.min(opts.max_features);

        let mut spec = TaskSpec::new(self.name, rows, features, self.classes)
            .with_seed(self.openml_id as u64 ^ opts.seed.rotate_left(17));
        spec.categorical_frac = knobs.gen_range(0.0..0.55f64);
        // Wide datasets carry proportionally less informative signal.
        spec.informative_frac = if self.features > 500 {
            knobs.gen_range(0.05..0.25)
        } else {
            knobs.gen_range(0.35..0.75)
        };
        spec.redundant_frac = (1.0 - spec.informative_frac).min(knobs.gen_range(0.1..0.3));
        spec.label_noise = knobs.gen_range(0.0..0.14);
        spec.imbalance = if knobs.gen_bool(0.3) {
            knobs.gen_range(0.3..0.8)
        } else {
            0.0
        };
        spec.cluster_sep = knobs.gen_range(1.1..2.4);
        spec.clusters_per_class = knobs.gen_range(1..=3usize);
        spec.missing_frac = if knobs.gen_bool(0.25) {
            knobs.gen_range(0.01..0.1)
        } else {
            0.0
        };
        spec
    }

    /// Materialise this dataset with logical-size charging.
    pub fn materialize(&self, opts: &MaterializeOptions) -> Dataset {
        let spec = self.spec(opts);
        let row_scale = (self.instances as f64 / spec.rows as f64).max(1.0);
        let feat_scale = (self.features as f64 / spec.features as f64).max(1.0);
        spec.generate().with_scales(row_scale, feat_scale)
    }

    /// [`Self::materialize`] behind an `Arc`, for callers that share one
    /// materialisation across threads (e.g. the parallel benchmark grid's
    /// dataset cache).
    pub fn materialize_shared(&self, opts: &MaterializeOptions) -> std::sync::Arc<Dataset> {
        std::sync::Arc::new(self.materialize(opts))
    }
}

// Materialised datasets are shared via `Arc` across benchmark worker
// threads; a non-`Send + Sync` field sneaking into `Dataset` would break
// that silently, so pin it down at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Dataset>();
    assert_send_sync::<DatasetMeta>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_complete_and_exact() {
        let all = amlb39();
        assert_eq!(all.len(), 39);
        // Spot-check rows against the paper's Table 2.
        let robert = &all[0];
        assert_eq!(
            (
                robert.name,
                robert.openml_id,
                robert.instances,
                robert.features,
                robert.classes
            ),
            ("robert", 41165, 10_000, 7200, 10)
        );
        let covertype = all.iter().find(|m| m.name == "covertype").unwrap();
        assert_eq!(covertype.instances, 581_012);
        assert_eq!(covertype.classes, 7);
        let dionis = all.iter().find(|m| m.name == "dionis").unwrap();
        assert_eq!(dionis.classes, 355);
        let blood = all.last().unwrap();
        assert_eq!(blood.openml_id, 1464);
        assert_eq!(blood.features, 4);
    }

    #[test]
    fn ids_are_unique() {
        let all = amlb39();
        let mut ids: Vec<u32> = all.iter().map(|m| m.openml_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 39);
    }

    #[test]
    fn dev_pool_is_124_binary_datasets() {
        let pool = dev_binary_pool();
        assert_eq!(pool.len(), 124);
        assert!(pool.iter().all(|m| m.classes == 2));
        assert!(pool.iter().all(|m| m.instances >= 100 && m.features >= 3));
        // Deterministic across calls.
        assert_eq!(pool, dev_binary_pool());
    }

    #[test]
    fn small_datasets_materialise_at_full_size() {
        let all = amlb39();
        let credit = all.iter().find(|m| m.name == "credit-g").unwrap();
        let d = credit.materialize(&MaterializeOptions::default());
        assert_eq!(d.n_rows(), 900); // capped at max_rows < 1000 instances
        let blood = all
            .iter()
            .find(|m| m.name == "blood-transfusion-service-center")
            .unwrap();
        let d = blood.materialize(&MaterializeOptions::default());
        assert_eq!(d.n_rows(), 748);
        assert_eq!(d.n_features(), 4);
        assert_eq!(d.scale(), 1.0);
    }

    #[test]
    fn large_datasets_get_charging_factor() {
        let all = amlb39();
        let covertype = all.iter().find(|m| m.name == "covertype").unwrap();
        let d = covertype.materialize(&MaterializeOptions::default());
        assert_eq!(d.n_rows(), 900);
        assert!(d.scale() > 500.0, "expected large scale, got {}", d.scale());
        let robert = all.iter().find(|m| m.name == "robert").unwrap();
        let d = robert.materialize(&MaterializeOptions::default());
        assert_eq!(d.n_features(), 96);
        assert!(d.scale() > 100.0);
    }

    #[test]
    fn many_class_datasets_keep_all_classes() {
        let all = amlb39();
        let dionis = all.iter().find(|m| m.name == "dionis").unwrap();
        let d = dionis.materialize(&MaterializeOptions::default());
        assert_eq!(d.n_classes, 355);
        assert_eq!(d.n_rows(), 355 * 8);
        assert!(d.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn materialisation_is_deterministic_per_seed() {
        let meta = amlb39()[25]; // credit-g
        let a = meta.materialize(&MaterializeOptions::default());
        let b = meta.materialize(&MaterializeOptions::default());
        assert_eq!(a, b);
        let c = meta.materialize(&MaterializeOptions {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn dataset_personalities_differ() {
        // Difficulty knobs must vary across datasets, otherwise the
        // benchmark collapses to one task repeated 39 times.
        let opts = MaterializeOptions::default();
        let specs: Vec<_> = amlb39().iter().map(|m| m.spec(&opts)).collect();
        let seps: std::collections::BTreeSet<u64> =
            specs.iter().map(|s| s.cluster_sep.to_bits()).collect();
        assert!(seps.len() > 30);
    }
}
