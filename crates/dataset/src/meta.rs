//! Dataset meta-features.
//!
//! Two consumers in the paper: AutoSklearn's warm starting picks "the most
//! similar dataset based on selected metadata features" (§2.2), and the
//! development-stage tuner clusters datasets "based on metadata features,
//! such as the number of features, instances, and classes" (§2.5).

use crate::registry::DatasetMeta;
use crate::table::Dataset;

/// A fixed-length meta-feature vector describing a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaFeatures {
    /// log10 of the instance count.
    pub log_instances: f64,
    /// log10 of the feature count.
    pub log_features: f64,
    /// log10 of the class count.
    pub log_classes: f64,
    /// Features-per-instance ratio (log10 of the dimensionality ratio).
    pub log_dimensionality: f64,
    /// Fraction of categorical features (0 when computed from bare metadata).
    pub categorical_frac: f64,
    /// Normalised class entropy in `[0, 1]` (1 when computed from bare
    /// metadata — assumes balance).
    pub class_entropy: f64,
}

impl MetaFeatures {
    /// Cheap meta-features from registry metadata alone (what §2.5 uses for
    /// k-means clustering).
    pub fn from_meta(meta: &DatasetMeta) -> MetaFeatures {
        MetaFeatures {
            log_instances: (meta.instances as f64).log10(),
            log_features: (meta.features as f64).log10(),
            log_classes: (meta.classes as f64).log10(),
            log_dimensionality: (meta.features as f64 / meta.instances as f64).log10(),
            categorical_frac: 0.0,
            class_entropy: 1.0,
        }
    }

    /// Full meta-features from materialised data (what ASKL's warm starting
    /// uses). Instance/feature counts use the *nominal* sizes implied by the
    /// charging factor, matching what a real system would see.
    pub fn from_dataset(ds: &Dataset) -> MetaFeatures {
        let instances = ds.nominal_rows();
        let features = ds.nominal_features();
        let counts = ds.class_counts();
        let n = ds.n_rows() as f64;
        let entropy: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum();
        let max_entropy = (ds.n_classes as f64).ln().max(f64::EPSILON);
        MetaFeatures {
            log_instances: instances.log10(),
            log_features: features.log10(),
            log_classes: (ds.n_classes as f64).log10(),
            log_dimensionality: (features / instances).log10(),
            categorical_frac: ds.n_categorical() as f64 / ds.n_features().max(1) as f64,
            class_entropy: (entropy / max_entropy).clamp(0.0, 1.0),
        }
    }

    /// The vector form used by k-means and nearest-neighbour similarity.
    pub fn as_vec(&self) -> Vec<f64> {
        vec![
            self.log_instances,
            self.log_features,
            self.log_classes,
            self.log_dimensionality,
            self.categorical_frac,
            self.class_entropy,
        ]
    }

    /// Euclidean distance to another meta-feature vector.
    pub fn distance(&self, other: &MetaFeatures) -> f64 {
        self.as_vec()
            .iter()
            .zip(other.as_vec())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{amlb39, MaterializeOptions};
    use crate::synth::TaskSpec;

    #[test]
    fn meta_features_from_registry_metadata() {
        let covertype = amlb39()
            .into_iter()
            .find(|m| m.name == "covertype")
            .unwrap();
        let mf = MetaFeatures::from_meta(&covertype);
        assert!((mf.log_instances - (581_012f64).log10()).abs() < 1e-12);
        assert!((mf.log_classes - (7f64).log10()).abs() < 1e-12);
    }

    #[test]
    fn distance_is_a_metric_on_examples() {
        let all = amlb39();
        let a = MetaFeatures::from_meta(&all[0]);
        let b = MetaFeatures::from_meta(&all[1]);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn similar_datasets_are_closer_than_dissimilar_ones() {
        let all = amlb39();
        let riccardo = all.iter().find(|m| m.name == "riccardo").unwrap();
        let guillermo = all.iter().find(|m| m.name == "guillermo").unwrap(); // same shape
        let blood = all
            .iter()
            .find(|m| m.name == "blood-transfusion-service-center")
            .unwrap();
        let r = MetaFeatures::from_meta(riccardo);
        assert!(
            r.distance(&MetaFeatures::from_meta(guillermo))
                < r.distance(&MetaFeatures::from_meta(blood))
        );
    }

    #[test]
    fn dataset_meta_features_reflect_nominal_scale() {
        let covertype = amlb39()
            .into_iter()
            .find(|m| m.name == "covertype")
            .unwrap();
        let ds = covertype.materialize(&MaterializeOptions::default());
        let mf = MetaFeatures::from_dataset(&ds);
        // Nominal instances are ~581k even though only 900 rows materialise.
        assert!(mf.log_instances > 4.5, "log_instances {}", mf.log_instances);
    }

    #[test]
    fn entropy_is_low_for_imbalanced_data() {
        let balanced = TaskSpec::new("b", 400, 4, 2).generate();
        let mut spec = TaskSpec::new("i", 400, 4, 2);
        spec.imbalance = 0.8;
        let imbalanced = spec.generate();
        let eb = MetaFeatures::from_dataset(&balanced).class_entropy;
        let ei = MetaFeatures::from_dataset(&imbalanced).class_entropy;
        assert!(
            eb > ei,
            "balanced entropy {eb} should exceed imbalanced {ei}"
        );
    }

    #[test]
    fn as_vec_has_stable_length() {
        let m = MetaFeatures::from_meta(&amlb39()[0]);
        assert_eq!(m.as_vec().len(), 6);
    }
}
