//! Stratified splitting utilities.
//!
//! The paper splits each dataset 66/34 into train/test (§3.1); systems then
//! carve their own validation sets out of the training part (hold-out for
//! most, 5-fold CV for TPOT, resampled hold-out for CAML).

use crate::table::Dataset;
use green_automl_energy::rng::SplitMix64;

/// Stratified train/test split: each class contributes `test_frac` of its
/// rows to the test set (rounded down, at least one row stays in train),
/// and the test set is guaranteed non-empty — on small or class-skewed
/// datasets where every class's share rounds down to zero, one row of the
/// largest class is moved to test (downstream `balanced_accuracy` on an
/// empty test set would silently report 0.0).
///
/// # Panics
/// Panics if `test_frac` is not in `(0, 1)` or the dataset has fewer than
/// two rows.
pub fn train_test_split(ds: &Dataset, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_frac > 0.0 && test_frac < 1.0,
        "test_frac must lie in (0, 1)"
    );
    assert!(ds.n_rows() >= 2, "cannot split fewer than two rows");
    let per_class = rows_by_class(ds, seed);
    let mut n_test_per_class: Vec<usize> = per_class
        .iter()
        .map(|rows| ((rows.len() as f64 * test_frac) as usize).min(rows.len().saturating_sub(1)))
        .collect();
    if n_test_per_class.iter().all(|&n| n == 0) {
        // Every class rounded down to zero: promote one row of the largest
        // class (ties break to the lowest class index, deterministically).
        let biggest = (0..per_class.len())
            .max_by_key(|&c| per_class[c].len())
            .expect("datasets have at least two classes");
        n_test_per_class[biggest] = 1;
    }
    let mut train_rows = Vec::with_capacity(ds.n_rows());
    let mut test_rows = Vec::with_capacity(ds.n_rows());
    for (rows, &n_test) in per_class.iter().zip(&n_test_per_class) {
        test_rows.extend_from_slice(&rows[..n_test]);
        train_rows.extend_from_slice(&rows[n_test..]);
    }
    // Re-shuffle so downstream `head()` fidelity subsets are unbiased.
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed);
    shuffle(&mut rng, &mut train_rows);
    shuffle(&mut rng, &mut test_rows);
    (ds.take_rows(&train_rows), ds.take_rows(&test_rows))
}

/// Stratified k-fold assignment: returns `k` (train, validation) pairs
/// with fold sizes that differ by at most one row.
///
/// Each class is dealt round-robin over the folds, but the starting fold
/// *rotates* per class: class `c+1` starts where class `c`'s remainder rows
/// stopped (and class 0 starts at a seed-derived fold). Starting every
/// class at fold 0 — the old behaviour — piles all the `n_c mod k`
/// remainder rows onto the low-index folds, making fold 0 systematically
/// the largest; with the rolling start the remainders tile the fold ring
/// consecutively, which bounds the overall imbalance at one row.
///
/// # Panics
/// Panics if `k < 2` or `k` exceeds the row count.
pub fn stratified_kfold(ds: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= ds.n_rows(), "more folds than rows");
    let per_class = rows_by_class(ds, seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut start = SplitMix64::seed_from_u64(seed ^ 0xf01d).bounded_u64(k as u64) as usize;
    for rows in per_class {
        let n = rows.len();
        for (i, r) in rows.into_iter().enumerate() {
            folds[(start + i) % k].push(r);
        }
        start = (start + n % k) % k;
    }
    let (min, max) = folds.iter().fold((usize::MAX, 0), |(lo, hi), f| {
        (lo.min(f.len()), hi.max(f.len()))
    });
    assert!(
        max - min <= 1,
        "fold sizes must differ by at most one row (got {min}..{max})"
    );
    (0..k)
        .map(|i| {
            let val = &folds[i];
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            (ds.take_rows(&train), ds.take_rows(val))
        })
        .collect()
}

/// Rows grouped by class, each group shuffled with the given seed.
fn rows_by_class(ds: &Dataset, seed: u64) -> Vec<Vec<usize>> {
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); ds.n_classes];
    for (i, &l) in ds.labels.iter().enumerate() {
        per_class[l as usize].push(i);
    }
    let mut rng = SplitMix64::seed_from_u64(seed);
    for rows in &mut per_class {
        shuffle(&mut rng, rows);
    }
    per_class
}

fn shuffle<T>(rng: &mut SplitMix64, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TaskSpec;
    use green_automl_energy::rng::SplitMix64;

    fn toy(rows: usize, classes: usize) -> Dataset {
        TaskSpec::new("toy", rows, 4, classes).generate()
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy(100, 2);
        let (train, test) = train_test_split(&d, 0.34, 0);
        assert_eq!(train.n_rows() + test.n_rows(), 100);
        assert!(
            (30..=37).contains(&test.n_rows()),
            "test size {}",
            test.n_rows()
        );
    }

    #[test]
    fn split_is_stratified() {
        let mut spec = TaskSpec::new("imb", 1000, 4, 2);
        spec.imbalance = 0.6;
        let d = spec.generate();
        let (train, test) = train_test_split(&d, 0.34, 1);
        let full_frac = d.class_counts()[1] as f64 / d.n_rows() as f64;
        let train_frac = train.class_counts()[1] as f64 / train.n_rows() as f64;
        let test_frac = test.class_counts()[1] as f64 / test.n_rows() as f64;
        assert!((train_frac - full_frac).abs() < 0.02);
        assert!((test_frac - full_frac).abs() < 0.02);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(60, 3);
        let (a1, b1) = train_test_split(&d, 0.3, 42);
        let (a2, b2) = train_test_split(&d, 0.3, 42);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn every_class_reaches_train() {
        let d = toy(40, 7);
        let (train, _) = train_test_split(&d, 0.34, 0);
        assert!(train.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn kfold_covers_every_row_once_as_validation() {
        let d = toy(50, 2);
        let folds = stratified_kfold(&d, 5, 0);
        assert_eq!(folds.len(), 5);
        let total_val: usize = folds.iter().map(|(_, v)| v.n_rows()).sum();
        assert_eq!(total_val, 50);
        for (train, val) in &folds {
            assert_eq!(train.n_rows() + val.n_rows(), 50);
        }
    }

    #[test]
    #[should_panic(expected = "test_frac")]
    fn bad_fraction_panics() {
        let d = toy(10, 2);
        let _ = train_test_split(&d, 1.0, 0);
    }

    #[test]
    fn test_set_is_never_empty_on_small_or_skewed_data() {
        // Each class used to contribute floor(len * frac) rows, which is 0
        // for every class with <= 2 rows at frac 0.34 — a dataset of tiny
        // classes produced an empty test set and balanced_accuracy quietly
        // reported 0.0.
        let mut rng = SplitMix64::seed_from_u64(0xe3317);
        for _ in 0..64 {
            let classes = rng.gen_range(2..6usize);
            // 1..=2 rows per class: every per-class share rounds to zero.
            let rows = classes * rng.gen_range(1..3usize);
            let d = toy(rows.max(2), classes);
            let seed = rng.next_u64();
            let (train, test) = train_test_split(&d, 0.34, seed);
            assert!(test.n_rows() >= 1, "{rows} rows / {classes} classes");
            assert!(train.n_rows() >= 1);
            assert_eq!(train.n_rows() + test.n_rows(), d.n_rows());
        }
    }

    #[test]
    fn split_invariants_hold_over_seeded_sweep() {
        let mut rng = SplitMix64::seed_from_u64(0x51ee7);
        for _ in 0..48 {
            let rows = rng.gen_range(4..400usize);
            let classes = rng.gen_range(2..6usize).min(rows);
            let frac = rng.gen_range(0.1..0.5f64);
            let d = toy(rows, classes);
            let seed = rng.next_u64();
            let (train, test) = train_test_split(&d, frac, seed);
            // Partition, non-empty both sides.
            assert_eq!(train.n_rows() + test.n_rows(), rows);
            assert!(!test.labels.is_empty() && !train.labels.is_empty());
            // Stratification: every class keeps its floor share in test.
            for (c, &n_c) in d.class_counts().iter().enumerate() {
                let expect = ((n_c as f64 * frac) as usize).min(n_c.saturating_sub(1));
                let got = test.class_counts()[c];
                assert!(
                    got == expect || (expect == 0 && got <= 1),
                    "class {c}: expected {expect} test rows, got {got}"
                );
            }
        }
    }

    #[test]
    fn kfold_sizes_differ_by_at_most_one() {
        // Fold 0 used to collect every class's remainder rows: with c
        // classes, fold 0 could exceed the smallest fold by c rows.
        let mut rng = SplitMix64::seed_from_u64(0xf01d5);
        for _ in 0..48 {
            let classes = rng.gen_range(2..7usize);
            let rows = rng.gen_range(12..300usize).max(classes);
            let k = rng.gen_range(2..6usize).min(rows);
            let d = toy(rows, classes);
            let folds = stratified_kfold(&d, k, rng.next_u64());
            let sizes: Vec<usize> = folds.iter().map(|(_, v)| v.n_rows()).collect();
            let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "fold sizes {sizes:?}");
            assert_eq!(sizes.iter().sum::<usize>(), rows);
        }
    }

    #[test]
    fn kfold_remains_stratified() {
        let d = toy(200, 4);
        let total = d.class_counts();
        for (_, val) in stratified_kfold(&d, 5, 9) {
            for (c, &n_c) in val.class_counts().iter().enumerate() {
                let expect = total[c] as f64 / 5.0;
                assert!(
                    (n_c as f64 - expect).abs() <= 1.0,
                    "class {c}: {n_c} vs expected ~{expect:.1}"
                );
            }
        }
    }

    #[test]
    fn kfold_rotation_depends_on_seed_but_stays_deterministic() {
        let d = toy(60, 3);
        let a = stratified_kfold(&d, 4, 7);
        let b = stratified_kfold(&d, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn split_preserves_class_space() {
        let mut rng = SplitMix64::seed_from_u64(0x517);
        for _ in 0..16 {
            let rows = rng.gen_range(20..200usize);
            let classes = rng.gen_range(2..5usize);
            let seed = rng.gen_range(0..100u64);
            let d = toy(rows, classes);
            let (train, test) = train_test_split(&d, 0.34, seed);
            assert_eq!(train.n_classes, classes);
            assert_eq!(test.n_classes, classes);
            assert_eq!(train.n_rows() + test.n_rows(), rows);
            // Train keeps at least one row of every class.
            assert!(train.class_counts().iter().all(|&c| c > 0));
        }
    }
}
