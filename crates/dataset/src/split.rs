//! Stratified splitting utilities.
//!
//! The paper splits each dataset 66/34 into train/test (§3.1); systems then
//! carve their own validation sets out of the training part (hold-out for
//! most, 5-fold CV for TPOT, resampled hold-out for CAML).

use crate::table::Dataset;
use green_automl_energy::rng::SplitMix64;

/// Stratified train/test split: each class contributes `test_frac` of its
/// rows to the test set (rounded down, at least one row stays in train).
///
/// # Panics
/// Panics if `test_frac` is not in `(0, 1)` or the dataset is empty.
pub fn train_test_split(ds: &Dataset, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_frac > 0.0 && test_frac < 1.0,
        "test_frac must lie in (0, 1)"
    );
    assert!(ds.n_rows() >= 2, "cannot split fewer than two rows");
    let per_class = rows_by_class(ds, seed);
    let mut train_rows = Vec::with_capacity(ds.n_rows());
    let mut test_rows = Vec::with_capacity(ds.n_rows());
    for rows in per_class {
        let n_test = ((rows.len() as f64 * test_frac) as usize).min(rows.len().saturating_sub(1));
        test_rows.extend_from_slice(&rows[..n_test]);
        train_rows.extend_from_slice(&rows[n_test..]);
    }
    // Re-shuffle so downstream `head()` fidelity subsets are unbiased.
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed);
    shuffle(&mut rng, &mut train_rows);
    shuffle(&mut rng, &mut test_rows);
    (ds.take_rows(&train_rows), ds.take_rows(&test_rows))
}

/// Stratified k-fold assignment: returns `k` (train, validation) pairs.
///
/// # Panics
/// Panics if `k < 2` or `k` exceeds the row count.
pub fn stratified_kfold(ds: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(k <= ds.n_rows(), "more folds than rows");
    let per_class = rows_by_class(ds, seed);
    // Round-robin rows of each class over folds.
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for rows in per_class {
        for (i, r) in rows.into_iter().enumerate() {
            folds[i % k].push(r);
        }
    }
    (0..k)
        .map(|i| {
            let val = &folds[i];
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            (ds.take_rows(&train), ds.take_rows(val))
        })
        .collect()
}

/// Rows grouped by class, each group shuffled with the given seed.
fn rows_by_class(ds: &Dataset, seed: u64) -> Vec<Vec<usize>> {
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); ds.n_classes];
    for (i, &l) in ds.labels.iter().enumerate() {
        per_class[l as usize].push(i);
    }
    let mut rng = SplitMix64::seed_from_u64(seed);
    for rows in &mut per_class {
        shuffle(&mut rng, rows);
    }
    per_class
}

fn shuffle<T>(rng: &mut SplitMix64, xs: &mut [T]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TaskSpec;
    use green_automl_energy::rng::SplitMix64;

    fn toy(rows: usize, classes: usize) -> Dataset {
        TaskSpec::new("toy", rows, 4, classes).generate()
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy(100, 2);
        let (train, test) = train_test_split(&d, 0.34, 0);
        assert_eq!(train.n_rows() + test.n_rows(), 100);
        assert!(
            (30..=37).contains(&test.n_rows()),
            "test size {}",
            test.n_rows()
        );
    }

    #[test]
    fn split_is_stratified() {
        let mut spec = TaskSpec::new("imb", 1000, 4, 2);
        spec.imbalance = 0.6;
        let d = spec.generate();
        let (train, test) = train_test_split(&d, 0.34, 1);
        let full_frac = d.class_counts()[1] as f64 / d.n_rows() as f64;
        let train_frac = train.class_counts()[1] as f64 / train.n_rows() as f64;
        let test_frac = test.class_counts()[1] as f64 / test.n_rows() as f64;
        assert!((train_frac - full_frac).abs() < 0.02);
        assert!((test_frac - full_frac).abs() < 0.02);
    }

    #[test]
    fn split_is_deterministic() {
        let d = toy(60, 3);
        let (a1, b1) = train_test_split(&d, 0.3, 42);
        let (a2, b2) = train_test_split(&d, 0.3, 42);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn every_class_reaches_train() {
        let d = toy(40, 7);
        let (train, _) = train_test_split(&d, 0.34, 0);
        assert!(train.class_counts().iter().all(|&c| c > 0));
    }

    #[test]
    fn kfold_covers_every_row_once_as_validation() {
        let d = toy(50, 2);
        let folds = stratified_kfold(&d, 5, 0);
        assert_eq!(folds.len(), 5);
        let total_val: usize = folds.iter().map(|(_, v)| v.n_rows()).sum();
        assert_eq!(total_val, 50);
        for (train, val) in &folds {
            assert_eq!(train.n_rows() + val.n_rows(), 50);
        }
    }

    #[test]
    #[should_panic(expected = "test_frac")]
    fn bad_fraction_panics() {
        let d = toy(10, 2);
        let _ = train_test_split(&d, 1.0, 0);
    }

    #[test]
    fn split_preserves_class_space() {
        let mut rng = SplitMix64::seed_from_u64(0x517);
        for _ in 0..16 {
            let rows = rng.gen_range(20..200usize);
            let classes = rng.gen_range(2..5usize);
            let seed = rng.gen_range(0..100u64);
            let d = toy(rows, classes);
            let (train, test) = train_test_split(&d, 0.34, seed);
            assert_eq!(train.n_classes, classes);
            assert_eq!(test.n_classes, classes);
            assert_eq!(train.n_rows() + test.n_rows(), rows);
            // Train keeps at least one row of every class.
            assert!(train.class_counts().iter().all(|&c| c > 0));
        }
    }
}
