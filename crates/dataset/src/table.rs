//! Column-oriented tabular datasets with numeric and categorical features.

/// Sentinel for a missing categorical value.
pub const CAT_MISSING: u32 = u32::MAX;

/// The values of one feature column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Continuous values; missing entries are `NaN`.
    Numeric(Vec<f64>),
    /// Category codes in `0..cardinality`; missing entries are
    /// [`CAT_MISSING`].
    Categorical {
        /// Per-row category codes.
        codes: Vec<u32>,
        /// Number of distinct categories (excluding missing).
        cardinality: u32,
    },
}

impl ColumnData {
    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Categorical { codes, .. } => codes.len(),
        }
    }

    /// `true` if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if the row at `i` is missing.
    pub fn is_missing(&self, i: usize) -> bool {
        match self {
            ColumnData::Numeric(v) => v[i].is_nan(),
            ColumnData::Categorical { codes, .. } => codes[i] == CAT_MISSING,
        }
    }

    /// Select the given rows into a new column (rows may repeat).
    #[must_use]
    pub fn take(&self, rows: &[usize]) -> ColumnData {
        match self {
            ColumnData::Numeric(v) => ColumnData::Numeric(rows.iter().map(|&r| v[r]).collect()),
            ColumnData::Categorical { codes, cardinality } => ColumnData::Categorical {
                codes: rows.iter().map(|&r| codes[r]).collect(),
                cardinality: *cardinality,
            },
        }
    }
}

/// A named feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Feature name.
    pub name: String,
    /// Stored values.
    pub data: ColumnData,
}

impl Column {
    /// A numeric column.
    pub fn numeric(name: impl Into<String>, values: Vec<f64>) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Numeric(values),
        }
    }

    /// A categorical column.
    pub fn categorical(name: impl Into<String>, codes: Vec<u32>, cardinality: u32) -> Column {
        Column {
            name: name.into(),
            data: ColumnData::Categorical { codes, cardinality },
        }
    }

    /// `true` if the column is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self.data, ColumnData::Categorical { .. })
    }
}

/// A labelled tabular classification dataset.
///
/// Storage is column-oriented. Labels are class codes in `0..n_classes`.
/// `row_scale` and `feat_scale` are the logical-size charging factors
/// (nominal size ÷ materialised size along each axis); both are `1.0` for
/// datasets materialised at full size. The ML substrate multiplies charged
/// operations by [`Dataset::scale`], their product.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (matches the paper's Table 2 where applicable).
    pub name: String,
    /// Feature columns, all of equal length.
    pub columns: Vec<Column>,
    /// Class labels, one per row.
    pub labels: Vec<u32>,
    /// Number of classes.
    pub n_classes: usize,
    /// Nominal rows ÷ materialised rows (≥ 1).
    pub row_scale: f64,
    /// Nominal features ÷ materialised features (≥ 1).
    pub feat_scale: f64,
}

impl Dataset {
    /// Build a dataset, validating shape invariants.
    ///
    /// # Panics
    /// Panics if columns have unequal lengths, labels mismatch the row
    /// count, a label is out of range, or `scale < 1`.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<Column>,
        labels: Vec<u32>,
        n_classes: usize,
    ) -> Dataset {
        let ds = Dataset {
            name: name.into(),
            columns,
            labels,
            n_classes,
            row_scale: 1.0,
            feat_scale: 1.0,
        };
        ds.validate();
        ds
    }

    /// Set the logical-size charging factors.
    ///
    /// # Panics
    /// Panics if either factor is `< 1` or not finite.
    #[must_use]
    pub fn with_scales(mut self, row_scale: f64, feat_scale: f64) -> Dataset {
        assert!(
            row_scale.is_finite() && row_scale >= 1.0,
            "row_scale must be >= 1"
        );
        assert!(
            feat_scale.is_finite() && feat_scale >= 1.0,
            "feat_scale must be >= 1"
        );
        self.row_scale = row_scale;
        self.feat_scale = feat_scale;
        self
    }

    /// Combined logical-size charging factor (`row_scale * feat_scale`).
    #[inline]
    pub fn scale(&self) -> f64 {
        self.row_scale * self.feat_scale
    }

    /// Nominal row count implied by the charging factor.
    #[inline]
    pub fn nominal_rows(&self) -> f64 {
        self.n_rows() as f64 * self.row_scale
    }

    /// Nominal feature count implied by the charging factor.
    #[inline]
    pub fn nominal_features(&self) -> f64 {
        self.n_features() as f64 * self.feat_scale
    }

    fn validate(&self) {
        let n = self.labels.len();
        for c in &self.columns {
            assert_eq!(
                c.data.len(),
                n,
                "column '{}' has {} rows, labels have {}",
                c.name,
                c.data.len(),
                n
            );
        }
        assert!(self.n_classes >= 2, "need at least two classes");
        assert!(
            self.labels.iter().all(|&l| (l as usize) < self.n_classes),
            "label out of range"
        );
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Number of categorical feature columns.
    pub fn n_categorical(&self) -> usize {
        self.columns.iter().filter(|c| c.is_categorical()).count()
    }

    /// Per-class instance counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Select the given rows into a new dataset (rows may repeat — this is
    /// also the bootstrap-sampling primitive used by bagging).
    #[must_use]
    pub fn take_rows(&self, rows: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    data: c.data.take(rows),
                })
                .collect(),
            labels: rows.iter().map(|&r| self.labels[r]).collect(),
            n_classes: self.n_classes,
            row_scale: self.row_scale,
            feat_scale: self.feat_scale,
        }
    }

    /// The first `n` rows (used by incremental-training fidelity schedules).
    #[must_use]
    pub fn head(&self, n: usize) -> Dataset {
        let n = n.min(self.n_rows());
        let rows: Vec<usize> = (0..n).collect();
        self.take_rows(&rows)
    }

    /// Approximate in-memory size of the materialised data, bytes.
    pub fn approx_bytes(&self) -> f64 {
        let per_row: f64 = self
            .columns
            .iter()
            .map(|c| match c.data {
                ColumnData::Numeric(_) => 8.0,
                ColumnData::Categorical { .. } => 4.0,
            })
            .sum();
        per_row * self.n_rows() as f64 + 4.0 * self.n_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                Column::numeric("x", vec![1.0, 2.0, f64::NAN, 4.0]),
                Column::categorical("c", vec![0, 1, CAT_MISSING, 0], 2),
            ],
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn shape_accessors() {
        let d = toy();
        assert_eq!(d.n_rows(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_categorical(), 1);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.scale(), 1.0);
    }

    #[test]
    fn missingness_detection() {
        let d = toy();
        assert!(!d.columns[0].data.is_missing(0));
        assert!(d.columns[0].data.is_missing(2));
        assert!(d.columns[1].data.is_missing(2));
    }

    #[test]
    fn take_rows_repeats_and_reorders() {
        let d = toy();
        let s = d.take_rows(&[3, 3, 0]);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.labels, vec![1, 1, 0]);
        match &s.columns[0].data {
            ColumnData::Numeric(v) => assert_eq!(&v[..], &[4.0, 4.0, 1.0]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn head_truncates() {
        let d = toy();
        assert_eq!(d.head(2).n_rows(), 2);
        assert_eq!(d.head(100).n_rows(), 4);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn ragged_columns_panic() {
        let _ = Dataset::new("bad", vec![Column::numeric("x", vec![1.0])], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_out_of_range_panics() {
        let _ = Dataset::new("bad", vec![Column::numeric("x", vec![1.0])], vec![5], 2);
    }

    #[test]
    fn scale_roundtrip() {
        let d = toy().with_scales(12.5, 2.0);
        assert_eq!(d.scale(), 25.0);
        assert_eq!(d.nominal_rows(), 4.0 * 12.5);
        assert_eq!(d.nominal_features(), 2.0 * 2.0);
        // take_rows preserves the charging factors.
        assert_eq!(d.take_rows(&[0]).scale(), 25.0);
    }

    #[test]
    #[should_panic(expected = "row_scale")]
    fn sub_unit_scale_panics() {
        let _ = toy().with_scales(0.5, 1.0);
    }
}
