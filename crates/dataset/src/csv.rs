//! Minimal CSV import/export for [`Dataset`]s.
//!
//! Kept deliberately simple (no quoting of embedded commas/newlines in
//! values — feature names and categories are sanitised instead): this exists
//! so the runnable examples can round-trip data and users can feed their own
//! numeric/categorical tables into the benchmark.

use crate::table::{Column, ColumnData, Dataset, CAT_MISSING};
use std::fmt::Write as _;

/// Serialise a dataset to CSV. The last column is the class label; missing
/// values serialise as empty cells; categorical codes serialise as `c<code>`.
pub fn to_csv(ds: &Dataset) -> String {
    let mut out = String::new();
    for c in &ds.columns {
        let name = c.name.replace([',', '\n', '\r'], "_");
        let _ = write!(out, "{name},");
    }
    out.push_str("label\n");
    for i in 0..ds.n_rows() {
        for c in &ds.columns {
            match &c.data {
                ColumnData::Numeric(v) => {
                    if !v[i].is_nan() {
                        let _ = write!(out, "{}", v[i]);
                    }
                }
                ColumnData::Categorical { codes, .. } => {
                    if codes[i] != CAT_MISSING {
                        let _ = write!(out, "c{}", codes[i]);
                    }
                }
            }
            out.push(',');
        }
        let _ = writeln!(out, "{}", ds.labels[i]);
    }
    out
}

/// Errors from [`from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input has no data rows.
    Empty,
    /// A row has a different number of cells than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
    },
    /// A label cell failed to parse as a class index.
    BadLabel {
        /// 1-based line number of the offending row.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "CSV contains no data rows"),
            CsvError::RaggedRow { line } => write!(f, "row at line {line} has wrong cell count"),
            CsvError::BadLabel { line } => write!(f, "unparsable label at line {line}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parse a CSV produced by [`to_csv`] (or hand-written in the same dialect).
///
/// Columns whose non-empty cells all parse as numbers become numeric; other
/// columns become categorical with codes assigned in order of first
/// appearance. Empty cells are missing values. The last column must be an
/// integer class label.
pub fn from_csv(name: impl Into<String>, text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(CsvError::Empty)?;
    let names: Vec<&str> = header.split(',').collect();
    if names.len() < 2 {
        return Err(CsvError::Empty);
    }
    let n_feats = names.len() - 1;

    let mut cells: Vec<Vec<String>> = vec![Vec::new(); n_feats];
    let mut labels_raw: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in lines {
        let row: Vec<&str> = line.split(',').collect();
        if row.len() != names.len() {
            return Err(CsvError::RaggedRow { line: lineno + 1 });
        }
        for (j, cell) in row[..n_feats].iter().enumerate() {
            cells[j].push(cell.trim().to_string());
        }
        labels_raw.push((lineno + 1, row[n_feats].trim().to_string()));
    }
    if labels_raw.is_empty() {
        return Err(CsvError::Empty);
    }

    let mut labels = Vec::with_capacity(labels_raw.len());
    for (line, raw) in labels_raw {
        let l: u32 = raw.parse().map_err(|_| CsvError::BadLabel { line })?;
        labels.push(l);
    }
    let n_classes = (labels.iter().copied().max().unwrap_or(0) + 1).max(2) as usize;

    let columns: Vec<Column> = cells
        .into_iter()
        .enumerate()
        .map(|(j, col)| {
            let name = names[j].trim().to_string();
            let numeric: Option<Vec<f64>> = col
                .iter()
                .map(|c| {
                    if c.is_empty() {
                        Some(f64::NAN)
                    } else {
                        c.parse::<f64>().ok()
                    }
                })
                .collect();
            match numeric {
                Some(values) => Column::numeric(name, values),
                None => {
                    let mut seen: Vec<&str> = Vec::new();
                    let codes: Vec<u32> = col
                        .iter()
                        .map(|c| {
                            if c.is_empty() {
                                CAT_MISSING
                            } else {
                                match seen.iter().position(|s| s == c) {
                                    Some(p) => p as u32,
                                    None => {
                                        seen.push(c);
                                        (seen.len() - 1) as u32
                                    }
                                }
                            }
                        })
                        .collect();
                    Column::categorical(name, codes, seen.len().max(1) as u32)
                }
            }
        })
        .collect();

    Ok(Dataset::new(name, columns, labels, n_classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TaskSpec;

    #[test]
    fn roundtrip_preserves_shape_and_labels() {
        let mut spec = TaskSpec::new("rt", 50, 6, 3);
        spec.categorical_frac = 0.5;
        spec.missing_frac = 0.1;
        let d = spec.generate();
        let parsed = from_csv("rt", &to_csv(&d)).unwrap();
        assert_eq!(parsed.n_rows(), d.n_rows());
        assert_eq!(parsed.n_features(), d.n_features());
        assert_eq!(parsed.labels, d.labels);
        assert_eq!(parsed.n_categorical(), d.n_categorical());
        // Missingness survives the roundtrip.
        for i in 0..d.n_rows() {
            for (a, b) in d.columns.iter().zip(&parsed.columns) {
                assert_eq!(a.data.is_missing(i), b.data.is_missing(i));
            }
        }
    }

    #[test]
    fn hand_written_csv_parses() {
        let text = "age,city,label\n34,berlin,0\n28,hannover,1\n,berlin,1\n";
        let d = from_csv("people", text).unwrap();
        assert_eq!(d.n_rows(), 3);
        assert!(!d.columns[0].is_categorical());
        assert!(d.columns[1].is_categorical());
        assert!(d.columns[0].data.is_missing(2));
        assert_eq!(d.labels, vec![0, 1, 1]);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        assert_eq!(from_csv("x", ""), Err(CsvError::Empty));
        assert_eq!(from_csv("x", "a,label\n"), Err(CsvError::Empty));
        assert_eq!(
            from_csv("x", "a,label\n1,0\n1,2,3\n"),
            Err(CsvError::RaggedRow { line: 3 })
        );
        assert_eq!(
            from_csv("x", "a,label\n1,zero\n"),
            Err(CsvError::BadLabel { line: 2 })
        );
    }

    #[test]
    fn label_space_covers_max_label() {
        let d = from_csv("x", "a,label\n1,0\n2,4\n").unwrap();
        assert_eq!(d.n_classes, 5);
    }
}
