//! # green-automl-dataset
//!
//! Tabular datasets for the Green-AutoML benchmark.
//!
//! The paper evaluates on the 39 AMLB datasets (Gijsbers et al.) listed in
//! its Table 2, plus a pool of 124 binary OpenML classification datasets for
//! the development-stage tuning experiments (§3.7). This environment has no
//! OpenML access, so this crate provides:
//!
//! * [`table::Dataset`] — a column-oriented tabular dataset with numeric and
//!   categorical features, missing values, and class labels;
//! * [`synth`] — a `make_classification`-style synthetic task generator with
//!   controllable difficulty (informative/redundant/noise features, per-class
//!   Gaussian clusters, categorical binning, label noise, class imbalance);
//! * [`registry`] — the exact Table 2 metadata (names, OpenML ids, instance/
//!   feature/class counts) backing synthetic materialisations, and a
//!   generated 124-dataset binary pool;
//! * [`split`] — stratified train/test splits and k-fold cross-validation;
//! * [`meta`] — meta-features used for warm starting (ASKL) and for the
//!   representative-dataset clustering of §2.5;
//! * [`csv`] — plain CSV import/export for the runnable examples.
//!
//! ## Logical-size charging
//!
//! Large datasets (covertype has 581 012 rows) are *materialised* at a
//! reduced size but remember their nominal scale in [`table::Dataset::scale`].
//! The ML substrate multiplies charged operations by this factor so that
//! energy reflects the paper's data scales while experiments stay fast.

pub mod csv;
pub mod meta;
pub mod registry;
pub mod split;
pub mod synth;
pub mod table;

pub use meta::MetaFeatures;
pub use registry::{amlb39, dev_binary_pool, DatasetMeta, MaterializeOptions};
pub use split::{stratified_kfold, train_test_split};
pub use synth::TaskSpec;
pub use table::{Column, ColumnData, Dataset, CAT_MISSING};
