//! Typed system identifiers.
//!
//! The benchmark used to pass systems around as `&'static str` display
//! names — in `FaultState::new`, grid points, cell failures, serving
//! tables — which made typos silent and cross-layer joins stringly.
//! [`SystemId`] replaces that: one `Copy` enum with a stable ordinal
//! (paper order), `Display` producing exactly the names the paper's
//! figures use, and `FromStr` accepting them back (checkpoint replay).
//!
//! Test doubles and downstream experiments can still exist outside the
//! paper's roster via [`SystemId::Custom`], which carries its own display
//! name and sorts after every known system.

/// Identity of an AutoML system (or baseline) in the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// TabPFN — the budget-free pre-trained transformer.
    TabPfn,
    /// AutoGluon with the paper's `best_quality` preset.
    AutoGluon,
    /// AutoGluon with the faster-inference refit preset (Fig. 6).
    AutoGluonRefit,
    /// Auto-sklearn 1 (vanilla, meta-learning warm start).
    AutoSklearn1,
    /// Auto-sklearn 2 (PoSH: portfolio + successive halving).
    AutoSklearn2,
    /// CAML — the constraint-aware AutoML system.
    Caml,
    /// TPOT — genetic-programming pipeline search.
    Tpot,
    /// FLAML — cost-frugal hyperparameter search.
    Flaml,
    /// The random-search baseline.
    RandomSearch,
    /// The grid-search baseline.
    GridSearch,
    /// A system outside the paper's roster (test doubles, downstream
    /// extensions). Sorts after every known system.
    Custom(&'static str),
}

impl SystemId {
    /// The seven benchmarked systems plus the refit preset and the two
    /// baselines, in stable (paper) order.
    pub const ALL: [SystemId; 10] = [
        SystemId::TabPfn,
        SystemId::AutoGluon,
        SystemId::AutoGluonRefit,
        SystemId::AutoSklearn1,
        SystemId::AutoSklearn2,
        SystemId::Caml,
        SystemId::Tpot,
        SystemId::Flaml,
        SystemId::RandomSearch,
        SystemId::GridSearch,
    ];

    /// The display name used in the paper's figures (and everywhere else).
    pub fn as_str(&self) -> &'static str {
        match self {
            SystemId::TabPfn => "TabPFN",
            SystemId::AutoGluon => "AutoGluon",
            SystemId::AutoGluonRefit => "AutoGluon(refit)",
            SystemId::AutoSklearn1 => "AutoSklearn1",
            SystemId::AutoSklearn2 => "AutoSklearn2",
            SystemId::Caml => "CAML",
            SystemId::Tpot => "TPOT",
            SystemId::Flaml => "FLAML",
            SystemId::RandomSearch => "RandomSearch",
            SystemId::GridSearch => "GridSearch",
            SystemId::Custom(name) => name,
        }
    }

    /// Stable ordinal: position in [`SystemId::ALL`] for known systems,
    /// `u8::MAX` for [`SystemId::Custom`].
    pub fn ordinal(&self) -> u8 {
        SystemId::ALL
            .iter()
            .position(|s| s == self)
            .map(|i| i as u8)
            .unwrap_or(u8::MAX)
    }

    /// 64-bit FNV-1a of the display name — a stable key for deriving
    /// per-system seeds (trace ids) that survives enum reordering.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.as_str().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Resolve a `'static` display name: a known variant when the name
    /// matches one, [`SystemId::Custom`] otherwise. This is how trait
    /// objects that only override `name()` acquire an id.
    pub fn from_name(name: &'static str) -> SystemId {
        name.parse().unwrap_or(SystemId::Custom(name))
    }
}

impl std::fmt::Display for SystemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A string did not name a known system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSystemIdError(
    /// The offending input.
    pub String,
);

impl std::fmt::Display for ParseSystemIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown system name: {:?}", self.0)
    }
}

impl std::error::Error for ParseSystemIdError {}

impl std::str::FromStr for SystemId {
    type Err = ParseSystemIdError;

    fn from_str(s: &str) -> Result<SystemId, ParseSystemIdError> {
        SystemId::ALL
            .iter()
            .copied()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| ParseSystemIdError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_fromstr_round_trip() {
        for id in SystemId::ALL {
            let parsed: SystemId = id.to_string().parse().expect("known name parses");
            assert_eq!(parsed, id);
        }
        assert!("NoSuchSystem".parse::<SystemId>().is_err());
        assert!("NoSuchSystem"
            .parse::<SystemId>()
            .unwrap_err()
            .to_string()
            .contains("NoSuchSystem"));
    }

    #[test]
    fn ordinals_are_stable_and_ordered() {
        for (i, id) in SystemId::ALL.iter().enumerate() {
            assert_eq!(id.ordinal() as usize, i);
        }
        assert_eq!(SystemId::Custom("X").ordinal(), u8::MAX);
        // Derived Ord follows declaration order; Custom sorts last.
        assert!(SystemId::TabPfn < SystemId::Flaml);
        assert!(SystemId::GridSearch < SystemId::Custom("AAA"));
    }

    #[test]
    fn from_name_resolves_known_names_and_wraps_unknown_ones() {
        assert_eq!(SystemId::from_name("FLAML"), SystemId::Flaml);
        assert_eq!(
            SystemId::from_name("AutoGluon(refit)"),
            SystemId::AutoGluonRefit
        );
        assert_eq!(
            SystemId::from_name("Explosive"),
            SystemId::Custom("Explosive")
        );
        assert_eq!(SystemId::Custom("Explosive").to_string(), "Explosive");
    }
}
