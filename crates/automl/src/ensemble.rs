//! Ensembling machinery: Caruana ensemble selection (used by AutoSklearn
//! and AutoGluon), weighted flat ensembles, and AutoGluon's bagged +
//! stacked architecture.

use green_automl_dataset::Dataset;
use green_automl_energy::{CostTracker, OpCounts, ParallelProfile};
use green_automl_ml::matrix::encode;
use green_automl_ml::metrics::balanced_accuracy;
use green_automl_ml::models::argmax_rows;
use green_automl_ml::preprocess::FittedPreproc;
use green_automl_ml::{FittedModel, FittedPipeline, Matrix};

/// Caruana et al. (2004) greedy ensemble selection *with replacement*:
/// repeatedly add the candidate whose inclusion maximises the validation
/// balanced accuracy of the averaged probabilities. Returns one weight per
/// candidate (weights sum to 1; zero-weight candidates are dropped by the
/// ensemble constructors).
///
/// This step runs on the validation predictions of every evaluated model —
/// for large validation sets it "requires significant time and therefore
/// energy" (paper §3.2, the reason ASKL overshoots its budget) — so it
/// charges `tracker` accordingly.
pub fn caruana_selection(
    candidates: &[Matrix],
    labels: &[u32],
    n_classes: usize,
    iters: usize,
    tracker: &mut CostTracker,
) -> Vec<f64> {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let n_val = labels.len();
    assert!(
        candidates
            .iter()
            .all(|m| m.rows() == n_val && m.cols() == n_classes),
        "candidate shape mismatch"
    );
    let mut counts = vec![0usize; candidates.len()];
    let mut sum = Matrix::zeros(n_val, n_classes);
    let mut total = 0usize;
    for _ in 0..iters.max(1) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (ci, cand) in candidates.iter().enumerate() {
            // Score of (sum + cand) / (total + 1).
            let mut pred = Vec::with_capacity(n_val);
            for r in 0..n_val {
                let row_sum = sum.row(r);
                let row_c = cand.row(r);
                let mut arg = 0usize;
                let mut best_v = f64::NEG_INFINITY;
                for k in 0..n_classes {
                    let v = row_sum[k] + row_c[k];
                    if v > best_v {
                        best_v = v;
                        arg = k;
                    }
                }
                pred.push(arg as u32);
            }
            let score = balanced_accuracy(labels, &pred, n_classes);
            if score > best.1 {
                best = (ci, score);
            }
        }
        counts[best.0] += 1;
        total += 1;
        for r in 0..n_val {
            let c = candidates[best.0].row(r).to_vec();
            let dst = sum.row_mut(r);
            for (d, s) in dst.iter_mut().zip(c) {
                *d += s;
            }
        }
    }
    tracker.charge(
        OpCounts::scalar(
            (iters * candidates.len() * n_val * n_classes) as f64
                * candidates.first().map_or(1.0, |m| m.row_scale),
        ),
        ParallelProfile::model_training(),
    );
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// A weighted flat ensemble of fitted pipelines (AutoSklearn's deployment
/// artefact).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedEnsemble {
    members: Vec<(FittedPipeline, f64)>,
    n_classes: usize,
}

impl WeightedEnsemble {
    /// Build from pipelines and Caruana weights, dropping zero-weight
    /// members.
    ///
    /// # Panics
    /// Panics if lengths mismatch or every weight is zero.
    pub fn new(pipelines: Vec<FittedPipeline>, weights: &[f64], n_classes: usize) -> Self {
        assert_eq!(pipelines.len(), weights.len(), "weight/pipeline mismatch");
        let members: Vec<(FittedPipeline, f64)> = pipelines
            .into_iter()
            .zip(weights)
            .filter(|(_, &w)| w > 0.0)
            .map(|(p, &w)| (p, w))
            .collect();
        assert!(!members.is_empty(), "ensemble needs a non-zero weight");
        WeightedEnsemble { members, n_classes }
    }

    /// Weighted average of member probabilities.
    pub fn predict_proba(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        self.mix_members(ds, tracker, false)
    }

    /// Weighted average with batch-amortised dispatch overhead: every
    /// member still answers every row, but each pays its framework
    /// dispatch once per batch instead of once per row (see
    /// [`FittedPipeline::predict_proba_batch`]).
    pub fn predict_proba_batch(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        self.mix_members(ds, tracker, true)
    }

    fn mix_members(&self, ds: &Dataset, tracker: &mut CostTracker, batched: bool) -> Matrix {
        let mut out = Matrix::zeros(ds.n_rows(), self.n_classes);
        let wsum: f64 = self.members.iter().map(|(_, w)| w).sum();
        for (p, w) in &self.members {
            let proba = if batched {
                p.predict_proba_batch(ds, tracker)
            } else {
                p.predict_proba(ds, tracker)
            };
            for r in 0..out.rows() {
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(proba.row(r)) {
                    *d += w / wsum * s;
                }
            }
        }
        out
    }

    /// Hard labels (argmax of the weighted average).
    pub fn predict(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        argmax_rows(&self.predict_proba(ds, tracker))
    }

    /// Sum of members' per-row costs — every member answers every query.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        self.members
            .iter()
            .map(|(p, _)| p.inference_ops_per_row())
            .sum::<OpCounts>()
            + OpCounts::scalar((self.members.len() * self.n_classes) as f64)
    }

    /// Distinct member pipelines.
    pub fn n_models(&self) -> usize {
        self.members.len()
    }

    /// Total parameter count across members (memory-footprint proxy).
    pub fn n_params(&self) -> usize {
        self.members.iter().map(|(p, _)| p.n_params()).sum()
    }
}

/// A k-fold-bagged model: AutoGluon trains one model per fold and averages
/// them at inference; "refit" collapses the bag into one model trained on
/// all data (the paper's Fig. 6 inference optimisation).
#[derive(Debug, Clone, PartialEq)]
pub struct BaggedModel {
    /// Fold models (length 1 after a refit).
    pub folds: Vec<FittedModel>,
    n_classes: usize,
}

impl BaggedModel {
    /// Wrap fold models.
    ///
    /// # Panics
    /// Panics if `folds` is empty.
    pub fn new(folds: Vec<FittedModel>, n_classes: usize) -> BaggedModel {
        assert!(!folds.is_empty(), "a bag needs at least one fold model");
        BaggedModel { folds, n_classes }
    }

    /// Average of the fold models' probabilities. Every fold model is a
    /// separate framework predict call, so each charges the per-prediction
    /// dispatch overhead — the mechanism that makes large bagged stacks an
    /// order of magnitude more expensive at inference (Observation O1).
    pub fn predict_proba(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        tracker.charge(
            OpCounts::scalar(
                green_automl_ml::pipeline::PREDICT_OVERHEAD_FLOPS
                    * (x.rows() * self.folds.len()) as f64
                    * x.row_scale,
            ),
            ParallelProfile::batch_inference(),
        );
        self.fold_average(x, tracker)
    }

    /// Average of the fold models' probabilities with batch-amortised
    /// dispatch: one framework predict call per fold *per batch* instead of
    /// per row. The fold-model math (and hence predictions) is unchanged.
    pub fn predict_proba_batch(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        tracker.charge(
            OpCounts::scalar(
                green_automl_ml::pipeline::PREDICT_OVERHEAD_FLOPS
                    * self.folds.len() as f64
                    * x.row_scale,
            ),
            ParallelProfile::batch_inference(),
        );
        self.fold_average(x, tracker)
    }

    fn fold_average(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for f in &self.folds {
            let p = f.predict_proba(x, tracker);
            for r in 0..out.rows() {
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(p.row(r)) {
                    *d += s;
                }
            }
        }
        let inv = 1.0 / self.folds.len() as f64;
        for v in out.as_mut_slice() {
            *v *= inv;
        }
        out
    }

    /// Sum of fold costs, including one framework dispatch per fold model.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        self.folds
            .iter()
            .map(FittedModel::inference_ops_per_row)
            .sum::<OpCounts>()
            + OpCounts::scalar(
                green_automl_ml::pipeline::PREDICT_OVERHEAD_FLOPS * self.folds.len() as f64,
            )
    }

    /// Total parameter count across fold models.
    pub fn n_params(&self) -> usize {
        self.folds.iter().map(FittedModel::n_params).sum()
    }
}

/// AutoGluon's deployment artefact: a preprocessing chain, a bagged first
/// layer, a bagged second (stacking) layer that sees the original features
/// *plus* every layer-1 probability, and Caruana weights over the layer-2
/// outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedEnsemble {
    /// Fitted preprocessing chain applied to the encoded features.
    pub preprocs: Vec<FittedPreproc>,
    /// First (base) layer.
    pub layer1: Vec<BaggedModel>,
    /// Second (stacker) layer; may be empty under tiny budgets.
    pub layer2: Vec<BaggedModel>,
    /// Caruana weights over the final layer's outputs.
    pub weights: Vec<f64>,
    n_classes: usize,
    d_encoded: usize,
}

impl StackedEnsemble {
    /// Assemble a stacked ensemble.
    ///
    /// # Panics
    /// Panics if `weights` does not match the final layer's length
    /// (layer 2, or layer 1 when layer 2 is empty).
    pub fn new(
        preprocs: Vec<FittedPreproc>,
        layer1: Vec<BaggedModel>,
        layer2: Vec<BaggedModel>,
        weights: Vec<f64>,
        n_classes: usize,
        d_encoded: usize,
    ) -> StackedEnsemble {
        let final_len = if layer2.is_empty() {
            layer1.len()
        } else {
            layer2.len()
        };
        assert_eq!(weights.len(), final_len, "weights/final-layer mismatch");
        assert!(!layer1.is_empty(), "need at least one base model");
        StackedEnsemble {
            preprocs,
            layer1,
            layer2,
            weights,
            n_classes,
            d_encoded,
        }
    }

    /// Encode + preprocess a raw dataset into the layer-1 feature matrix.
    fn featurize(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        let mut x = encode(ds, tracker);
        for p in &self.preprocs {
            x = p.transform(&x, tracker);
        }
        x
    }

    /// Layer-1 probabilities appended to the feature matrix (the stacking
    /// augmentation).
    pub fn augment(&self, x: &Matrix, tracker: &mut CostTracker) -> Matrix {
        self.augment_impl(x, tracker, false)
    }

    fn augment_impl(&self, x: &Matrix, tracker: &mut CostTracker, batched: bool) -> Matrix {
        let extra = self.layer1.len() * self.n_classes;
        let mut out = Matrix::zeros(x.rows(), x.cols() + extra);
        out.row_scale = x.row_scale;
        out.feat_scale = x.feat_scale;
        for r in 0..x.rows() {
            out.row_mut(r)[..x.cols()].copy_from_slice(x.row(r));
        }
        for (mi, bag) in self.layer1.iter().enumerate() {
            let p = if batched {
                bag.predict_proba_batch(x, tracker)
            } else {
                bag.predict_proba(x, tracker)
            };
            for r in 0..x.rows() {
                let base = x.cols() + mi * self.n_classes;
                out.row_mut(r)[base..base + self.n_classes].copy_from_slice(p.row(r));
            }
        }
        out
    }

    /// Full stacked prediction.
    pub fn predict_proba(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        self.stacked_proba(ds, tracker, false)
    }

    /// Full stacked prediction with batch-amortised dispatch: every bag in
    /// both layers pays its framework overhead once per batch instead of
    /// once per row (see [`BaggedModel::predict_proba_batch`]).
    pub fn predict_proba_batch(&self, ds: &Dataset, tracker: &mut CostTracker) -> Matrix {
        self.stacked_proba(ds, tracker, true)
    }

    fn stacked_proba(&self, ds: &Dataset, tracker: &mut CostTracker, batched: bool) -> Matrix {
        let x = self.featurize(ds, tracker);
        let bag_proba = |b: &BaggedModel, x: &Matrix, tracker: &mut CostTracker| {
            if batched {
                b.predict_proba_batch(x, tracker)
            } else {
                b.predict_proba(x, tracker)
            }
        };
        let (outputs, weights): (Vec<Matrix>, &[f64]) = if self.layer2.is_empty() {
            (
                self.layer1
                    .iter()
                    .map(|b| bag_proba(b, &x, tracker))
                    .collect(),
                &self.weights,
            )
        } else {
            let aug = self.augment_impl(&x, tracker, batched);
            (
                self.layer2
                    .iter()
                    .map(|b| bag_proba(b, &aug, tracker))
                    .collect(),
                &self.weights,
            )
        };
        let wsum: f64 = weights.iter().sum::<f64>().max(1e-12);
        let mut out = Matrix::zeros(ds.n_rows(), self.n_classes);
        for (p, &w) in outputs.iter().zip(weights) {
            if w <= 0.0 {
                continue;
            }
            for r in 0..out.rows() {
                let dst = out.row_mut(r);
                for (d, s) in dst.iter_mut().zip(p.row(r)) {
                    *d += w / wsum * s;
                }
            }
        }
        out
    }

    /// Hard labels.
    pub fn predict(&self, ds: &Dataset, tracker: &mut CostTracker) -> Vec<u32> {
        argmax_rows(&self.predict_proba(ds, tracker))
    }

    /// Per-row cost: preprocessing + every layer-1 fold + every layer-2
    /// fold. Note layer 1 always runs (its outputs feed layer 2) — this is
    /// the ">= one order of magnitude" inference-energy overhead of
    /// Observation O1.
    pub fn inference_ops_per_row(&self) -> OpCounts {
        let mut ops = OpCounts::ZERO;
        let mut d = self.d_encoded;
        for p in &self.preprocs {
            ops += p.inference_ops_per_row(d);
            d = p.output_cols(d);
        }
        for b in &self.layer1 {
            ops += b.inference_ops_per_row();
        }
        for b in &self.layer2 {
            ops += b.inference_ops_per_row();
        }
        ops + OpCounts::scalar(((self.layer1.len() + self.layer2.len()) * self.n_classes) as f64)
    }

    /// Total fold models across both layers.
    pub fn n_models(&self) -> usize {
        self.layer1.iter().map(|b| b.folds.len()).sum::<usize>()
            + self.layer2.iter().map(|b| b.folds.len()).sum::<usize>()
    }

    /// Total parameter count across both layers (memory-footprint proxy).
    pub fn n_params(&self) -> usize {
        self.layer1.iter().map(BaggedModel::n_params).sum::<usize>()
            + self.layer2.iter().map(BaggedModel::n_params).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;
    use green_automl_ml::{ModelSpec, Pipeline};

    fn tracker() -> CostTracker {
        CostTracker::new(Device::xeon_gold_6132(), 1)
    }

    #[test]
    fn caruana_prefers_the_accurate_candidate() {
        let labels = vec![0u32, 0, 1, 1];
        // Candidate 0: perfect; candidate 1: always class 0.
        let perfect = Matrix::from_vec(vec![0.9, 0.1, 0.9, 0.1, 0.1, 0.9, 0.1, 0.9], 4, 2);
        let lazy = Matrix::from_vec([0.9, 0.1].repeat(4), 4, 2);
        let mut t = tracker();
        let w = caruana_selection(&[perfect, lazy], &labels, 2, 10, &mut t);
        assert!(w[0] > 0.8, "perfect candidate should dominate: {w:?}");
        assert!(t.measurement().energy.total_joules() > 0.0);
    }

    #[test]
    fn caruana_mixes_complementary_candidates() {
        let labels = vec![0u32, 1, 0, 1];
        // Candidate A is right on rows 0-1, candidate B on rows 2-3.
        let a = Matrix::from_vec(vec![0.9, 0.1, 0.1, 0.9, 0.4, 0.6, 0.6, 0.4], 4, 2);
        let b = Matrix::from_vec(vec![0.4, 0.6, 0.6, 0.4, 0.9, 0.1, 0.1, 0.9], 4, 2);
        let mut t = tracker();
        let w = caruana_selection(&[a, b], &labels, 2, 20, &mut t);
        assert!(w[0] > 0.1 && w[1] > 0.1, "both should contribute: {w:?}");
        assert!((w[0] + w[1] - 1.0).abs() < 1e-12);
    }

    fn fit_pipelines(n: usize) -> (Vec<FittedPipeline>, Dataset, Dataset) {
        let mut spec = TaskSpec::new("e", 240, 6, 2);
        spec.cluster_sep = 2.0;
        let ds = spec.generate();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let mut t = tracker();
        let pipes = (0..n)
            .map(|i| {
                Pipeline::new(vec![], ModelSpec::DecisionTree(Default::default()))
                    .fit(&train, &mut t, i as u64)
            })
            .collect();
        (pipes, train, test)
    }

    #[test]
    fn weighted_ensemble_predicts_and_charges_per_member() {
        let (pipes, _, test) = fit_pipelines(3);
        let ens = WeightedEnsemble::new(pipes, &[0.5, 0.5, 0.0], 2);
        assert_eq!(ens.n_models(), 2); // zero-weight member dropped
        let mut t1 = tracker();
        let _ = ens.predict(&test, &mut t1);
        // Two members must cost roughly twice one member.
        let (single, _, test2) = fit_pipelines(1);
        let solo = WeightedEnsemble::new(single, &[1.0], 2);
        let mut t2 = tracker();
        let _ = solo.predict(&test2, &mut t2);
        assert!(t1.now() > t2.now() * 1.5);
        assert!(ens.inference_ops_per_row().total() > solo.inference_ops_per_row().total() * 1.5);
    }

    #[test]
    #[should_panic(expected = "non-zero weight")]
    fn all_zero_weights_panic() {
        let (pipes, _, _) = fit_pipelines(1);
        let _ = WeightedEnsemble::new(pipes, &[0.0], 2);
    }

    #[test]
    fn stacked_ensemble_roundtrip() {
        use green_automl_ml::matrix::encode;
        use green_automl_ml::preprocess::PreprocSpec;
        let mut spec = TaskSpec::new("s", 300, 6, 2);
        spec.cluster_sep = 2.0;
        let ds = spec.generate();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let mut t = tracker();
        let x = encode(&train, &mut t);
        let imputer = PreprocSpec::MeanImputer.fit(&x, &train.labels, 2, &mut t);
        let x = imputer.transform(&x, &mut t);
        let mut rng_seed = 0u64;
        let mut bag = |x: &Matrix| {
            rng_seed += 1;
            BaggedModel::new(
                vec![
                    ModelSpec::DecisionTree(Default::default()).fit(
                        x,
                        &train.labels,
                        2,
                        &mut t,
                        rng_seed,
                    ),
                    ModelSpec::DecisionTree(Default::default()).fit(
                        x,
                        &train.labels,
                        2,
                        &mut t,
                        rng_seed + 100,
                    ),
                ],
                2,
            )
        };
        let l1 = vec![bag(&x), bag(&x)];
        // Build layer 2 on the augmented matrix.
        let partial = StackedEnsemble::new(
            vec![imputer.clone()],
            l1.clone(),
            vec![],
            vec![0.5, 0.5],
            2,
            x.cols(),
        );
        let aug = partial.augment(&x, &mut t);
        assert_eq!(aug.cols(), x.cols() + 2 * 2);
        let l2 = vec![BaggedModel::new(
            vec![ModelSpec::DecisionTree(Default::default()).fit(
                &aug,
                &train.labels,
                2,
                &mut t,
                9,
            )],
            2,
        )];
        let stacked = StackedEnsemble::new(vec![imputer], l1, l2, vec![1.0], 2, x.cols());
        assert_eq!(stacked.n_models(), 5);
        let mut ti = tracker();
        let pred = stacked.predict(&test, &mut ti);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.65, "stacked balanced accuracy {bal}");
        // Stacked inference must cost well above a single tree's.
        let mut ts = tracker();
        let x_test = encode(&test, &mut ts);
        let single_ops = stacked.layer1[0].folds[0].inference_ops_per_row().total();
        let _ = x_test;
        assert!(stacked.inference_ops_per_row().total() > single_ops * 4.0);
    }
}
