//! AutoGluon-Tabular 0.6.2 — no search: a predefined model portfolio,
//! k-fold bagging, two stacking layers, and Caruana weighting of the final
//! layer (paper §2.2 / Table 1).
//!
//! Budget behaviour (Table 7): AutoGluon *estimates* whether the next model
//! fits in the remaining time from the cost of the previous one; estimates
//! are optimistic and a minimum stack is always trained, so small budgets
//! overshoot ("almost twice as long as specified" at 10 s).
//!
//! The `good_quality_faster_inference_only_refit` preset (paper Fig. 6) is
//! modelled by [`AutoGluonQuality::FasterInferenceRefit`]: after ensemble
//! selection every bagged model collapses into one model refit on all
//! training data, cutting inference cost ~k-fold at a small accuracy cost.

use crate::ensemble::{caruana_selection, BaggedModel, StackedEnsemble};
use crate::id::SystemId;
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::Dataset;
use green_automl_energy::{CostTracker, SpanKind};
use green_automl_ml::evalcache::{self, kind, CachedValue};
use green_automl_ml::matrix::encode;
use green_automl_ml::models::ModelSpec;
use green_automl_ml::preprocess::PreprocSpec;
use green_automl_ml::{
    EvalScope, ForestParams, GbParams, KnnParams, LogisticParams, Matrix, MlpParams, TreeParams,
};

/// Quality preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AutoGluonQuality {
    /// `best_quality`: keep the full bagged stack at inference.
    #[default]
    Best,
    /// `good_quality_faster_inference_only_refit`: collapse each bag into a
    /// single refit model after selection.
    FasterInferenceRefit,
    /// Extension (paper §5: "distilling the large stacking models of
    /// AutoGluon with a DNN", Fakoor et al. 2020): train one MLP student on
    /// the stack's predictions and deploy only the student — the cheapest
    /// inference of the three presets.
    Distill,
}

/// The AutoGluon simulator.
#[derive(Debug, Clone, Default)]
pub struct AutoGluon {
    /// Inference/quality preset.
    pub quality: AutoGluonQuality,
}

/// Bagging folds (AutoGluon's default k-fold bagging).
const N_FOLDS: usize = 5;

/// The hand-picked layer-1 portfolio, cheap models first (AutoGluon trains
/// in a fixed order and stops when the budget estimate runs out).
fn layer1_portfolio() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Knn(KnnParams {
            k: 5,
            ..Default::default()
        }),
        ModelSpec::Knn(KnnParams {
            k: 13,
            distance_weighted: false,
            ..Default::default()
        }),
        ModelSpec::GradientBoosting(GbParams {
            n_rounds: 20,
            learning_rate: 0.12,
            max_depth: 4,
            subsample: 0.9,
        }),
        ModelSpec::RandomForest(ForestParams::default()),
        ModelSpec::ExtraTrees(ForestParams::default()),
        ModelSpec::GradientBoosting(GbParams {
            n_rounds: 40,
            learning_rate: 0.08,
            max_depth: 6,
            subsample: 0.85,
        }),
        ModelSpec::Logistic(LogisticParams::default()),
        ModelSpec::Mlp(MlpParams {
            hidden1: 32,
            epochs: 25,
            ..Default::default()
        }),
    ]
}

/// The layer-2 (stacker) portfolio.
fn layer2_portfolio() -> Vec<ModelSpec> {
    vec![
        ModelSpec::GradientBoosting(GbParams {
            n_rounds: 25,
            learning_rate: 0.1,
            max_depth: 4,
            subsample: 0.9,
        }),
        ModelSpec::RandomForest(ForestParams {
            n_trees: 32,
            tree: TreeParams {
                max_depth: 10,
                max_features_frac: 0.4,
                ..Default::default()
            },
            bootstrap: true,
        }),
        ModelSpec::Logistic(LogisticParams::default()),
    ]
}

/// Stratified fold indices at the row level (`fold[i]` ∈ `0..k`).
fn fold_assignment(labels: &[u32], n_classes: usize, k: usize) -> Vec<usize> {
    let mut per_class_counter = vec![0usize; n_classes];
    labels
        .iter()
        .map(|&l| {
            let f = per_class_counter[l as usize] % k;
            per_class_counter[l as usize] += 1;
            f
        })
        .collect()
}

/// Train a k-fold bag of `spec`, returning the bag and its out-of-fold
/// probability matrix.
///
/// One fold — model fit plus out-of-fold probabilities — is one memo unit
/// (the fold span stays outside it). `x_fp` identifies the matrix content
/// under the scope's training set.
#[allow(clippy::too_many_arguments)]
fn bag_with_oof(
    spec: &ModelSpec,
    x: &Matrix,
    x_fp: u64,
    y: &[u32],
    n_classes: usize,
    folds: &[usize],
    k: usize,
    tracker: &mut CostTracker,
    seed: u64,
    scope: Option<&EvalScope<'_>>,
) -> (BaggedModel, Matrix) {
    let mut oof = Matrix::zeros(x.rows(), n_classes);
    oof.row_scale = x.row_scale;
    let mut models = Vec::with_capacity(k);
    let model_fp = evalcache::fingerprint_model(spec);
    for fold in 0..k {
        tracker.span_open(SpanKind::Fold, || format!("fold {fold}"));
        let mut train_rows: Vec<usize> = (0..x.rows()).filter(|&r| folds[r] != fold).collect();
        let val_rows: Vec<usize> = (0..x.rows()).filter(|&r| folds[r] == fold).collect();
        if train_rows.is_empty() {
            // Degenerate tiny split: train in-sample rather than crash.
            train_rows = (0..x.rows()).collect();
        }
        let fold_seed = seed.wrapping_add(fold as u64);
        let fold_unit = |t: &mut CostTracker| {
            let xt = x.take_rows(&train_rows);
            let yt: Vec<u32> = train_rows.iter().map(|&r| y[r]).collect();
            let model = spec.fit(&xt, &yt, n_classes, t, fold_seed);
            let proba = if val_rows.is_empty() {
                Matrix::zeros(0, n_classes)
            } else {
                let xv = x.take_rows(&val_rows);
                model.predict_proba(&xv, t)
            };
            CachedValue::ModelProba { model, proba }
        };
        let outcome = match scope {
            None => fold_unit(tracker),
            Some(sc) => {
                let key = sc.key(
                    kind::FOLD_FIT,
                    model_fp,
                    &[x_fp, fold as u64, k as u64, fold_seed],
                    x.rows() as u64,
                );
                sc.cache().get_or_compute(key, tracker, fold_unit)
            }
        };
        let (model, p) = match outcome {
            CachedValue::ModelProba { model, proba } => (model, proba),
            other => unreachable!("fold unit stored {other:?}"),
        };
        for (i, &r) in val_rows.iter().enumerate() {
            oof.row_mut(r).copy_from_slice(p.row(i));
        }
        models.push(model);
        tracker.span_close();
    }
    (BaggedModel::new(models, n_classes), oof)
}

/// Bag `spec`, optionally on a stratified row subsample (`rows_frac < 1`,
/// AutoGluon's big-data behaviour). For subsampled bags the out-of-fold
/// matrix is approximated by the bag's predictions on the full data (the
/// sampled rows are in-bag — acceptable for the stacker, exactly as
/// AutoGluon's `sample_weight`-free subsampling behaves).
#[allow(clippy::too_many_arguments)]
fn bag_subsampled(
    spec: &ModelSpec,
    x: &Matrix,
    x_fp: u64,
    y: &[u32],
    n_classes: usize,
    folds: &[usize],
    k: usize,
    rows_frac: f64,
    tracker: &mut CostTracker,
    seed: u64,
    scope: Option<&EvalScope<'_>>,
) -> (BaggedModel, Matrix) {
    if rows_frac >= 1.0 {
        return bag_with_oof(spec, x, x_fp, y, n_classes, folds, k, tracker, seed, scope);
    }
    // Never shrink below what k-fold bagging needs (a few rows per fold).
    let min_rows = (4 * k).min(x.rows()).max(1);
    let step = ((1.0 / rows_frac).round().max(1.0) as usize)
        .min(x.rows() / min_rows)
        .max(1);
    let rows: Vec<usize> = (0..x.rows()).step_by(step).collect();
    let xs = x.take_rows(&rows);
    // The subsample derives from `x` by its step width alone.
    let xs_fp = evalcache::split_word(0x5b, &[x_fp, step as u64]);
    let ys: Vec<u32> = rows.iter().map(|&r| y[r]).collect();
    let sub_folds = fold_assignment(&ys, n_classes, k);
    let (bag, _) = bag_with_oof(
        spec, &xs, xs_fp, &ys, n_classes, &sub_folds, k, tracker, seed, scope,
    );
    let oof = bag.predict_proba(x, tracker);
    (bag, oof)
}

impl AutoMlSystem for AutoGluon {
    fn name(&self) -> &'static str {
        match self.quality {
            AutoGluonQuality::Best => "AutoGluon",
            AutoGluonQuality::FasterInferenceRefit => "AutoGluon(refit)",
            AutoGluonQuality::Distill => "AutoGluon(distill)",
        }
    }

    fn id(&self) -> SystemId {
        match self.quality {
            AutoGluonQuality::Best => SystemId::AutoGluon,
            AutoGluonQuality::FasterInferenceRefit => SystemId::AutoGluonRefit,
            AutoGluonQuality::Distill => SystemId::Custom("AutoGluon(distill)"),
        }
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::AutoGluon,
            search_space: "predefined pipelines",
            search_init: "manual",
            search: "predefined pipelines",
            ensembling: "Caruana & bagging & stacking",
        }
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let mut tracker = execution_tracker(self.id(), spec);
        // AutoGluon parallelises its fold/bag training across all allocated
        // cores — "an embarrassingly parallel workload" (paper §3.3); the
        // system-level profile overrides the per-model ones.
        tracker.set_profile_override(Some(green_automl_energy::ParallelProfile::embarrassing()));
        // The scope must capture the override just installed — it is part
        // of every memo key's context fingerprint.
        let scope = ctx.scope(train, &tracker);
        let y = &train.labels;
        let k = N_FOLDS.min(train.n_rows().max(2) / 2).max(2);
        let folds = fold_assignment(y, train.n_classes, k);

        let x_raw = encode(train, &mut tracker);
        let imputer = PreprocSpec::MeanImputer.fit(&x_raw, y, train.n_classes, &mut tracker);
        let x = imputer.transform(&x_raw, &mut tracker);
        let x_fp = if scope.is_some() {
            evalcache::fingerprint_matrix(&x)
        } else {
            0
        };

        // Layer 1: train portfolio models while the (optimistic) estimate
        // says they fit. At least two bags always train — but on data
        // subsampled to roughly fit the window, as the real system does for
        // large datasets. Estimation error is what produces Table 7's
        // overshoot.
        let scale = train.scale();
        let mut faults = FaultState::new(self.id(), spec);
        let mut layer1: Vec<BaggedModel> = Vec::new();
        let mut l1_oof: Vec<Matrix> = Vec::new();
        for (i, model) in layer1_portfolio().into_iter().enumerate() {
            let must_train = layer1.len() < 2;
            let remaining = (spec.budget_s - tracker.now()).max(0.0);
            let est = k as f64
                * model.estimate_fit_seconds(
                    x.rows(),
                    x.cols(),
                    train.n_classes,
                    scale,
                    spec.device,
                    spec.cores,
                );
            if !must_train && est * 0.6 > remaining {
                break;
            }
            tracker.span_open(SpanKind::Trial, || {
                format!("trial {}", faults.trials_started())
            });
            // Injected fault: this portfolio model's bag training dies
            // (AutoGluon logs the failure and trains the next model).
            if let Some(fault) = faults.next_trial() {
                faults.charge(&mut tracker, fault);
                tracker.span_close_fault(fault.kind);
                continue;
            }
            let trial_start = tracker.now();
            let window = remaining.max(spec.budget_s * 0.4) * 2.0;
            let rows_frac = if must_train && est > window {
                (window / est).clamp(0.02, 1.0)
            } else {
                1.0
            };
            let (bag, oof) = bag_subsampled(
                &model,
                &x,
                x_fp,
                y,
                train.n_classes,
                &folds,
                k,
                rows_frac,
                &mut tracker,
                spec.seed.wrapping_add(i as u64 * 31),
                scope.as_ref(),
            );
            faults.observe_ok(tracker.now() - trial_start);
            tracker.span_close();
            layer1.push(bag);
            l1_oof.push(oof);
        }

        // Layer 2 trains on features ++ layer-1 OOF probabilities; at least
        // one stacker is always trained (this is where the 10 s budget
        // overshoot comes from).
        let mut aug = Matrix::zeros(x.rows(), x.cols() + layer1.len() * train.n_classes);
        aug.row_scale = x.row_scale;
        aug.feat_scale = x.feat_scale;
        for r in 0..x.rows() {
            aug.row_mut(r)[..x.cols()].copy_from_slice(x.row(r));
            for (mi, oof) in l1_oof.iter().enumerate() {
                let base = x.cols() + mi * train.n_classes;
                aug.row_mut(r)[base..base + train.n_classes].copy_from_slice(oof.row(r));
            }
        }
        let aug_fp = if scope.is_some() {
            evalcache::fingerprint_matrix(&aug)
        } else {
            0
        };
        let mut layer2: Vec<BaggedModel> = Vec::new();
        let mut l2_oof: Vec<Matrix> = Vec::new();
        for (i, model) in layer2_portfolio().into_iter().enumerate() {
            let must_train = layer2.is_empty();
            let remaining = (spec.budget_s - tracker.now()).max(0.0);
            let est = k as f64
                * model.estimate_fit_seconds(
                    aug.rows(),
                    aug.cols(),
                    train.n_classes,
                    scale,
                    spec.device,
                    spec.cores,
                );
            if !must_train && est * 0.6 > remaining {
                break;
            }
            tracker.span_open(SpanKind::Trial, || {
                format!("trial {}", faults.trials_started())
            });
            if let Some(fault) = faults.next_trial() {
                faults.charge(&mut tracker, fault);
                tracker.span_close_fault(fault.kind);
                continue;
            }
            let trial_start = tracker.now();
            let window = remaining.max(spec.budget_s * 0.4) * 2.0;
            let rows_frac = if must_train && est > window {
                (window / est).clamp(0.02, 1.0)
            } else {
                1.0
            };
            let (bag, oof) = bag_subsampled(
                &model,
                &aug,
                aug_fp,
                y,
                train.n_classes,
                &folds,
                k,
                rows_frac,
                &mut tracker,
                spec.seed.wrapping_add(1000 + i as u64),
                scope.as_ref(),
            );
            faults.observe_ok(tracker.now() - trial_start);
            tracker.span_close();
            layer2.push(bag);
            l2_oof.push(oof);
        }

        // Faults can leave the stack without any layer-2 model: nothing can
        // be ensembled, so the constant-class fallback deploys instead of
        // panicking inside Caruana selection.
        if layer2.is_empty() {
            return AutoMlRun {
                predictor: majority_class_predictor(train),
                execution: tracker.measurement(),
                n_evaluations: layer1.len(),
                budget_s: spec.budget_s,
                n_trial_faults: faults.n_faults(),
                wasted_j: faults.wasted_j(),
                trace: tracker.take_trace(),
            };
        }

        // Caruana weights over the layer-2 out-of-fold predictions.
        tracker.span_open(SpanKind::Trial, || "ensemble".to_string());
        let weights = caruana_selection(&l2_oof, y, train.n_classes, 25, &mut tracker);
        tracker.span_close();
        let n_evaluations = layer1.len() + layer2.len();

        // Distillation preset: build the full stack's training-set
        // predictions, then train one MLP student on them and deploy only
        // the student (Fakoor et al. 2020 / the paper's §5).
        if self.quality == AutoGluonQuality::Distill {
            tracker.span_open(SpanKind::Trial, || "distill".to_string());
            let stacked = StackedEnsemble::new(
                vec![imputer.clone()],
                layer1,
                layer2,
                weights,
                train.n_classes,
                x.cols(),
            );
            let teacher_proba = stacked.predict_proba(train, &mut tracker);
            let pseudo: Vec<u32> = green_automl_ml::models::argmax_rows(&teacher_proba);
            let student_spec = ModelSpec::Mlp(MlpParams {
                hidden1: 48,
                hidden2: 16,
                epochs: 35,
                lr: 0.02,
                batch: 32,
            });
            let student = student_spec.fit(
                &x,
                &pseudo,
                train.n_classes,
                &mut tracker,
                spec.seed ^ 0xd157,
            );
            let deployed = green_automl_ml::FittedPipeline::from_parts(
                green_automl_ml::Pipeline::new(vec![], student_spec),
                vec![imputer],
                student,
                train.n_classes,
                x.cols(),
            );
            tracker.span_close();
            return AutoMlRun {
                predictor: Predictor::Single(deployed),
                execution: tracker.measurement(),
                n_evaluations,
                budget_s: spec.budget_s,
                n_trial_faults: faults.n_faults(),
                wasted_j: faults.wasted_j(),
                trace: tracker.take_trace(),
            };
        }

        // Refit preset: collapse each bag into one model trained on all data.
        let (layer1, layer2) = match self.quality {
            AutoGluonQuality::Best | AutoGluonQuality::Distill => (layer1, layer2),
            AutoGluonQuality::FasterInferenceRefit => {
                tracker.span_open(SpanKind::Trial, || "refit".to_string());
                // Collapse each bag: refit its portfolio model once on the
                // full training data (one model replaces k fold models).
                // Each collapse fit is a memo unit of its own.
                let refit_one =
                    |model: &ModelSpec, m: &Matrix, m_fp: u64, seed: u64, t: &mut CostTracker| {
                        let unit = |t: &mut CostTracker| {
                            CachedValue::Model(model.fit(m, y, train.n_classes, t, seed))
                        };
                        let outcome = match scope.as_ref() {
                            None => unit(t),
                            Some(sc) => {
                                let key = sc.key(
                                    kind::REFIT,
                                    evalcache::fingerprint_model(model),
                                    &[m_fp, seed],
                                    m.rows() as u64,
                                );
                                sc.cache().get_or_compute(key, t, unit)
                            }
                        };
                        match outcome {
                            CachedValue::Model(fitted) => fitted,
                            other => unreachable!("refit unit stored {other:?}"),
                        }
                    };
                let mut l1 = Vec::new();
                for (i, model) in layer1_portfolio()
                    .into_iter()
                    .enumerate()
                    .take(layer1.len())
                {
                    let m = refit_one(&model, &x, x_fp, spec.seed ^ (i as u64 + 7), &mut tracker);
                    l1.push(BaggedModel::new(vec![m], train.n_classes));
                }
                let mut l2 = Vec::new();
                for (i, model) in layer2_portfolio()
                    .into_iter()
                    .enumerate()
                    .take(layer2.len())
                {
                    let m = refit_one(
                        &model,
                        &aug,
                        aug_fp,
                        spec.seed ^ (i as u64 + 77),
                        &mut tracker,
                    );
                    l2.push(BaggedModel::new(vec![m], train.n_classes));
                }
                tracker.span_close();
                (l1, l2)
            }
        };

        let stacked = StackedEnsemble::new(
            vec![imputer],
            layer1,
            layer2,
            weights,
            train.n_classes,
            x.cols(),
        );

        AutoMlRun {
            predictor: Predictor::Stacked(stacked),
            execution: tracker.measurement(),
            n_evaluations,
            budget_s: spec.budget_s,
            n_trial_faults: faults.n_faults(),
            wasted_j: faults.wasted_j(),
            trace: tracker.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;
    use green_automl_ml::metrics::balanced_accuracy;

    fn task() -> Dataset {
        let mut s = TaskSpec::new("ag-t", 260, 6, 2);
        s.cluster_sep = 2.1;
        s.generate().with_scales(8.0, 1.0)
    }

    #[test]
    fn builds_a_stacked_predictor_that_learns() {
        let ds = task();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let run = AutoGluon::default().fit(&train, &RunSpec::single_core(60.0, 0));
        assert!(matches!(run.predictor, Predictor::Stacked(_)));
        assert!(run.predictor.n_models() >= 10, "bagged stack expected");
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.7, "balanced accuracy {bal}");
    }

    #[test]
    fn small_budgets_overshoot_like_table7() {
        // A heavily charged dataset (large logical scale) with a budget
        // smaller than the committed minimum stack: AutoGluon must overrun,
        // as in Table 7's 22 s actual for a 10 s budget.
        let mut s = TaskSpec::new("ag-big", 260, 6, 2);
        s.cluster_sep = 2.1;
        let train = s.generate().with_scales(200.0, 1.0);
        let run = AutoGluon::default().fit(&train, &RunSpec::single_core(4.0, 1));
        assert!(
            run.overshoot_ratio() > 1.2,
            "AutoGluon should overshoot (Table 7), got {:.2}",
            run.overshoot_ratio()
        );
    }

    #[test]
    fn larger_budgets_train_more_models() {
        let train = task();
        let small = AutoGluon::default().fit(&train, &RunSpec::single_core(10.0, 2));
        let large = AutoGluon::default().fit(&train, &RunSpec::single_core(600.0, 2));
        assert!(large.n_evaluations >= small.n_evaluations);
        assert!(large.n_evaluations >= 8, "full portfolio should train");
    }

    #[test]
    fn refit_preset_slashes_inference_cost() {
        let train = task();
        let spec = RunSpec::single_core(120.0, 3);
        let best = AutoGluon::default().fit(&train, &spec);
        let refit = AutoGluon {
            quality: AutoGluonQuality::FasterInferenceRefit,
        }
        .fit(&train, &spec);
        let dev = Device::xeon_gold_6132();
        let e_best = best.predictor.inference_kwh_per_row(dev, 1);
        let e_refit = refit.predictor.inference_kwh_per_row(dev, 1);
        assert!(
            e_refit < e_best * 0.55,
            "refit should cut inference energy substantially: {e_refit:.3e} vs {e_best:.3e}"
        );
    }

    #[test]
    fn distillation_yields_single_model_inference_with_comparable_accuracy() {
        let ds = task();
        let (train, test) = train_test_split(&ds, 0.34, 5);
        let spec = RunSpec::single_core(120.0, 5);
        let best = AutoGluon::default().fit(&train, &spec);
        let distilled = AutoGluon {
            quality: AutoGluonQuality::Distill,
        }
        .fit(&train, &spec);
        assert_eq!(distilled.predictor.n_models(), 1);
        let dev = Device::xeon_gold_6132();
        let e_best = best.predictor.inference_kwh_per_row(dev, 1);
        let e_stu = distilled.predictor.inference_kwh_per_row(dev, 1);
        assert!(
            e_stu < e_best * 0.2,
            "student inference {e_stu:.3e} should be <20% of the stack's {e_best:.3e}"
        );
        let mut t = CostTracker::new(dev, 1);
        let acc_best = balanced_accuracy(&test.labels, &best.predictor.predict(&test, &mut t), 2);
        let acc_stu =
            balanced_accuracy(&test.labels, &distilled.predictor.predict(&test, &mut t), 2);
        assert!(
            acc_stu > acc_best - 0.12,
            "student accuracy {acc_stu:.3} too far below teacher {acc_best:.3}"
        );
    }

    #[test]
    fn stacked_inference_is_an_order_above_single_models() {
        // Observation O1: ensembling systems need >= 10x the inference
        // energy of a single model.
        let ds = task();
        let (train, _) = train_test_split(&ds, 0.34, 0);
        let run = AutoGluon::default().fit(&train, &RunSpec::single_core(60.0, 4));
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let single = green_automl_ml::Pipeline::new(
            vec![],
            green_automl_ml::ModelSpec::GradientBoosting(Default::default()),
        )
        .fit(&train, &mut t, 0);
        let dev = Device::xeon_gold_6132();
        let ratio = run.predictor.inference_kwh_per_row(dev, 1)
            / Predictor::Single(single).inference_kwh_per_row(dev, 1);
        assert!(ratio > 5.0, "stack/single inference ratio {ratio:.1}");
    }
}
