//! The naive search baselines AutoML is measured against.
//!
//! The paper's §1 frames advanced AutoML systems as an *investment* whose
//! development energy "amortizes in comparison to more simple, inefficient
//! search strategies, such as grid or random search" (citing Bergstra &
//! Bengio 2012 and Turner et al. 2020). These two systems make that
//! comparison runnable: the same pipeline space as CAML, no surrogate, no
//! meta-learning, no ensembling.

use crate::id::SystemId;
use crate::pipespace::PipelineSpace;
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::split::train_test_split;
use green_automl_dataset::Dataset;
use green_automl_energy::SpanKind;
use green_automl_ml::validation::{fit_scoped, proba_eval_scoped};
use green_automl_optim::grid::grid;
use green_automl_optim::random::RandomSearch;
use green_automl_optim::Config;

/// Random search over the CAML pipeline space with hold-out validation.
#[derive(Debug, Clone)]
pub struct RandomSearchBaseline {
    /// Hold-out validation fraction.
    pub val_frac: f64,
}

impl Default for RandomSearchBaseline {
    fn default() -> Self {
        RandomSearchBaseline { val_frac: 0.33 }
    }
}

/// Grid search over a coarse factorisation of the same space.
#[derive(Debug, Clone)]
pub struct GridSearchBaseline {
    /// Points per continuous axis of the grid.
    pub resolution: usize,
    /// Hold-out validation fraction.
    pub val_frac: f64,
}

impl Default for GridSearchBaseline {
    fn default() -> Self {
        GridSearchBaseline {
            resolution: 2,
            val_frac: 0.33,
        }
    }
}

/// Shared evaluation loop: fit each suggested config on the training part,
/// score on the validation part, keep the best, honour the budget. Trials
/// killed by the spec's fault plan burn their partial work and are skipped.
fn search_loop<I: Iterator<Item = Config>>(
    id: SystemId,
    configs: I,
    train: &Dataset,
    spec: &RunSpec,
    val_frac: f64,
    ctx: &FitContext<'_>,
) -> AutoMlRun {
    let mut tracker = execution_tracker(id, spec);
    let scope = ctx.scope(train, &tracker);
    let space = PipelineSpace::caml();
    let split_seed = spec.seed ^ 0xba5e;
    let split_words = [split_seed, val_frac.to_bits()];
    let (tr, val) = train_test_split(train, val_frac, split_seed);
    let eval_cap = ((spec.budget_s * 0.4) as usize).clamp(8, 120);

    let mut faults = FaultState::new(id, spec);
    let mut best: Option<(f64, green_automl_ml::Pipeline)> = None;
    let mut n_evaluations = 0usize;
    for config in configs {
        if tracker.now() >= spec.budget_s || n_evaluations >= eval_cap {
            break;
        }
        tracker.span_open(SpanKind::Trial, || {
            format!("trial {}", faults.trials_started())
        });
        if let Some(fault) = faults.next_trial() {
            faults.charge(&mut tracker, fault);
            tracker.span_close_fault(fault.kind);
            continue;
        }
        let trial_start = tracker.now();
        let pipeline = space.decode(&config);
        // Same charges as fit + predict: `predict` is argmax over
        // `predict_proba`, which is what the memoised unit records.
        let (score, _, _) = proba_eval_scoped(
            &pipeline,
            &tr,
            &val,
            &split_words,
            spec.seed ^ n_evaluations as u64,
            &mut tracker,
            scope.as_ref(),
        );
        faults.observe_ok(tracker.now() - trial_start);
        tracker.span_close();
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, pipeline));
        }
        n_evaluations += 1;
    }
    crate::system::burn_active_until(&mut tracker, spec.budget_s);

    tracker.span_open(SpanKind::Trial, || "refit".to_string());
    let predictor = match best {
        Some((_, winner)) => Predictor::Single(fit_scoped(
            &winner,
            &tr,
            &split_words,
            spec.seed ^ 0xdeb,
            &mut tracker,
            scope.as_ref(),
        )),
        // Every candidate died: deploy the constant-class fallback rather
        // than refitting a model the search never validated.
        None if faults.n_faults() > 0 => majority_class_predictor(train),
        None => {
            let naive =
                green_automl_ml::Pipeline::new(vec![], green_automl_ml::ModelSpec::GaussianNb);
            Predictor::Single(fit_scoped(
                &naive,
                &tr,
                &split_words,
                spec.seed ^ 0xdeb,
                &mut tracker,
                scope.as_ref(),
            ))
        }
    };
    tracker.span_close();
    AutoMlRun {
        predictor,
        execution: tracker.measurement(),
        n_evaluations,
        budget_s: spec.budget_s,
        n_trial_faults: faults.n_faults(),
        wasted_j: faults.wasted_j(),
        trace: tracker.take_trace(),
    }
}

impl AutoMlSystem for RandomSearchBaseline {
    fn name(&self) -> &'static str {
        "RandomSearch"
    }

    fn id(&self) -> SystemId {
        SystemId::RandomSearch
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::RandomSearch,
            search_space: "data p. & models",
            search_init: "random",
            search: "random",
            ensembling: "-",
        }
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let space = PipelineSpace::caml();
        let mut rs = RandomSearch::new(space.space().clone(), spec.seed);
        let stream = std::iter::from_fn(move || Some(rs.suggest()));
        search_loop(self.id(), stream, train, spec, self.val_frac, ctx)
    }
}

impl AutoMlSystem for GridSearchBaseline {
    fn name(&self) -> &'static str {
        "GridSearch"
    }

    fn id(&self) -> SystemId {
        SystemId::GridSearch
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::GridSearch,
            search_space: "data p. & models",
            search_init: "grid",
            search: "grid",
            ensembling: "-",
        }
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let space = PipelineSpace::caml();
        let cells = grid(space.space(), self.resolution.max(2));
        search_loop(
            self.id(),
            cells.into_iter(),
            train,
            spec,
            self.val_frac,
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caml::Caml;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::CostTracker;
    use green_automl_ml::metrics::balanced_accuracy;

    fn task() -> Dataset {
        let mut s = TaskSpec::new("base-t", 260, 6, 2);
        s.cluster_sep = 2.1;
        s.generate().with_scales(8.0, 1.0)
    }

    #[test]
    fn random_search_runs_and_learns() {
        use green_automl_dataset::split::train_test_split;
        let ds = task();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let run = RandomSearchBaseline::default().fit(&train, &RunSpec::single_core(30.0, 0));
        assert!(run.n_evaluations >= 1);
        let mut t = CostTracker::new(green_automl_energy::Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.6, "random search balanced accuracy {bal}");
    }

    #[test]
    fn grid_search_enumerates_deterministically() {
        let train = task();
        let a = GridSearchBaseline::default().fit(&train, &RunSpec::single_core(20.0, 1));
        let b = GridSearchBaseline::default().fit(&train, &RunSpec::single_core(20.0, 1));
        assert_eq!(a.n_evaluations, b.n_evaluations);
    }

    #[test]
    fn caml_matches_or_beats_random_search_on_average() {
        // The premise the amortisation argument rests on: guided search is
        // at least as good as random under the same budget.
        use green_automl_dataset::split::train_test_split;
        let mut caml_sum = 0.0;
        let mut rnd_sum = 0.0;
        let n = 4;
        for seed in 0..n {
            let mut s = TaskSpec::new("cmp", 240, 6, 2);
            s.cluster_sep = 1.8;
            s.label_noise = 0.08;
            let ds = s.generate().with_scales(8.0, 1.0);
            let (train, test) = train_test_split(&ds, 0.34, seed);
            let spec = RunSpec::single_core(60.0, seed);
            let mut t = CostTracker::new(green_automl_energy::Device::xeon_gold_6132(), 1);
            let c = Caml::default().fit(&train, &spec);
            caml_sum += balanced_accuracy(&test.labels, &c.predictor.predict(&test, &mut t), 2);
            let r = RandomSearchBaseline::default().fit(&train, &spec);
            rnd_sum += balanced_accuracy(&test.labels, &r.predictor.predict(&test, &mut t), 2);
        }
        assert!(
            caml_sum >= rnd_sum - 0.06 * n as f64,
            "CAML ({:.3}) should not trail random search ({:.3}) meaningfully",
            caml_sum / n as f64,
            rnd_sum / n as f64
        );
    }

    #[test]
    fn baselines_use_their_budget() {
        let train = task();
        let run = RandomSearchBaseline::default().fit(&train, &RunSpec::single_core(30.0, 2));
        assert!(run.execution.duration_s >= 30.0);
    }
}
