//! TPOT 0.11.7 — genetic programming over ML pipelines with NSGA-II
//! selection and 5-fold cross-validation scoring (paper §2.2).
//!
//! Two paper behaviours matter for energy: TPOT "only supports search time
//! in minutes" (its budget floor), and its 5-fold CV makes every fitness
//! evaluation ~5x as expensive as the hold-out evaluations of the other
//! systems — the reason it reaches the lowest 5-minute accuracy in Fig. 3.
//! Budget is checked between generations only, so it overshoots (Table 7:
//! 100 s for a 1-minute budget).

use crate::id::SystemId;
use crate::pipespace::PipelineSpace;
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::Dataset;
use green_automl_energy::rng::SplitMix64;
use green_automl_energy::{CostTracker, ParallelProfile, SpanKind};
use green_automl_ml::validation::{cv_eval_scoped, fit_scoped};
use green_automl_optim::nsga2;
use green_automl_optim::Config;

/// The TPOT simulator.
#[derive(Debug, Clone)]
pub struct Tpot {
    /// Population size per generation.
    pub population: usize,
    /// Cross-validation folds (TPOT's default is 5).
    pub cv_folds: usize,
    /// Hard cap on generations (bounds the simulation's real compute; the
    /// per-budget evaluation cap usually triggers first).
    pub max_generations: usize,
}

impl Default for Tpot {
    fn default() -> Self {
        Tpot {
            population: 10,
            cv_folds: 5,
            max_generations: 40,
        }
    }
}

/// Pipeline complexity proxy used as TPOT's second (minimised) objective.
fn complexity(space: &PipelineSpace, c: &Config) -> f64 {
    // Trees + depth + epochs, normalised — favours simpler genomes.
    let v = c.values();
    (v[5] + v[6]) / 100.0
        + v[4] / 20.0
        + v[10] / 50.0
        + space.family_of(c).name().len() as f64 * 0.0
}

impl AutoMlSystem for Tpot {
    fn name(&self) -> &'static str {
        "TPOT"
    }

    fn id(&self) -> SystemId {
        SystemId::Tpot
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::Tpot,
            search_space: "data/feature p. & models",
            search_init: "random",
            search: "genetic programming",
            ensembling: "-",
        }
    }

    fn min_budget_s(&self) -> f64 {
        60.0
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        let mut tracker = execution_tracker(self.id(), spec);
        let scope = ctx.scope(train, &tracker);
        let space = PipelineSpace::askl(); // TPOT searches data/feature preprocessors too
        let mut rng = SplitMix64::seed_from_u64(spec.seed ^ 0x790);

        // Initial random population.
        let mut pop: Vec<Config> = (0..self.population)
            .map(|_| space.space().sample(&mut rng))
            .collect();
        let mut scores: Vec<f64> = Vec::with_capacity(pop.len());
        let mut n_evaluations = 0usize;
        let mut faults = FaultState::new(self.id(), spec);

        // A genome whose CV evaluation is killed by an injected fault keeps
        // the wasted energy on the meter and scores 0.0 — a legal worst
        // fitness, so NSGA-II simply selects against it.
        let eval = |c: &Config, tracker: &mut CostTracker, faults: &mut FaultState, seed: u64| {
            tracker.span_open(SpanKind::Trial, || {
                format!("trial {}", faults.trials_started())
            });
            if let Some(fault) = faults.next_trial() {
                faults.charge(tracker, fault);
                tracker.span_close_fault(fault.kind);
                return 0.0;
            }
            let trial_start = tracker.now();
            let pipeline = space.decode(c);
            let score = cv_eval_scoped(
                &pipeline,
                train,
                self.cv_folds.min(train.n_rows() / 2).max(2),
                seed,
                tracker,
                scope.as_ref(),
            );
            faults.observe_ok(tracker.now() - trial_start);
            tracker.span_close();
            score
        };

        for c in &pop {
            scores.push(eval(c, &mut tracker, &mut faults, spec.seed));
            n_evaluations += 1;
        }

        // Evolve generation by generation; the budget is only consulted
        // between generations. The evaluation cap bounds the simulation's
        // real compute; when it triggers before the budget, the remaining
        // window is charged as (phantom) continued evolution.
        let eval_cap = ((spec.budget_s * 0.3) as usize).clamp(2 * self.population, 150);
        for generation in 0..self.max_generations {
            if tracker.now() >= spec.budget_s || n_evaluations >= eval_cap {
                break;
            }
            let objectives: Vec<Vec<f64>> = pop
                .iter()
                .zip(&scores)
                .map(|(c, &s)| vec![s, -complexity(&space, c)])
                .collect();
            let (rank, crowd) = nsga2::rank_and_crowd(&objectives);
            // Charge NSGA-II bookkeeping.
            let (_, sel_ops) = nsga2::select(&objectives, pop.len());
            tracker.charge(sel_ops, ParallelProfile::serial());

            // Offspring via tournament + crossover + mutation.
            let mut children: Vec<Config> = Vec::with_capacity(pop.len());
            for _ in 0..pop.len() {
                let a = nsga2::tournament_pick(&mut rng, &rank, &crowd);
                let b = nsga2::tournament_pick(&mut rng, &rank, &crowd);
                let mut child = space.space().crossover(&pop[a], &pop[b], &mut rng);
                if rng.gen_bool(0.7) {
                    child = space.space().mutate_one(&child, &mut rng);
                }
                children.push(child);
            }
            let child_scores: Vec<f64> = children
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    n_evaluations += 1;
                    eval(
                        c,
                        &mut tracker,
                        &mut faults,
                        spec.seed ^ (generation as u64 * 97 + i as u64),
                    )
                })
                .collect();

            // Environmental selection over parents + children.
            let mut all = pop;
            all.extend(children);
            let mut all_scores = scores;
            all_scores.extend(child_scores);
            let all_objs: Vec<Vec<f64>> = all
                .iter()
                .zip(&all_scores)
                .map(|(c, &s)| vec![s, -complexity(&space, c)])
                .collect();
            let (kept, sel_ops) = nsga2::select(&all_objs, self.population);
            tracker.charge(sel_ops, ParallelProfile::serial());
            pop = kept.iter().map(|&i| all[i].clone()).collect();
            scores = kept.iter().map(|&i| all_scores[i]).collect();
        }

        if tracker.now() < spec.budget_s {
            crate::system::burn_active_until(&mut tracker, spec.budget_s);
        }

        // Deploy the accuracy-best genome, refit on the full training data —
        // unless every evaluation was killed, in which case no genome ever
        // earned a score and the constant-class fallback ships instead.
        tracker.span_open(SpanKind::Trial, || "refit".to_string());
        let predictor = if faults.n_ok() == 0 && faults.n_faults() > 0 {
            majority_class_predictor(train)
        } else {
            let best_idx = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            Predictor::Single(fit_scoped(
                &space.decode(&pop[best_idx]),
                train,
                &[],
                spec.seed,
                &mut tracker,
                scope.as_ref(),
            ))
        };
        tracker.span_close();
        // Report completed evaluations; killed trials are tallied apart.
        let n_evaluations = n_evaluations - faults.n_faults().min(n_evaluations);

        AutoMlRun {
            predictor,
            execution: tracker.measurement(),
            n_evaluations,
            budget_s: spec.budget_s,
            n_trial_faults: faults.n_faults(),
            wasted_j: faults.wasted_j(),
            trace: tracker.take_trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::split::train_test_split;
    use green_automl_dataset::TaskSpec;
    use green_automl_energy::Device;
    use green_automl_ml::metrics::balanced_accuracy;

    fn task() -> Dataset {
        let mut s = TaskSpec::new("tpot-t", 220, 6, 2);
        s.cluster_sep = 2.1;
        s.generate().with_scales(8.0, 1.0)
    }

    #[test]
    fn evolves_a_single_pipeline_that_learns() {
        let ds = task();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let run = Tpot::default().fit(&train, &RunSpec::single_core(60.0, 0));
        assert!(matches!(run.predictor, Predictor::Single(_)));
        let mut t = CostTracker::new(Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.65, "balanced accuracy {bal}");
    }

    #[test]
    fn budget_floor_is_one_minute() {
        assert_eq!(Tpot::default().min_budget_s(), 60.0);
    }

    #[test]
    fn cv_makes_evaluations_expensive() {
        // With the same budget TPOT completes far fewer pipeline fits than
        // its evaluation count suggests — each eval is k fits. Check that
        // evaluations are k-fold expensive by comparing against FLAML under
        // the same budget.
        let train = task();
        let spec = RunSpec::single_core(60.0, 1);
        let tpot = Tpot::default().fit(&train, &spec);
        assert!(tpot.n_evaluations >= Tpot::default().population);
    }

    #[test]
    fn generation_granularity_causes_overshoot() {
        let train = task();
        let run = Tpot::default().fit(&train, &RunSpec::single_core(60.0, 2));
        // Budget checked between generations: duration >= budget is normal.
        assert!(
            run.overshoot_ratio() >= 1.0,
            "got {:.2}",
            run.overshoot_ratio()
        );
    }
}
