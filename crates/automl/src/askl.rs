//! AutoSklearn 1 & 2 — Bayesian optimisation over the full pipeline space
//! with meta-learned warm starting (v1) / portfolio + fidelity schedule
//! (v2), and Caruana ensembling of the top evaluated pipelines.
//!
//! Budget behaviour mirrors the paper's Table 7: the search loop treats the
//! budget as the time to *evaluate pipelines* — a started evaluation always
//! finishes (the very first pipeline may alone exceed a small budget), and
//! the post-hoc ensemble-weight computation is **not** counted against the
//! budget at all, which is why ASKL overshoots hardest ("it still has to
//! calculate the ensemble weights, which might take a significant amount of
//! time, especially for large validation sets").

use crate::ensemble::{caruana_selection, WeightedEnsemble};
use crate::id::SystemId;
use crate::metastore::MetaStore;
use crate::pipespace::PipelineSpace;
use crate::system::{
    execution_tracker, majority_class_predictor, AutoMlRun, AutoMlSystem, DesignCard, FaultState,
    FitContext, Predictor, RunSpec,
};
use green_automl_dataset::split::train_test_split;
use green_automl_dataset::{Dataset, MetaFeatures};
use green_automl_energy::{CostTracker, ParallelProfile, SpanKind};
use green_automl_ml::validation::proba_eval_scoped;
use green_automl_ml::{EvalScope, FittedPipeline, Matrix, Pipeline};
use green_automl_optim::BayesOpt;

/// Which AutoSklearn generation to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    V1,
    V2,
}

/// AutoSklearn 1 (0.14.7): BO + meta-learned warm start + Caruana top-50.
#[derive(Debug, Clone)]
pub struct AutoSklearn1 {
    /// Warm-start configurations evaluated before BO takes over.
    pub n_warm_start: usize,
    /// Pipelines eligible for ensemble selection (paper: top 50).
    pub ensemble_pool: usize,
    /// Caruana selection iterations.
    pub ensemble_iters: usize,
}

impl Default for AutoSklearn1 {
    fn default() -> Self {
        AutoSklearn1 {
            n_warm_start: 12,
            ensemble_pool: 50,
            ensemble_iters: 30,
        }
    }
}

/// AutoSklearn 2 (0.14.7): portfolio initialisation + low-fidelity
/// screening + Caruana ensembling.
#[derive(Debug, Clone)]
pub struct AutoSklearn2 {
    /// Portfolio configurations evaluated first.
    pub n_portfolio: usize,
    /// Pipelines eligible for ensemble selection.
    pub ensemble_pool: usize,
    /// Caruana selection iterations.
    pub ensemble_iters: usize,
}

impl Default for AutoSklearn2 {
    fn default() -> Self {
        AutoSklearn2 {
            n_portfolio: 8,
            ensemble_pool: 50,
            ensemble_iters: 30,
        }
    }
}

struct EvalRec {
    fitted: FittedPipeline,
    val_proba: Matrix,
    score: f64,
}

fn evaluate(
    pipeline: &Pipeline,
    tr: &Dataset,
    val: &Dataset,
    data_words: &[u64],
    seed: u64,
    tracker: &mut CostTracker,
    scope: Option<&EvalScope<'_>>,
) -> EvalRec {
    let (score, fitted, val_proba) =
        proba_eval_scoped(pipeline, tr, val, data_words, seed, tracker, scope);
    EvalRec {
        fitted,
        val_proba,
        score,
    }
}

/// Evaluation cap per run — bounds the simulation's real compute while the
/// virtual budget keeps accruing realistic energy (see DESIGN.md).
fn eval_cap(budget_s: f64) -> usize {
    ((budget_s * 0.4) as usize).clamp(8, 120)
}

fn fit_impl(
    version: Version,
    train: &Dataset,
    spec: &RunSpec,
    sys: SysParams,
    ctx: &FitContext<'_>,
) -> AutoMlRun {
    let mut tracker = execution_tracker(sys.id, spec);
    let scope = ctx.scope(train, &tracker);
    let split_seed = spec.seed ^ 0xa5c1;
    let (tr, val) = train_test_split(train, 0.33, split_seed);
    let space = PipelineSpace::askl();
    let store = MetaStore::builtin(&space);
    let mut bo = BayesOpt::new(space.space().clone(), spec.seed);
    let mut faults = FaultState::new(sys.id, spec);

    let init = match version {
        Version::V1 => store.warm_start(&MetaFeatures::from_dataset(train), sys.n_init),
        Version::V2 => store.portfolio(sys.n_init),
    };

    let cap = eval_cap(spec.budget_s);
    let mut evals: Vec<EvalRec> = Vec::new();
    let mut init_iter = init.into_iter();
    while evals.len() < cap && tracker.now() < spec.budget_s {
        let config = match init_iter.next() {
            Some(c) => c,
            None => {
                let (c, ops) = bo.suggest();
                tracker.charge(ops, ParallelProfile::serial());
                c
            }
        };

        tracker.span_open(SpanKind::Trial, || {
            format!("trial {}", faults.trials_started())
        });
        // Injected fault: pynisher kills the trial process. Burn the wasted
        // partial work, tell BO the config failed, and move on.
        if let Some(fault) = faults.next_trial() {
            faults.charge(&mut tracker, fault);
            bo.observe(config, 0.0);
            tracker.span_close_fault(fault.kind);
            continue;
        }
        let trial_start = tracker.now();

        // ASKL2 fidelity screen: a 30%-sample dry run; configs scoring
        // below the running median are not evaluated at full fidelity.
        if version == Version::V2 && evals.len() >= 4 {
            let small = tr.head((tr.n_rows() as f64 * 0.3) as usize);
            let probe = evaluate(
                &space.decode(&config),
                &small,
                &val,
                &[split_seed, small.n_rows() as u64],
                spec.seed,
                &mut tracker,
                scope.as_ref(),
            );
            let mut scores: Vec<f64> = evals.iter().map(|e| e.score).collect();
            scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = scores[scores.len() / 2];
            bo.observe(config.clone(), probe.score);
            if probe.score < median - 0.02 {
                faults.observe_ok(tracker.now() - trial_start);
                tracker.span_close();
                continue;
            }
        }

        let rec = evaluate(
            &space.decode(&config),
            &tr,
            &val,
            &[split_seed, u64::MAX],
            spec.seed ^ evals.len() as u64,
            &mut tracker,
            scope.as_ref(),
        );
        bo.observe(config, rec.score);
        faults.observe_ok(tracker.now() - trial_start);
        tracker.span_close();
        evals.push(rec);
    }
    let n_evaluations = evals.len();

    // The real system searches until the wall clock expires.
    if tracker.now() < spec.budget_s {
        crate::system::burn_active_until(&mut tracker, spec.budget_s);
    }

    // Every started trial died: there is nothing to ensemble. Deploy the
    // constant-class fallback instead of panicking in Caruana selection.
    if evals.is_empty() {
        return AutoMlRun {
            predictor: majority_class_predictor(train),
            execution: tracker.measurement(),
            n_evaluations: 0,
            budget_s: spec.budget_s,
            n_trial_faults: faults.n_faults(),
            wasted_j: faults.wasted_j(),
            trace: tracker.take_trace(),
        };
    }

    // Post-hoc Caruana ensembling — deliberately NOT budget-checked.
    evals.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let pool = sys.ensemble_pool.min(evals.len()).max(1);
    // Guard the simulation's real compute on many-class tasks.
    let pool = if val.n_classes > 50 {
        pool.min(20)
    } else {
        pool
    };
    tracker.span_open(SpanKind::Trial, || "ensemble".to_string());
    let candidates: Vec<Matrix> = evals[..pool].iter().map(|e| e.val_proba.clone()).collect();
    let mut weights = caruana_selection(
        &candidates,
        &val.labels,
        val.n_classes,
        sys.ensemble_iters,
        &mut tracker,
    );
    // On the small validation sets of this simulation, greedy selection
    // with replacement concentrates on one or two members; the real system
    // deploys tens (its scores are noisier and its pool more diverse).
    // Blend with a uniform prior over the score-ranked top pipelines so the
    // deployed ensemble has the paper's size — this is what makes ASKL's
    // inference an order of magnitude above a single model (Observation O1).
    let uniform_k = pool.min(10);
    for (i, w) in weights.iter_mut().enumerate() {
        *w *= 0.6;
        if i < uniform_k {
            *w += 0.4 / uniform_k as f64;
        }
    }
    let pipelines: Vec<FittedPipeline> = evals.drain(..pool).map(|e| e.fitted).collect();
    let ensemble = WeightedEnsemble::new(pipelines, &weights, val.n_classes);
    tracker.span_close();

    AutoMlRun {
        predictor: Predictor::Ensemble(ensemble),
        execution: tracker.measurement(),
        n_evaluations,
        budget_s: spec.budget_s,
        n_trial_faults: faults.n_faults(),
        wasted_j: faults.wasted_j(),
        trace: tracker.take_trace(),
    }
}

struct SysParams {
    id: SystemId,
    n_init: usize,
    ensemble_pool: usize,
    ensemble_iters: usize,
}

impl AutoMlSystem for AutoSklearn1 {
    fn name(&self) -> &'static str {
        "AutoSklearn1"
    }

    fn id(&self) -> SystemId {
        SystemId::AutoSklearn1
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::AutoSklearn1,
            search_space: "data/feature p. & models",
            search_init: "warm starting",
            search: "BO (random forest)",
            ensembling: "Caruana",
        }
    }

    fn min_budget_s(&self) -> f64 {
        30.0
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        fit_impl(
            Version::V1,
            train,
            spec,
            SysParams {
                id: self.id(),
                n_init: self.n_warm_start,
                ensemble_pool: self.ensemble_pool,
                ensemble_iters: self.ensemble_iters,
            },
            ctx,
        )
    }
}

impl AutoMlSystem for AutoSklearn2 {
    fn name(&self) -> &'static str {
        "AutoSklearn2"
    }

    fn id(&self) -> SystemId {
        SystemId::AutoSklearn2
    }

    fn design(&self) -> DesignCard {
        DesignCard {
            system: SystemId::AutoSklearn2,
            search_space: "data/feature p. & models",
            search_init: "portfolio",
            search: "BO & fidelity schedule",
            ensembling: "Caruana",
        }
    }

    fn min_budget_s(&self) -> f64 {
        30.0
    }

    fn fit_with(&self, train: &Dataset, spec: &RunSpec, ctx: &FitContext<'_>) -> AutoMlRun {
        fit_impl(
            Version::V2,
            train,
            spec,
            SysParams {
                id: self.id(),
                n_init: self.n_portfolio,
                ensemble_pool: self.ensemble_pool,
                ensemble_iters: self.ensemble_iters,
            },
            ctx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use green_automl_dataset::TaskSpec;
    use green_automl_ml::metrics::balanced_accuracy;

    fn task() -> Dataset {
        let mut s = TaskSpec::new("askl-t", 260, 6, 2);
        s.cluster_sep = 2.1;
        s.generate().with_scales(8.0, 1.0)
    }

    #[test]
    fn askl1_produces_an_ensemble_and_overshoots() {
        let train = task();
        let run = AutoSklearn1::default().fit(&train, &RunSpec::single_core(30.0, 0));
        assert!(run.n_evaluations >= 1);
        assert!(matches!(run.predictor, Predictor::Ensemble(_)));
        // Started evals finish + un-budgeted ensembling => duration > budget.
        assert!(
            run.overshoot_ratio() > 1.0,
            "expected overshoot, got {:.3}",
            run.overshoot_ratio()
        );
    }

    #[test]
    fn askl2_overshoots_less_than_askl1() {
        let train = task();
        let spec = RunSpec::single_core(30.0, 1);
        let o1 = AutoSklearn1::default().fit(&train, &spec).overshoot_ratio();
        let o2 = AutoSklearn2::default().fit(&train, &spec).overshoot_ratio();
        assert!(
            o2 <= o1 * 1.2,
            "ASKL2 ({o2:.2}) should not overshoot much beyond ASKL1 ({o1:.2})"
        );
    }

    #[test]
    fn predictions_beat_chance() {
        use green_automl_dataset::split::train_test_split;
        let ds = task();
        let (train, test) = train_test_split(&ds, 0.34, 0);
        let run = AutoSklearn1::default().fit(&train, &RunSpec::single_core(30.0, 2));
        let mut t = CostTracker::new(green_automl_energy::Device::xeon_gold_6132(), 1);
        let pred = run.predictor.predict(&test, &mut t);
        let bal = balanced_accuracy(&test.labels, &pred, 2);
        assert!(bal > 0.65, "balanced accuracy {bal}");
    }

    #[test]
    fn ensemble_has_multiple_members_typically() {
        let train = task();
        let run = AutoSklearn1::default().fit(&train, &RunSpec::single_core(60.0, 3));
        assert!(run.predictor.n_models() >= 1);
        // Inference of the ensemble costs more than a typical single model.
        let kwh = run
            .predictor
            .inference_kwh_per_row(green_automl_energy::Device::xeon_gold_6132(), 1);
        assert!(kwh > 0.0);
    }

    #[test]
    fn design_cards_match_table1() {
        assert_eq!(
            AutoSklearn1::default().design().search_init,
            "warm starting"
        );
        assert_eq!(AutoSklearn1::default().design().ensembling, "Caruana");
        assert_eq!(AutoSklearn2::default().design().search_init, "portfolio");
    }
}
